"""Micro-benchmarks: per-phase cost breakdown on a mid-sized program.

Not a paper table; pins where FSAM's time goes (the paper's Figure 2
pipeline) so regressions in one phase are visible in isolation.
"""

import pytest

from repro.andersen import run_andersen
from repro.cfg import ICFG
from repro.frontend import compile_source
from repro.fsam import FSAMConfig
from repro.fsam.solver import SparseSolver
from repro.memssa import build_dug
from repro.mt import InterleavingAnalysis, LockAnalysis, ThreadModel, add_thread_aware_edges
from repro.workloads import get_workload

NAME = "radiosity"
SCALE = 2


@pytest.fixture(scope="module")
def prepared():
    source = get_workload(NAME).source(SCALE)
    module = compile_source(source, name=NAME)
    andersen = run_andersen(module)
    icfg = ICFG(module, andersen.callgraph)
    dug, builder = build_dug(module, andersen)
    model = ThreadModel(module, andersen, icfg)
    mhp = InterleavingAnalysis(model)
    locks = LockAnalysis(model, andersen, dug, builder)
    add_thread_aware_edges(dug, builder, mhp, locks=locks)
    return {
        "source": source, "module": module, "andersen": andersen,
        "icfg": icfg, "dug": dug, "builder": builder, "model": model,
    }


def test_bench_pre_analysis(benchmark, prepared):
    module = compile_source(prepared["source"], name=NAME)
    benchmark(run_andersen, module)


def test_bench_dug_construction(benchmark, prepared):
    module = compile_source(prepared["source"], name=NAME)
    andersen = run_andersen(module)
    benchmark(lambda: build_dug(module, andersen))


def test_bench_thread_model(benchmark, prepared):
    module = compile_source(prepared["source"], name=NAME)
    andersen = run_andersen(module)
    icfg = ICFG(module, andersen.callgraph)
    benchmark(lambda: ThreadModel(module, andersen, icfg))


def test_bench_interleaving(benchmark, prepared):
    benchmark(lambda: InterleavingAnalysis(prepared["model"]))


def test_bench_sparse_solve(benchmark, prepared):
    def solve():
        solver = SparseSolver(prepared["module"], prepared["dug"],
                              prepared["builder"], prepared["andersen"],
                              FSAMConfig())
        solver.solve()
        return solver

    solver = benchmark(solve)
    assert solver.points_to_entries() > 0
