"""Extension figure: analysis time vs program size.

Not a paper artefact — it extends Table 2 into a growth curve on the
lock-heavy program, showing the asymptotic separation that makes the
two largest programs OOT for NONSPARSE: the baseline's per-point
states grow superlinearly while FSAM stays near-linear.
"""

import pytest

from repro.fsam.config import AnalysisTimeout
from repro.harness.measure import measure_fsam, measure_nonsparse
from repro.workloads import get_workload, source_loc

NAME = "radiosity"
SCALES = [1, 2, 3]

_CURVE = []


@pytest.mark.parametrize("scale", SCALES)
def test_scaling_point(benchmark, scale):
    source = get_workload(NAME).source(scale)

    def run_both():
        fsam = measure_fsam(NAME, source)
        nonsparse = measure_nonsparse(NAME, source, budget=60)
        return fsam, nonsparse

    fsam, nonsparse = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _CURVE.append((scale, source_loc(source), fsam, nonsparse))
    assert not fsam.oot


def test_zz_render_curve(benchmark):
    def render():
        lines = [f"\nScaling curve ({NAME}):",
                 f"{'scale':>6} {'LOC':>6} {'FSAM t(s)':>10} {'NONSP t(s)':>11} {'ratio':>7}"]
        for scale, loc, fsam, nonsparse in _CURVE:
            ratio = ("-" if nonsparse.oot
                     else f"{nonsparse.seconds / max(fsam.seconds, 1e-9):.1f}x")
            ns = "OOT" if nonsparse.oot else f"{nonsparse.seconds:.2f}"
            lines.append(f"{scale:>6} {loc:>6} {fsam.seconds:>10.2f} {ns:>11} {ratio:>7}")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    print(text)
    # The gap must widen with scale (the asymptotic separation).
    ratios = [n.seconds / max(f.seconds, 1e-9)
              for _s, _l, f, n in _CURVE if not n.oot]
    if len(ratios) >= 2:
        assert ratios[-1] > ratios[0]
