"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Tables and figures are printed to stdout at the end of each bench
module (use ``-s`` to see them live; they are also captured in the
pytest summary via the trailing render benchmarks).
"""
