"""Engine comparison bench: delta propagation + SCC-topological
scheduling vs the retained naive reference engine.

Asserts the optimisation's whole point — strictly fewer solver
iterations and node revisits at every scaling-curve point and on
every Table 2 workload — while the points-to output stays identical
(the differential suite in ``tests/fsam/test_differential.py`` pins
bit-identity; this bench pins the work reduction at benchmark
scales).
"""

import pytest

from repro.fsam.config import FSAMConfig
from repro.harness.measure import measure_fsam
from repro.harness.scales import SMOKE_SCALES
from repro.workloads import get_workload, workload_names

from benchmarks.test_scaling_curve import NAME as CURVE_NAME
from benchmarks.test_scaling_curve import SCALES as CURVE_SCALES

_REFERENCE = FSAMConfig(solver_engine="reference")


def _run_both(name, source):
    delta = measure_fsam(name, source)
    reference = measure_fsam(name, source, config=_REFERENCE)
    return delta, reference


def _assert_less_work(delta, reference):
    dc = delta.profile["counters"]
    rc = reference.profile["counters"]
    assert dc["solver.iterations"] < rc["solver.iterations"]
    assert dc["solver.node_revisits"] < rc["solver.node_revisits"]
    # Same fixpoint size — the engines trade schedule, not precision.
    assert delta.points_to_entries == reference.points_to_entries


@pytest.mark.parametrize("scale", CURVE_SCALES)
def test_curve_point_work_drops(benchmark, scale):
    """Every scaling-curve point (the lock-heavy program) must show
    the iteration/revisit reduction."""
    source = get_workload(CURVE_NAME).source(scale)
    delta, reference = benchmark.pedantic(
        lambda: _run_both(CURVE_NAME, source), rounds=1, iterations=1)
    _assert_less_work(delta, reference)


@pytest.mark.parametrize("name", workload_names())
def test_every_workload_work_drops(benchmark, name):
    source = get_workload(name).source(SMOKE_SCALES[name])
    delta, reference = benchmark.pedantic(
        lambda: _run_both(name, source), rounds=1, iterations=1)
    _assert_less_work(delta, reference)
