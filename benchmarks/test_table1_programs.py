"""Table 1: program statistics.

Benchmarks generation + compilation of each workload at its Table 2
scale and prints the statistics table the paper reports.
"""

import pytest

from repro.frontend import compile_source
from repro.harness import BENCH_SCALES, render_table1, run_table1
from repro.workloads import get_workload, workload_names


@pytest.mark.parametrize("name", workload_names())
def test_compile_workload(benchmark, name):
    """Frontend throughput per benchmark program (not in the paper,
    but pins the compile cost excluded from Table 2)."""
    source = get_workload(name).source(BENCH_SCALES[name])
    module = benchmark.pedantic(compile_source, args=(source,),
                                kwargs={"name": name}, rounds=1, iterations=1)
    assert module.functions


def test_zz_render_table1(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(render_table1(rows))
    assert len(rows) == 10
