"""Gateway load test: zipfian trace replay -> ``BENCH_10.json``.

Drives a real in-process :class:`repro.gateway.server.Gateway` (TCP,
framed JSONL, persistent shard workers) with a seeded zipfian trace
(:mod:`repro.gateway.trace`) whose ranks are ordered by *cold* cost —
the most expensive workloads are the hottest, the regime the gateway's
consistent-hash routing + coalescing + layered caches target. Reports,
per workload, client-observed p50/p99 latency and the speedup over the
cold no-cache baseline (``run_request_inline`` on a fresh process
state), plus coalesce/cache-hit rates, a streamed-frames ordering
check on the two most expensive workloads (the Andersen preview frame
must arrive before the FSAM result), a warm re-run, and a bit-identity
sweep of every ok analyze response against the inline oracle digests.

Usage::

    PYTHONPATH=src python benchmarks/run_gateway.py --out BENCH_10.json
    PYTHONPATH=src python benchmarks/run_gateway.py --mini --out report.json

``--mini`` is the CI smoke shape: 200 requests, smoke scales, two
tenants — and the run *asserts* (exit 1 on failure) that no response
was dropped, that the coalesce counter moved, and that a warm re-run
of the trace head is served from the hot caches.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.gateway.server import Gateway, GatewayOptions
from repro.gateway.trace import DEFAULT_SKEW, TraceGenerator, skew_error
from repro.harness.scales import BENCH_SCALES, SMOKE_SCALES
from repro.service.requests import request_from_entry
from repro.service.runner import run_request_inline
from repro.workloads import workload_names

SCHEMA = "repro.gwbench/1"


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def cold_baselines(scales: Dict[str, int]) -> Dict[str, Dict[str, object]]:
    """One cold, cache-free inline run per workload: the latency
    baseline the gateway must beat, and the bit-identity oracle."""
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(scales):
        request = request_from_entry({"workload": name,
                                      "scale": scales[name]})
        start = time.perf_counter()
        outcome = run_request_inline(request)
        seconds = time.perf_counter() - start
        out[name] = {
            "seconds": round(seconds, 4),
            "digest": outcome.digest,
            "payload_digest": outcome.artifact.payload_digest(),
        }
        print(f"  cold {name}: {seconds:.2f}s", file=sys.stderr)
    return out


async def _request(reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter,
                   entry: Dict[str, object]
                   ) -> Tuple[Optional[Dict[str, object]],
                              List[Tuple[str, float]], float]:
    """One closed-loop request: returns (final_frame, [(kind, at)],
    latency_seconds). final_frame None = connection dropped."""
    start = time.perf_counter()
    writer.write((json.dumps(entry) + "\n").encode("utf-8"))
    await writer.drain()
    kinds: List[Tuple[str, float]] = []
    while True:
        line = await reader.readline()
        if not line:
            return None, kinds, time.perf_counter() - start
        frame = json.loads(line)
        kinds.append((frame.get("kind"), time.perf_counter() - start))
        if frame.get("final"):
            return frame, kinds, time.perf_counter() - start


async def streaming_checks(port: int, names: List[str],
                           scales: Dict[str, int]
                           ) -> Dict[str, Dict[str, object]]:
    """Cold streamed analyze per workload: the Andersen preview frame
    must land strictly before the FSAM result frame."""
    out: Dict[str, Dict[str, object]] = {}
    for name in names:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        entry = {"workload": name, "scale": scales[name], "stream": True}
        final, kinds, seconds = await _request(reader, writer, entry)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
        order = [kind for kind, _ in kinds]
        preview_at = next((at for kind, at in kinds if kind == "andersen"),
                          None)
        out[name] = {
            "frames": order,
            "order_ok": order[:1] == ["andersen"] and order[-1] == "result",
            "preview_seconds": round(preview_at, 4)
            if preview_at is not None else None,
            "total_seconds": round(seconds, 4),
            "status": (final or {}).get("body", {}).get("status"),
        }
        print(f"  stream {name}: preview at {preview_at:.2f}s of "
              f"{seconds:.2f}s", file=sys.stderr)
    return out


async def replay(port: int, trace: List[Dict[str, object]],
                 connections: int,
                 oracles: Dict[str, Dict[str, object]]
                 ) -> Dict[str, object]:
    """Replay *trace* over *connections* persistent closed-loop JSONL
    clients; returns latency/fidelity tallies."""
    latencies: Dict[str, List[float]] = defaultdict(list)
    statuses: Dict[str, int] = defaultdict(int)
    mismatches = 0
    checked = 0
    dropped = 0

    async def client(entries: List[Dict[str, object]]) -> None:
        nonlocal mismatches, checked, dropped
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for entry in entries:
            final, _, seconds = await _request(reader, writer, entry)
            if final is None:
                dropped += 1
                return
            body = final.get("body", {})
            name = str(entry["workload"])
            latencies[name].append(seconds)
            if "error" in body:
                statuses["error"] += 1
                continue
            statuses[str(body.get("status"))] += 1
            if body.get("status") == "ok" \
                    and entry.get("op", "analyze") == "analyze":
                checked += 1
                if body.get("payload_digest") \
                        != oracles[name]["payload_digest"]:
                    mismatches += 1
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass

    start = time.perf_counter()
    await asyncio.gather(*[
        client(trace[i::connections]) for i in range(connections)])
    wall = time.perf_counter() - start
    return {
        "latencies": latencies,
        "statuses": dict(statuses),
        "dropped": dropped,
        "bit_identity": {"checked": checked, "mismatches": mismatches},
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(trace) / wall, 1) if wall else 0.0,
    }


async def run(args: argparse.Namespace) -> int:
    scales = dict(SMOKE_SCALES if args.mini else BENCH_SCALES)
    names = [name for name in workload_names() if name in scales]
    tenants = ("ci-a", "ci-b") if args.mini else ("default",)

    print("cold no-cache baselines:", file=sys.stderr)
    baselines = cold_baselines(scales)
    # Rank order: most expensive first — the zipf head lands on the
    # programs where warm serving matters most.
    ranked = sorted(names, key=lambda n: -baselines[n]["seconds"])
    catalogue = [{"workload": name, "scale": scales[name]}
                 for name in ranked]
    generator = TraceGenerator(catalogue, seed=args.seed, s=args.skew,
                               tenants=tenants)
    trace = generator.generate(args.requests)

    cache_root = tempfile.mkdtemp(prefix="gwbench-cache-")
    gateway = Gateway(GatewayOptions(
        workers=args.workers, cache_root=cache_root,
        max_queue=max(64, 2 * args.connections)))
    await gateway.start()
    try:
        print(f"gateway up on port {gateway.port} "
              f"({args.workers} shards)", file=sys.stderr)
        streaming = await streaming_checks(gateway.port, ranked[:2],
                                           scales)
        print(f"replaying {len(trace)} requests over "
              f"{args.connections} connections...", file=sys.stderr)
        result = await replay(gateway.port, trace, args.connections,
                              baselines)
        # Snapshot before the warm re-run so the replay's rates are
        # not polluted by the rerun's own hits.
        metrics = gateway.metrics()
        counters = dict(metrics.get("counters", {}))

        head = trace[:min(200, len(trace))]
        rerun = await replay(gateway.port, head, args.connections,
                             baselines)
        rerun_counters = gateway.metrics().get("counters", {})
    finally:
        await gateway.shutdown()

    requests_total = len(trace)
    coalesced = counters.get("gateway.coalesced", 0)
    hot_hits = counters.get("gateway.hot_hits", 0)
    worker_cache = {state: counters.get(f"gateway.worker_cache_{state}", 0)
                    for state in ("hot", "hit", "warm", "miss")}
    served_warm = hot_hits + coalesced + worker_cache["hot"] \
        + worker_cache["hit"] + worker_cache["warm"]
    rerun_hot = rerun_counters.get("gateway.hot_hits", 0) - hot_hits

    workloads: Dict[str, Dict[str, object]] = {}
    for name in ranked:
        series = result["latencies"].get(name, [])
        p50 = _percentile(series, 0.50)
        p99 = _percentile(series, 0.99)
        cold = baselines[name]["seconds"]
        workloads[name] = {
            "rank": ranked.index(name) + 1,
            "requests": len(series),
            "p50_ms": round(p50 * 1000, 3),
            "p99_ms": round(p99 * 1000, 3),
            "cold_seconds": cold,
            "p50_speedup_vs_cold": round(cold / p50, 1) if p50 else None,
        }

    top2 = ranked[:2]
    top2_speedups = {name: workloads[name]["p50_speedup_vs_cold"]
                     for name in top2}
    criterion = all(speedup is not None and speedup >= 5.0
                    for speedup in top2_speedups.values())
    streamed_ok = all(record["order_ok"] for record in streaming.values())

    doc = {
        "schema": SCHEMA,
        "pr": args.pr,
        "scales": "smoke" if args.mini else "bench",
        "requests": requests_total,
        "workers": args.workers,
        "connections": args.connections,
        "trace": {
            "seed": args.seed,
            "skew": args.skew,
            "tenants": list(tenants),
            "skew_error": round(skew_error(
                generator.rank_counts(trace), s=args.skew), 4),
        },
        "streaming": streaming,
        "workloads": workloads,
        "replay": {
            "wall_seconds": result["wall_seconds"],
            "throughput_rps": result["throughput_rps"],
            "dropped": result["dropped"],
            "statuses": result["statuses"],
            "coalesced": coalesced,
            "coalesce_rate": round(coalesced / requests_total, 4),
            "hot_hits": hot_hits,
            "worker_cache": worker_cache,
            "warm_rate": round(served_warm / requests_total, 4),
            "shed": counters.get("gateway.shed", 0),
            "retries": counters.get("gateway.retries", 0),
            "shard_deaths": counters.get("gateway.shard_deaths", 0),
        },
        "warm_rerun": {
            "requests": len(head),
            "wall_seconds": rerun["wall_seconds"],
            "statuses": rerun["statuses"],
            "dropped": rerun["dropped"],
            "hot_hits": rerun_hot,
        },
        "bit_identity": result["bit_identity"],
        "criteria": {
            "p50_speedup_top2": top2_speedups,
            "p50_speedup_top2_geq_5x": criterion,
            "streamed_preview_before_result": streamed_ok,
            "bit_identical": result["bit_identity"]["mismatches"] == 0,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    for name in top2:
        print(f"  {name}: cold {workloads[name]['cold_seconds']}s -> warm "
              f"p50 {workloads[name]['p50_ms']}ms "
              f"({top2_speedups[name]}x)", file=sys.stderr)
    print(f"  coalesce_rate={doc['replay']['coalesce_rate']} "
          f"warm_rate={doc['replay']['warm_rate']} "
          f"dropped={result['dropped']}", file=sys.stderr)

    failures = []
    if result["dropped"]:
        failures.append(f"{result['dropped']} responses dropped")
    if result["bit_identity"]["mismatches"]:
        failures.append("gateway responses diverged from inline oracle")
    if not streamed_ok:
        failures.append("Andersen preview did not precede the result")
    if args.mini:
        if not coalesced:
            failures.append("coalesce counter never moved")
        warm_errors = rerun["statuses"].get("error", 0)
        if warm_errors or rerun["dropped"]:
            failures.append("warm re-run had errors/drops")
        if rerun_hot < 0.9 * len(head):
            failures.append(
                f"warm re-run not served hot ({rerun_hot}/{len(head)})")
    elif not criterion:
        failures.append(
            f"p50 speedup under 5x on the top workloads: {top2_speedups}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_10.json")
    parser.add_argument("--pr", default="10")
    parser.add_argument("--requests", type=int, default=100_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW)
    parser.add_argument("--mini", action="store_true",
                        help="CI shape: 200 requests, smoke scales, "
                        "two tenants, smoke assertions")
    args = parser.parse_args()
    if args.mini:
        args.requests = min(args.requests, 200)
        args.workers = min(args.workers, 2)
        args.connections = min(args.connections, 8)
    return asyncio.run(run(args))


if __name__ == "__main__":
    sys.exit(main())
