"""Observability instrumentation must be (nearly) free.

The obs layer keeps hot paths clean by accumulating plain int tallies
on the analysis objects and flushing them once per run (see DESIGN.md
"Observability"); the only per-phase work is a pair of perf_counter
reads per pipeline stage. This benchmark pins that design down: on
the largest registry workload, running FSAM with a live Observer must
cost less than 5% over running with profiling disabled (NULL_OBS).

Methodology: the workload is compiled once (re-analysis of a module is
deterministic — see test_pts_representation's entry-count pin), the
two configurations run interleaved so allocator/cache drift hits both
equally, each round is preceded by a gc.collect(), and the comparison
uses best-of-N CPU time (process_time, no tracemalloc) so scheduler
noise cannot masquerade as instrumentation cost.
"""

import gc
import time

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.harness.scales import BENCH_SCALES
from repro.workloads import get_workload

WORKLOAD = "x264"
ROUNDS = 10
MAX_OVERHEAD = 1.05  # enabled / disabled CPU-time ratio ceiling

_RESULT = {}


def _one_run(module, config):
    """CPU time of a single analysis-only run."""
    gc.collect()
    start = time.process_time()
    result = FSAM(module, config).run()
    return time.process_time() - start, result


def test_enabled_instrumentation_under_five_percent(benchmark):
    source = get_workload(WORKLOAD).source(BENCH_SCALES[WORKLOAD])
    module = compile_source(source, name=WORKLOAD)

    def compare():
        enabled_times, disabled_times = [], []
        for _ in range(ROUNDS):
            seconds, result = _one_run(module, FSAMConfig())
            enabled_times.append(seconds)
            _RESULT["profiled"] = result
            seconds, _ = _one_run(module, FSAMConfig(profile=False))
            disabled_times.append(seconds)
        return min(enabled_times), min(disabled_times)

    enabled, disabled = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = enabled / disabled
    print(f"\nobs overhead: enabled {enabled:.3f}s vs "
          f"disabled {disabled:.3f}s ({(ratio - 1) * 100:+.1f}%)")
    assert ratio <= MAX_OVERHEAD, (
        f"{WORKLOAD}: profiling costs {(ratio - 1) * 100:.1f}% "
        f"(enabled {enabled:.3f}s, disabled {disabled:.3f}s)")


def test_profiled_run_actually_instrumented():
    """Guard against a vacuous comparison: the enabled run must have
    produced a real profile, not silently fallen back to NULL_OBS."""
    result = _RESULT.get("profiled")
    if result is None:
        import pytest
        pytest.skip("overhead benchmark did not run")
    doc = result.profile()
    assert doc["phases"], "profiled run produced no phase records"
    assert doc["counters"]["solver.iterations"] > 0


def test_profiled_run_has_tracing_off():
    """The 5%% bound covers the obs-on + trace-off configuration: the
    default config must not silently enable the tracer (provenance
    recording touches the per-fact hot path and has its own budget)."""
    from repro.trace import NULL_TRACER
    result = _RESULT.get("profiled")
    if result is None:
        import pytest
        pytest.skip("overhead benchmark did not run")
    assert result.tracer is NULL_TRACER
    assert result.provenance is None


# -- batch telemetry ---------------------------------------------------------


BATCH_ROUNDS = 5
BATCH_SCALE = 4  # ~0.5s of analysis per side: a 5% bound is ~25ms,
                 # comfortably above process_time jitter
_BATCH_RESULT = {}


def _batch_requests(profile):
    from repro.service.requests import AnalysisRequest
    names = ("word_count", "kmeans", "automount")
    config = FSAMConfig(profile=profile)
    return [AnalysisRequest(name=name,
                            source=get_workload(name).source(BATCH_SCALE),
                            config=config)
            for name in names]


def _one_batch(profile, slow_ms):
    """CPU time of one inline (workers=1) cold batch."""
    from repro.service.batch import run_batch
    gc.collect()
    start = time.process_time()
    report = run_batch(_batch_requests(profile), workers=1,
                       slow_ms=slow_ms)
    return time.process_time() - start, report


def test_batch_telemetry_under_five_percent(benchmark):
    """The cross-process telemetry layer (span observers, snapshot
    merging, histogram recording, exemplar capture) must add < 5% to a
    batch over telemetry-off runs. Inline dispatch so subprocess
    spawn jitter cannot drown the signal — the instrumented code path
    is identical either way.

    The statistic is the best adjacent-pair ratio, not best-of-N per
    side: shared-machine contention scales both runs of a back-to-back
    pair roughly equally and cancels in their ratio, whereas a
    per-side min needs a quiet window to land on each side
    independently. A real regression inflates every pair."""
    # One untimed pair first: the process's first analysis run pays
    # allocator/import warmup that would otherwise be charged to
    # whichever side runs first.
    _one_batch(profile=True, slow_ms=0)
    _one_batch(profile=False, slow_ms=None)

    def compare():
        ratios = []
        for _ in range(BATCH_ROUNDS):
            on_seconds, report = _one_batch(profile=True, slow_ms=0)
            _BATCH_RESULT["report"] = report
            off_seconds, _ = _one_batch(profile=False, slow_ms=None)
            ratios.append(on_seconds / off_seconds)
        return ratios

    ratios = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = min(ratios)
    print(f"\nbatch telemetry overhead: best pair "
          f"{(ratio - 1) * 100:+.1f}% "
          f"(pairs: {', '.join(f'{r:.3f}' for r in ratios)})")
    assert ratio <= MAX_OVERHEAD, (
        f"batch telemetry costs {(ratio - 1) * 100:.1f}% "
        f"in every measured pair (ratios: {ratios})")


def test_batch_telemetry_actually_recorded():
    """Guard against a vacuous comparison: the telemetry-on batch must
    have produced real histograms and merged worker-side phase times."""
    report = _BATCH_RESULT.get("report")
    if report is None:
        import pytest
        pytest.skip("batch overhead benchmark did not run")
    metrics = report.metrics
    assert metrics["histograms"]["pool.run_seconds"]["count"] == 3
    assert metrics["histograms"]["phase.sparse_solve"]["count"] == 3
    assert metrics["phase_seconds"]["sparse_solve"] > 0.0
    assert report.exemplars
