"""Observability instrumentation must be (nearly) free.

The obs layer keeps hot paths clean by accumulating plain int tallies
on the analysis objects and flushing them once per run (see DESIGN.md
"Observability"); the only per-phase work is a pair of perf_counter
reads per pipeline stage. This benchmark pins that design down: on
the largest registry workload, running FSAM with a live Observer must
cost less than 5% over running with profiling disabled (NULL_OBS).

Methodology: the workload is compiled once (re-analysis of a module is
deterministic — see test_pts_representation's entry-count pin), the
two configurations run interleaved so allocator/cache drift hits both
equally, each round is preceded by a gc.collect(), and the comparison
uses best-of-N CPU time (process_time, no tracemalloc) so scheduler
noise cannot masquerade as instrumentation cost.
"""

import gc
import time

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.harness.scales import BENCH_SCALES
from repro.workloads import get_workload

WORKLOAD = "x264"
ROUNDS = 10
MAX_OVERHEAD = 1.05  # enabled / disabled CPU-time ratio ceiling

_RESULT = {}


def _one_run(module, config):
    """CPU time of a single analysis-only run."""
    gc.collect()
    start = time.process_time()
    result = FSAM(module, config).run()
    return time.process_time() - start, result


def test_enabled_instrumentation_under_five_percent(benchmark):
    source = get_workload(WORKLOAD).source(BENCH_SCALES[WORKLOAD])
    module = compile_source(source, name=WORKLOAD)

    def compare():
        enabled_times, disabled_times = [], []
        for _ in range(ROUNDS):
            seconds, result = _one_run(module, FSAMConfig())
            enabled_times.append(seconds)
            _RESULT["profiled"] = result
            seconds, _ = _one_run(module, FSAMConfig(profile=False))
            disabled_times.append(seconds)
        return min(enabled_times), min(disabled_times)

    enabled, disabled = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = enabled / disabled
    print(f"\nobs overhead: enabled {enabled:.3f}s vs "
          f"disabled {disabled:.3f}s ({(ratio - 1) * 100:+.1f}%)")
    assert ratio <= MAX_OVERHEAD, (
        f"{WORKLOAD}: profiling costs {(ratio - 1) * 100:.1f}% "
        f"(enabled {enabled:.3f}s, disabled {disabled:.3f}s)")


def test_profiled_run_actually_instrumented():
    """Guard against a vacuous comparison: the enabled run must have
    produced a real profile, not silently fallen back to NULL_OBS."""
    result = _RESULT.get("profiled")
    if result is None:
        import pytest
        pytest.skip("overhead benchmark did not run")
    doc = result.profile()
    assert doc["phases"], "profiled run produced no phase records"
    assert doc["counters"]["solver.iterations"] > 0


def test_profiled_run_has_tracing_off():
    """The 5%% bound covers the obs-on + trace-off configuration: the
    default config must not silently enable the tracer (provenance
    recording touches the per-fact hot path and has its own budget)."""
    from repro.trace import NULL_TRACER
    result = _RESULT.get("profiled")
    if result is None:
        import pytest
        pytest.skip("overhead benchmark did not run")
    assert result.tracer is NULL_TRACER
    assert result.provenance is None
