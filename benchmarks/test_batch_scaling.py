"""Batch-service scaling bench: pooled vs serial, warm vs cold.

Two claims, the whole point of ``repro.service``:

1. a cold 4-worker batch over the ten Table-1 workloads beats the
   serial loop on wall clock (needs real cores — skipped below 2,
   and run under the non-blocking batch-smoke CI job, same style as
   bench-smoke, because shared runners make wall-clock comparisons
   advisory);
2. a warm batch beats the cold one outright while performing zero
   sparse-solver iterations — this one is deterministic, so it
   asserts unconditionally.
"""

import os
import time

import pytest

from repro.service.batch import run_batch
from repro.service.cache import ArtifactCache
from repro.service.requests import AnalysisRequest
from repro.workloads import get_workload, workload_names

WORKERS = 4


def _requests():
    return [AnalysisRequest(name=name,
                            source=get_workload(name).source(1))
            for name in workload_names()]


def _timed(**kwargs):
    start = time.perf_counter()
    report = run_batch(_requests(), **kwargs)
    return time.perf_counter() - start, report


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="pooled speedup needs at least 2 cores")
def test_cold_pooled_beats_serial():
    serial_s, serial = _timed(workers=1, name="serial")
    pooled_s, pooled = _timed(workers=WORKERS, name="pooled")
    print(f"\nbatch scaling: serial {serial_s:.3f}s, "
          f"{WORKERS}-worker {pooled_s:.3f}s, "
          f"speedup {serial_s / pooled_s:.2f}x "
          f"({os.cpu_count()} cores)")
    assert all(o.status == "ok" for o in pooled.outcomes)
    assert pooled_s < serial_s


def test_warm_cache_beats_cold(tmp_path):
    cache_dir = tmp_path / "cache"
    cold_s, cold = _timed(workers=1, cache=ArtifactCache(cache_dir),
                          name="cold")
    warm_s, warm = _timed(workers=1, cache=ArtifactCache(cache_dir),
                          name="warm")
    print(f"\nbatch cache: cold {cold_s:.3f}s, warm {warm_s:.3f}s, "
          f"speedup {cold_s / max(warm_s, 1e-9):.1f}x")
    assert warm.to_dict()["aggregate"]["solver_iterations"] == 0
    assert warm.counters["batch.cache_hits"] == len(workload_names())
    assert warm_s < cold_s
