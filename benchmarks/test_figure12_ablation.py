"""Figure 12: impact of each thread interference analysis phase.

Runs FSAM with No-Interleaving (coarse PCG MHP), No-Value-Flow
(AS(*p,*q) disregarded), and No-Lock on every program, reporting the
slowdown of sparse points-to resolution plus the spurious-edge
inflation each phase prevents.
"""

import pytest

from repro.fsam import FSAMConfig
from repro.harness import BENCH_SCALES, render_figure12
from repro.harness.measure import measure_fsam
from repro.harness.tables import ABLATIONS
from repro.workloads import get_workload, workload_names

_ROWS = {}


@pytest.mark.parametrize("name", workload_names())
def test_figure12_row(benchmark, name):
    source = get_workload(name).source(BENCH_SCALES[name])
    base_config = FSAMConfig()

    def run_all():
        row = {"benchmark": name,
               "base": measure_fsam(name, source, base_config)}
        for label, phase in ABLATIONS:
            row[label] = measure_fsam(name, source, base_config.ablated(phase))
        return row

    row = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _ROWS[name] = row
    # Every ablated run must stay sound and complete.
    for label, _phase in ABLATIONS:
        assert not row[label].oot
    # Value-flow is the paper's most impactful phase: removing it must
    # inflate the thread-aware def-use edges.
    assert row["No-Value-Flow"].thread_edges >= row["base"].thread_edges


def test_zz_render_figure12(benchmark):
    rows = [_ROWS[n] for n in workload_names() if n in _ROWS]
    text = benchmark.pedantic(render_figure12, args=(rows,), rounds=1, iterations=1)
    print()
    print(text)
    assert "No-Value-Flow" in text
