"""Design-choice ablation: strong updates at interfering stores.

DESIGN.md documents the one deviation knob FSAM exposes: the literal
paper rule (strong update at every singleton-store, default) versus a
belt-and-braces mode demoting MHP-interfering stores to weak updates.
This bench quantifies the precision gap between the two on every
workload: the conservative mode can only produce equal-or-larger
points-to state.
"""

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.workloads import get_workload, workload_names

SCALE = 1


@pytest.mark.parametrize("name", workload_names())
def test_strong_update_ablation(benchmark, name):
    source = get_workload(name).source(SCALE)

    def run_both():
        literal = FSAM(compile_source(source, name=name),
                       FSAMConfig(strong_updates_at_interfering_stores=True)).run()
        demoted = FSAM(compile_source(source, name=name),
                       FSAMConfig(strong_updates_at_interfering_stores=False)).run()
        return literal, demoted

    literal, demoted = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert demoted.points_to_entries() >= literal.points_to_entries()
