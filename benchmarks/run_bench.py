"""Machine-readable benchmark snapshots: ``BENCH_<n>.json``.

Runs every workload under both solver engines (the optimised delta/
topological engine, with its batched-propagation kernel on the
default ``auto`` backend, and the retained naive reference engine)
and emits one ``repro.bench/1`` JSON document per run with:

- one traced measurement per engine (wall time, solver work counters,
  peak traced memory, points-to entry counts) — the continuity record
  every previous snapshot carried; and
- a **repeat-timed solve phase** per engine: ``--warmup`` discarded
  iterations (they populate the frozen graph's schedule/topology
  caches), then ``--reps`` timed iterations run *without* tracemalloc
  and with a garbage collection before each, recorded per-iteration
  with the median as the headline number. The engines share one
  compiled+analyzed pipeline, so ``solve_speedup`` (reference median /
  delta median) isolates exactly the code the engines disagree on; and
- a **query section** (``--queries N``, default 4): N seeded-random +
  N hot (most-SSA-versioned) top-level variables answered through the
  demand engine, each median-of-``--reps`` on a *fresh* QueryEngine
  per repetition (cold slices — no warm-answer accumulation), compared
  against the same workload's whole-program delta solve median
  (``median_speedup``), plus the slice-size distribution.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --pr 6 --out BENCH_6.json
    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_ci.json \
        --workloads radiosity,word_count --compare BENCH_4.json

``--compare`` re-reads a previous snapshot and flags any workload
whose delta-engine ``solver.iterations`` grew by more than the
threshold (default 20%); the process exits non-zero so CI can surface
the regression (the bench job itself is non-blocking).
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import statistics
import sys
import time

from repro.fsam import FSAM
from repro.fsam.config import FSAMConfig
from repro.frontend import compile_source
from repro.harness.measure import Measurement, measure_fsam, time_fsam_solve
from repro.harness.scales import BENCH_SCALES, SMOKE_SCALES
from repro.schemas import BENCH_SCHEMA as SCHEMA
from repro.workloads import get_workload, source_loc, workload_names
ENGINES = ("delta", "reference")

# The counters/gauges a snapshot records per engine run.
COUNTERS = ("solver.iterations", "solver.node_revisits",
            "solver.delta_propagations", "solver.seeded_nodes",
            "solver.kernel_batches", "solver.kernel_injections",
            "solver.kernel_updates", "solver.kernel_fallbacks",
            "valueflow.mhp_cache_hits", "mhp.pair_queries")
GAUGES = ("solver.sccs", "solver.kernel_rows",
          "solver.kernel_boundary_rows")


def _engine_record(m: Measurement) -> dict:
    counters = (m.profile or {}).get("counters", {})
    gauges = (m.profile or {}).get("gauges", {})
    record = {
        "seconds": round(m.seconds, 4),
        "peak_memory_mb": round(m.peak_memory_mb, 3),
        "points_to_entries": m.points_to_entries,
        "oot": m.oot,
    }
    for name in COUNTERS:
        if name in counters:
            record[name] = counters[name]
    for name in GAUGES:
        if name in gauges:
            record[name] = gauges[name]
    return record


def _solve_record(result, engine: str, reps: int, warmup: int) -> dict:
    config = FSAMConfig(solver_engine=engine)
    iters = time_fsam_solve(result, config, reps=reps, warmup=warmup)
    return {
        "reps": reps,
        "warmup": warmup,
        "per_iteration_seconds": [round(t, 5) for t in iters],
        "median_seconds": round(statistics.median(iters), 5),
    }


def _query_targets(module, count: int):
    """``count`` seeded-random + ``count`` hot variable names.

    "Hot" = the names with the most SSA-ish versions (temps sharing
    the name): many definition sites mean many slice roots, biasing
    toward the demand engine's worst case. The random half keeps the
    sample honest."""
    from repro.ir.values import Temp

    versions: dict = {}
    for fn in module.functions.values():
        for param in fn.params:
            versions[param.name] = versions.get(param.name, 0) + 1
        for instr in fn.instructions():
            dst = getattr(instr, "dst", None)
            if isinstance(dst, Temp):
                versions[dst.name] = versions.get(dst.name, 0) + 1
    names = sorted(versions)
    if not names:
        return []
    rng = random.Random(0x95A)
    picks = rng.sample(names, min(count, len(names)))
    hot = sorted(names, key=lambda n: (-versions[n], n))[:count]
    targets = []
    for name in picks + hot:
        if name not in targets:
            targets.append(name)
    return targets


def _query_section(result, count: int, reps: int, warmup: int,
                   solve_median: float) -> dict | None:
    """Time ``2*count`` demand queries against the shared pipeline.

    Every repetition uses a *fresh* QueryEngine so each timing is a
    cold slice-and-solve (the engine otherwise accumulates solved
    slices and later queries come back warm in ~0 time, which is the
    serving win but not the number this section isolates)."""
    from repro.fsam.query import QueryEngine

    targets = _query_targets(result.module, count)
    if not targets:
        return None

    def fresh():
        return QueryEngine(result.module, result.dug, result.builder,
                           result.andersen, config=result.solver.config)

    rows = []
    for var in targets:
        times = []
        answer = None
        for i in range(warmup + reps):
            engine = fresh()
            gc.collect()
            start = time.perf_counter()
            answer = engine.query(var)
            elapsed = time.perf_counter() - start
            if i >= warmup:
                times.append(elapsed)
        rows.append({
            "var": var,
            "per_iteration_seconds": [round(t, 6) for t in times],
            "median_seconds": round(statistics.median(times), 6),
            "slice_nodes": answer.slice_nodes,
            "slice_fraction": round(answer.slice_fraction, 6),
            "iterations": answer.iterations,
        })
    medians = [row["median_seconds"] for row in rows]
    slice_sizes = [row["slice_nodes"] for row in rows]
    median_query = statistics.median(medians)
    return {
        "reps": reps,
        "warmup": warmup,
        "count": len(rows),
        "delta_solve_median_seconds": solve_median,
        "median_query_seconds": round(median_query, 6),
        "median_speedup": round(solve_median / median_query, 2)
        if median_query > 0 else None,
        "slice_nodes_min": min(slice_sizes),
        "slice_nodes_p50": int(statistics.median(slice_sizes)),
        "slice_nodes_max": max(slice_sizes),
        "slice_fraction_p50": round(statistics.median(
            [row["slice_fraction"] for row in rows]), 6),
        "queries": rows,
    }


def run_snapshot(names, scales, engines=ENGINES, reps=5, warmup=2,
                 queries=4, verbose=True) -> dict:
    workloads = {}
    for name in names:
        scale = scales[name]
        source = get_workload(name).source(scale)
        entry = {"scale": scale, "loc": source_loc(source), "engines": {}}
        for engine in engines:
            m = measure_fsam(name, source,
                             config=FSAMConfig(solver_engine=engine))
            entry["engines"][engine] = _engine_record(m)
            if verbose:
                rec = entry["engines"][engine]
                print(f"  {name:>14} [{engine:>9}] "
                      f"{rec['seconds']:>8.3f}s "
                      f"iters={rec.get('solver.iterations', '-'):>7} "
                      f"revisits={rec.get('solver.node_revisits', '-'):>7} "
                      f"pts={rec['points_to_entries']}")
        if reps > 0:
            # One shared pipeline: both engines re-solve the identical
            # frozen graph, so the timing difference is the solver.
            result = FSAM(compile_source(source, name=name)).run()
            for engine in engines:
                rec = _solve_record(result, engine, reps, warmup)
                entry["engines"].setdefault(engine, {})["solve"] = rec
                if verbose:
                    print(f"  {name:>14} [{engine:>9}] solve "
                          f"median={rec['median_seconds']:.4f}s "
                          f"over {reps} reps")
            delta_solve = entry["engines"].get("delta", {}).get("solve")
            if queries > 0 and delta_solve:
                qrec = _query_section(
                    result, queries, reps, warmup,
                    delta_solve["median_seconds"])
                if qrec is not None:
                    entry["query"] = qrec
                    if verbose:
                        print(f"  {name:>14} [{'query':>9}] "
                              f"median={qrec['median_query_seconds']:.5f}s "
                              f"over {qrec['count']} queries, "
                              f"speedup={qrec['median_speedup']}x, "
                              f"slice p50={qrec['slice_nodes_p50']} nodes")
        if "delta" in entry["engines"] and "reference" in entry["engines"]:
            d, r = entry["engines"]["delta"], entry["engines"]["reference"]
            if d["seconds"] > 0:
                entry["speedup"] = round(r["seconds"] / d["seconds"], 2)
            if "solve" in d and "solve" in r and \
                    d["solve"]["median_seconds"] > 0:
                entry["solve_speedup"] = round(
                    r["solve"]["median_seconds"]
                    / d["solve"]["median_seconds"], 2)
            entry["iteration_ratio"] = round(
                d["solver.iterations"] / max(r["solver.iterations"], 1), 3)
        workloads[name] = entry
    return workloads


def compare(baseline: dict, current: dict, threshold: float) -> list:
    """Workloads whose delta-engine solver.iterations regressed."""
    regressions = []
    for name, entry in sorted(current.items()):
        old = baseline.get("workloads", {}).get(name, {})
        old_rec = old.get("engines", {}).get("delta")
        new_rec = entry.get("engines", {}).get("delta")
        if not old_rec or not new_rec:
            continue
        if old.get("scale") != entry.get("scale"):
            continue  # different problem size — not comparable
        old_it = old_rec.get("solver.iterations")
        new_it = new_rec.get("solver.iterations")
        if not old_it or new_it is None:
            continue
        ratio = new_it / old_it
        if ratio > 1.0 + threshold:
            regressions.append((name, old_it, new_it, ratio))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH.json",
                        help="output JSON path")
    parser.add_argument("--pr", default=None,
                        help="PR number recorded in the snapshot")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated subset (default: all)")
    parser.add_argument("--scales", choices=("smoke", "bench"),
                        default="smoke",
                        help="generator scales: smoke (CI-sized, default) "
                             "or bench (Table 2-sized)")
    parser.add_argument("--engines", default="delta,reference",
                        help="comma-separated engines to run")
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="flag delta-engine solver.iterations "
                             "regressions against a previous snapshot")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="regression threshold for --compare "
                             "(default 0.20 = +20%%)")
    parser.add_argument("--reps", type=int, default=5,
                        help="timed solve-phase iterations per engine "
                             "(default 5; 0 skips solve re-timing)")
    parser.add_argument("--warmup", type=int, default=2,
                        help="discarded solve-phase warmup iterations "
                             "(default 2)")
    parser.add_argument("--queries", type=int, default=4,
                        help="demand-query section size: N random + N "
                             "hot variables per workload (default 4; "
                             "0 skips the query section)")
    args = parser.parse_args(argv)

    names = (args.workloads.split(",") if args.workloads
             else list(workload_names()))
    scales = SMOKE_SCALES if args.scales == "smoke" else BENCH_SCALES
    engines = tuple(args.engines.split(","))

    print(f"bench: {len(names)} workloads, scales={args.scales}, "
          f"engines={','.join(engines)}, reps={args.reps}")
    workloads = run_snapshot(names, scales, engines,
                             reps=args.reps, warmup=args.warmup,
                             queries=args.queries)
    doc = {
        "schema": SCHEMA,
        "pr": args.pr,
        "scales": args.scales,
        "workloads": workloads,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        regressions = compare(baseline, workloads, args.threshold)
        if regressions:
            print(f"\nsolver.iterations regressions vs {args.compare} "
                  f"(>{args.threshold:.0%}):")
            for name, old_it, new_it, ratio in regressions:
                print(f"  {name}: {old_it} -> {new_it} ({ratio:.2f}x)")
            return 1
        print(f"no solver.iterations regressions vs {args.compare}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
