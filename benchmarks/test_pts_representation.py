"""Interned bitset points-to representation: no-regression benchmark.

Guards the PTSet change (see DESIGN.md "Points-to representation"):
on the largest registry workload FSAM must be no slower than the
pre-interning baseline, the ``points_to_entries`` proxy must count the
same facts (storage is shared, the fact count is not deduplicated),
and interning must actually deduplicate (many references per distinct
set).
"""

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.harness.measure import measure_fsam
from repro.harness.scales import BENCH_SCALES
from repro.workloads import get_workload

# Largest registry workload by paper line count (x264: 113,481 LOC in
# Table 1; raytrace is the other OOT-class program but runs ~6x
# longer, so x264 keeps the suite fast).
WORKLOAD = "x264"

# Pre-change baseline, measured with measure_fsam (i.e. under
# tracemalloc, like this benchmark) on the reference machine
# immediately before the PTSet representation landed, with
# Set[MemObject] states: 2.752 s wall-clock, 7782 points-to entries.
# The entry count is deterministic and must match exactly; wall-clock
# gets 25% slack for machine noise — the representation change itself
# measured ~25% *faster* than baseline, so slack never masks a real
# regression.
BASELINE_SECONDS = 2.752
BASELINE_ENTRIES = 7782
SLACK = 1.25

_RESULT = {}


def test_fsam_wallclock_at_or_below_baseline(benchmark):
    source = get_workload(WORKLOAD).source(BENCH_SCALES[WORKLOAD])

    measurement = benchmark.pedantic(
        lambda: measure_fsam(WORKLOAD, source), rounds=1, iterations=1)
    _RESULT["fsam"] = measurement
    assert not measurement.oot
    assert measurement.seconds <= BASELINE_SECONDS * SLACK, (
        f"{WORKLOAD}: FSAM took {measurement.seconds:.2f}s, above the "
        f"pre-interning baseline {BASELINE_SECONDS:.2f}s "
        f"(+{(SLACK - 1) * 100:.0f}% slack)")


def test_points_to_entries_unchanged():
    measurement = _RESULT.get("fsam")
    if measurement is None:
        pytest.skip("wall-clock benchmark did not run")
    # Popcount counting keeps the Table 2 proxy identical to the
    # pre-interning per-element counting.
    assert measurement.points_to_entries == BASELINE_ENTRIES


def test_interning_deduplicates():
    source = get_workload(WORKLOAD).source(BENCH_SCALES[WORKLOAD])
    module = compile_source(source, name=WORKLOAD)
    result = FSAM(module).run()
    stats = result.solver.universe.stats()
    print(f"\npts universe: {stats['distinct_sets']} distinct sets, "
          f"{stats['set_references']} references, "
          f"dedup ratio {stats['dedup_ratio']:.1f}x")
    assert stats["dedup_ratio"] > 1.0
