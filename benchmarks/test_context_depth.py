"""Extension ablation: context-sensitivity depth.

The paper analyses fork/join/lock operations with full calling
contexts (recursion collapsed). This bench quantifies what k-limited
contexts buy and cost on the deep-call-chain program (raytrace):
state-graph size and analysis time drop as k shrinks, while the
points-to state can only grow (coarser MHP -> more thread edges).
"""

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.workloads import get_workload

DEPTHS = [0, 1, 2, None]
NAME = "raytrace"
SCALE = 2


@pytest.mark.parametrize("depth", DEPTHS)
def test_context_depth(benchmark, depth):
    source = get_workload(NAME).source(SCALE)

    def run():
        module = compile_source(source, name=NAME)
        return FSAM(module, FSAMConfig(max_context_depth=depth)).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    states = sum(len(g.state_info)
                 for g in result.thread_model.state_graphs.values())
    label = "full" if depth is None else f"k={depth}"
    print(f"\n[context depth {label}] states={states} "
          f"entries={result.points_to_entries()} "
          f"thread_edges={len(result.dug.thread_edges)}")
    assert result.points_to_entries() > 0
