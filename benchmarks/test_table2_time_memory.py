"""Table 2: analysis time and memory, FSAM vs NONSPARSE.

The headline result: FSAM an order of magnitude faster and far
smaller in analysis state than the traditional data-flow analysis,
which times out (OOT) on the two largest programs. The absolute
numbers are CPython-scale; the relationships are the paper's.
"""

import pytest

from repro.harness import BASELINE_BUDGET, BENCH_SCALES, render_table2
from repro.harness.measure import measure_fsam, measure_nonsparse
from repro.harness.scales import EXPECTED_OOT
from repro.workloads import get_workload, workload_names

_RESULTS = {}


@pytest.mark.parametrize("name", workload_names())
def test_table2_row(benchmark, name):
    source = get_workload(name).source(BENCH_SCALES[name])

    def run_both():
        fsam = measure_fsam(name, source)
        nonsparse = measure_nonsparse(name, source, budget=BASELINE_BUDGET)
        return {"benchmark": name, "fsam": fsam, "nonsparse": nonsparse}

    row = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _RESULTS[name] = row
    assert not row["fsam"].oot, "FSAM must always finish"
    if name in EXPECTED_OOT:
        assert row["nonsparse"].oot, (
            f"{name}: the baseline should exceed the {BASELINE_BUDGET:.0f}s "
            f"budget (paper Table 2)")
    else:
        assert not row["nonsparse"].oot
        # The shape claim: FSAM uses less analysis state everywhere.
        assert row["fsam"].points_to_entries < row["nonsparse"].points_to_entries


def test_zz_render_table2(benchmark):
    rows = [_RESULTS[n] for n in workload_names() if n in _RESULTS]
    text = benchmark.pedantic(render_table2, args=(rows,), rounds=1, iterations=1)
    print()
    print(text)
    finishers = [r for r in rows if not r["nonsparse"].oot]
    if finishers:
        speedups = [r["nonsparse"].seconds / max(r["fsam"].seconds, 1e-9)
                    for r in finishers]
        # Paper: 12x average on the finishers; require a clear win.
        assert sum(speedups) / len(speedups) > 2.0
