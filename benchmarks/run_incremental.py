"""Incremental-analysis benchmark: warm-vs-cold solver iterations.

For each workload a cold run populates the per-function artifact
store, one function receives an IR-visible single-function edit (an
address-taken store through a fresh local), and the edited source is
then analyzed three ways:

- **cold scalar** (``FSAMConfig(kernel="none")``) — the baseline the
  warm run is measured against. ``solve_incremental`` always runs the
  scalar delta engine, and the vectorized kernel's iteration counter
  excludes interior merge-node evaluations, so kernel-vs-scalar
  iteration counts are not comparable;
- **cold kernel** (default config) — recorded for context;
- **warm** — the scalar config plus the populated per-function store:
  unchanged functions' fixpoints are preloaded, only DUG nodes
  downstream of the edit are re-solved.

The snapshot records, per workload, the three iteration counts, the
reduction factor (cold scalar / warm), the per-function hit rate, the
seeded-node count against the DUG size, and whether the warm fixpoint
was bit-identical to the cold one (payload digest over objects,
``pts_top``, ``mem``, and store classes). The section is merged into
an existing ``BENCH_<n>.json`` produced by ``run_bench.py`` when
``--out`` names one, so one snapshot carries both the engine bench and
the incremental bench.

Usage::

    PYTHONPATH=src python benchmarks/run_incremental.py \
        --pr 7 --out BENCH_7.json
    PYTHONPATH=src python benchmarks/run_incremental.py \
        --workloads raytrace,x264 --targets raytrace=intersect_shape_7

``--min-reduction`` (default 5.0) makes the process exit non-zero when
any of the ``--require`` workloads (default ``raytrace,x264``) falls
below the bar, so CI can surface an incremental-reuse regression.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

from repro.fsam.config import FSAMConfig
from repro.harness.scales import BENCH_SCALES, SMOKE_SCALES
from repro.service.cache import FuncArtifactStore
from repro.service.requests import AnalysisRequest
from repro.service.runner import run_request_inline
from repro.workloads import get_workload, source_loc, workload_names

#: Top-level MiniC function headers (return type at column 0).
_HEADER = re.compile(r"^[A-Za-z_][\w \*]*?([A-Za-z_]\w*)\s*\(.*\)\s*\{\s*$")

#: Address-taken so mem2reg/DCE cannot erase it: the edited function's
#: canonical IR is guaranteed to change.
STORE_EDIT = "    int z_q; int *p_q; p_q = &z_q; *p_q = 1;"


def _functions(source: str):
    return [m.group(1) for line in source.split("\n")
            if (m := _HEADER.match(line))]


def _edit(source: str, fn: str) -> str:
    lines = source.split("\n")
    for i, line in enumerate(lines):
        m = _HEADER.match(line)
        if m and m.group(1) == fn:
            return "\n".join(lines[:i + 1] + [STORE_EDIT] + lines[i + 1:])
    raise SystemExit(f"error: function {fn!r} not found "
                     f"(have: {', '.join(_functions(source))})")


def _run(source: str, name: str, config: FSAMConfig, store=None):
    request = AnalysisRequest(name=name, source=source, config=config)
    return run_request_inline(request, funcstore=store)


def bench_workload(name: str, scale: int, target=None,
                   verbose: bool = True) -> dict:
    base = get_workload(name).source(scale)
    fn = target or next(f for f in _functions(base) if f != "main")
    edited = _edit(base, fn)
    scalar = FSAMConfig(kernel="none")

    with tempfile.TemporaryDirectory() as root:
        store = FuncArtifactStore(root)
        _run(base, name, scalar, store)                 # populate the store
        warm = _run(edited, name, scalar, store)
    cold_scalar = _run(edited, name, scalar)
    cold_kernel = _run(edited, name, FSAMConfig())

    incr = warm.artifact.summary["incremental"]
    warm_iters = warm.artifact.summary["solver_iterations"]
    cold_iters = cold_scalar.artifact.summary["solver_iterations"]
    record = {
        "scale": scale,
        "loc": source_loc(base),
        "edited_function": fn,
        "cold_scalar_iterations": cold_iters,
        "cold_kernel_iterations":
            cold_kernel.artifact.summary["solver_iterations"],
        "warm_iterations": warm_iters,
        "iteration_reduction": round(cold_iters / max(warm_iters, 1), 1),
        "functions": incr["functions"],
        "func_hits": incr["func_hits"],
        "seeded_nodes": incr["seeded_nodes"],
        "frozen_nodes": incr["frozen_nodes"],
        "dug_nodes": incr["dug_nodes"],
        "cold_seconds": round(cold_scalar.seconds, 4),
        "warm_seconds": round(warm.seconds, 4),
        "bit_identical": warm.artifact.payload_digest()
            == cold_scalar.artifact.payload_digest()
            == cold_kernel.artifact.payload_digest(),
    }
    if verbose:
        print(f"  {name:>14} edit {fn}: "
              f"cold={cold_iters} warm={warm_iters} "
              f"({record['iteration_reduction']}x fewer), "
              f"hits={incr['func_hits']}/{incr['functions']}, "
              f"seeded={incr['seeded_nodes']}/{incr['dug_nodes']}, "
              f"identical={record['bit_identical']}")
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_incremental.json",
                        help="snapshot path; an existing run_bench.py "
                             "snapshot is merged into, not overwritten")
    parser.add_argument("--pr", default=None,
                        help="PR number recorded in a fresh snapshot")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated subset (default: all)")
    parser.add_argument("--scales", choices=("smoke", "bench"),
                        default="smoke")
    parser.add_argument("--targets", default=None,
                        help="comma-separated name=function overrides "
                             "for the edited function (default: the "
                             "first non-main function)")
    parser.add_argument("--require", default="raytrace,x264",
                        help="workloads that must meet --min-reduction "
                             "(default: raytrace,x264)")
    parser.add_argument("--min-reduction", type=float, default=5.0,
                        help="minimum cold/warm iteration factor for "
                             "--require workloads (default 5.0)")
    args = parser.parse_args(argv)

    names = (args.workloads.split(",") if args.workloads
             else list(workload_names()))
    scales = SMOKE_SCALES if args.scales == "smoke" else BENCH_SCALES
    targets = dict(pair.split("=", 1)
                   for pair in (args.targets or "").split(",") if pair)

    print(f"incremental bench: {len(names)} workloads, "
          f"scales={args.scales}")
    section = {"edit": "single-function address-taken store",
               "baseline": "cold scalar delta engine (kernel=none)",
               "workloads": {}}
    for name in names:
        section["workloads"][name] = bench_workload(
            name, scales[name], target=targets.get(name))

    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
        print(f"merging incremental section into existing {args.out}")
    else:
        doc = {"schema": "repro.bench/1", "pr": args.pr,
               "scales": args.scales, "workloads": {}}
    doc["incremental"] = section
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    failed = []
    for name in args.require.split(","):
        record = section["workloads"].get(name)
        if record is None:
            continue
        if not record["bit_identical"]:
            failed.append(f"{name}: warm fixpoint not bit-identical")
        if record["iteration_reduction"] < args.min_reduction:
            failed.append(f"{name}: {record['iteration_reduction']}x < "
                          f"{args.min_reduction}x iteration reduction")
    for line in failed:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
