"""Extension bench: IR simplification's effect on analysis cost.

Mirrors the role of LLVM's cleanup passes in the paper's setup:
copy propagation + DCE + CFG simplification shrink the IR the
analyses see; this bench reports the instruction-count reduction and
the FSAM end-to-end effect per workload.
"""

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.workloads import get_workload, workload_names

SCALE = 1


def instr_count(module):
    return sum(1 for _ in module.all_instructions())


@pytest.mark.parametrize("name", workload_names())
def test_simplify_impact(benchmark, name):
    source = get_workload(name).source(SCALE)

    def run_both():
        plain_mod = compile_source(source, name=name)
        plain_n = instr_count(plain_mod)
        plain = FSAM(plain_mod).run()
        slim_mod = compile_source(source, name=name, simplify=True)
        slim_n = instr_count(slim_mod)
        slim = FSAM(slim_mod).run()
        return plain_n, slim_n, plain, slim

    plain_n, slim_n, plain, slim = benchmark.pedantic(run_both, rounds=1,
                                                      iterations=1)
    shrink = 1.0 - slim_n / plain_n
    print(f"\n[{name}] IR {plain_n} -> {slim_n} instructions "
          f"({shrink * 100.0:.1f}% smaller), "
          f"solve {plain.phase_times['sparse_solve'] * 1000:.1f}ms -> "
          f"{slim.phase_times['sparse_solve'] * 1000:.1f}ms")
    assert slim_n <= plain_n
