"""Generic forward data-flow engine tests."""

from repro.graphs import DataflowProblem, DiGraph, solve_forward


def build(edges):
    g = DiGraph()
    for a, b in edges:
        g.add_edge(a, b)
    return g


def reaching_labels(graph, entry, gen):
    """A tiny may-analysis: which labels reach each node."""
    problem = DataflowProblem(
        graph,
        entry_fact=lambda n: frozenset(),
        bottom=lambda: frozenset(),
        transfer=lambda n, fact: fact | gen.get(n, frozenset()),
        meet=lambda a, b: a | b,
        equal=lambda a, b: a == b,
    )
    return solve_forward(problem, [entry])


class TestMayAnalysis:
    def test_linear_accumulation(self):
        g = build([(1, 2), (2, 3)])
        out = reaching_labels(g, 1, {1: frozenset("a"), 2: frozenset("b")})
        assert out[3] == {"a", "b"}

    def test_branch_union_at_join(self):
        g = build([(1, 2), (1, 3), (2, 4), (3, 4)])
        out = reaching_labels(g, 1, {2: frozenset("x"), 3: frozenset("y")})
        assert out[4] == {"x", "y"}

    def test_loop_reaches_fixpoint(self):
        g = build([(1, 2), (2, 3), (3, 2), (2, 4)])
        out = reaching_labels(g, 1, {3: frozenset("l")})
        assert "l" in out[2]
        assert "l" in out[4]

    def test_unreachable_nodes_not_solved(self):
        g = build([(1, 2), (8, 9)])
        out = reaching_labels(g, 1, {})
        assert 9 not in out


class TestMustAnalysis:
    def test_intersection_at_join(self):
        g = build([(1, 2), (1, 3), (2, 4), (3, 4)])
        universe = frozenset("abc")
        gen = {2: frozenset("ab"), 3: frozenset("b")}
        problem = DataflowProblem(
            g,
            entry_fact=lambda n: frozenset(),
            bottom=lambda: universe,
            transfer=lambda n, fact: fact | gen.get(n, frozenset()),
            meet=lambda a, b: a & b,
            equal=lambda a, b: a == b,
        )
        out = solve_forward(problem, [1])
        assert out[4] == {"b"}  # only b holds on every path

    def test_must_through_loop(self):
        # A label generated before the loop must still hold after it.
        g = build([(1, 2), (2, 3), (3, 2), (2, 4)])
        universe = frozenset("ab")
        gen = {1: frozenset("a")}
        problem = DataflowProblem(
            g,
            entry_fact=lambda n: frozenset(),
            bottom=lambda: universe,
            transfer=lambda n, fact: fact | gen.get(n, frozenset()),
            meet=lambda a, b: a & b,
            equal=lambda a, b: a == b,
        )
        out = solve_forward(problem, [1])
        assert "a" in out[4]
        assert "b" not in out[4]


class TestEntryBackEdge:
    """An entry node's IN fact must meet predecessor OUTs too.

    A back-edge into the entry (e.g. a state-graph loop returning to a
    thread's entry state) contributes facts generated inside the loop;
    an engine that seeded entries from entry_fact alone would drop
    them on re-entry and under-approximate the fixpoint.
    """

    def test_back_edge_into_entry_contributes(self):
        # 1 -> 2 -> 1: the label generated at 2 must flow back into 1.
        g = build([(1, 2), (2, 1)])
        out = reaching_labels(g, 1, {2: frozenset("x")})
        assert out[1] == {"x"}

    def test_entry_fact_and_loop_facts_both_survive(self):
        g = build([(1, 2), (2, 3), (3, 1), (2, 4)])
        problem = DataflowProblem(
            g,
            entry_fact=lambda n: frozenset("e"),
            bottom=lambda: frozenset(),
            transfer=lambda n, fact: fact | {"g3"} if n == 3 else fact,
            meet=lambda a, b: a | b,
            equal=lambda a, b: a == b,
        )
        out = solve_forward(problem, [1])
        # The seed reaches everywhere; the loop-generated label flows
        # back through the entry and out of the exit.
        assert out[1] == {"e", "g3"}
        assert out[4] == {"e", "g3"}

    def test_self_loop_on_entry(self):
        g = build([(1, 1), (1, 2)])
        out = reaching_labels(g, 1, {1: frozenset("s")})
        assert out[1] == {"s"}
        assert out[2] == {"s"}

    def test_two_entries_with_cross_edges(self):
        g = build([(1, 3), (2, 3), (3, 1), (3, 2)])
        problem_out = solve_forward(DataflowProblem(
            g,
            entry_fact=lambda n: frozenset(),
            bottom=lambda: frozenset(),
            transfer=lambda n, fact: fact | {1: frozenset("a"),
                                             2: frozenset("b")}.get(n, frozenset()),
            meet=lambda a, b: a | b,
            equal=lambda a, b: a == b,
        ), [1, 2])
        assert problem_out[1] == {"a", "b"}
        assert problem_out[2] == {"a", "b"}


class TestIterationStats:
    def test_stats_counts_node_evaluations(self):
        g = build([(1, 2), (2, 3)])
        stats = {}
        problem = DataflowProblem(
            g,
            entry_fact=lambda n: frozenset(),
            bottom=lambda: frozenset(),
            transfer=lambda n, fact: fact | {"x"},
            meet=lambda a, b: a | b,
            equal=lambda a, b: a == b,
        )
        solve_forward(problem, [1], stats=stats)
        assert stats["iterations"] >= 3

    def test_stats_accumulates_across_calls(self):
        g = build([(1, 2)])
        stats = {"iterations": 5}
        problem = DataflowProblem(
            g,
            entry_fact=lambda n: frozenset(),
            bottom=lambda: frozenset(),
            transfer=lambda n, fact: fact,
            meet=lambda a, b: a | b,
            equal=lambda a, b: a == b,
        )
        solve_forward(problem, [1], stats=stats)
        assert stats["iterations"] > 5

    def test_stats_optional(self):
        g = build([(1, 2)])
        out = reaching_labels(g, 1, {1: frozenset("x")})
        assert out[2] == {"x"}
