"""Generic forward data-flow engine tests."""

from repro.graphs import DataflowProblem, DiGraph, solve_forward


def build(edges):
    g = DiGraph()
    for a, b in edges:
        g.add_edge(a, b)
    return g


def reaching_labels(graph, entry, gen):
    """A tiny may-analysis: which labels reach each node."""
    problem = DataflowProblem(
        graph,
        entry_fact=lambda n: frozenset(),
        bottom=lambda: frozenset(),
        transfer=lambda n, fact: fact | gen.get(n, frozenset()),
        meet=lambda a, b: a | b,
        equal=lambda a, b: a == b,
    )
    return solve_forward(problem, [entry])


class TestMayAnalysis:
    def test_linear_accumulation(self):
        g = build([(1, 2), (2, 3)])
        out = reaching_labels(g, 1, {1: frozenset("a"), 2: frozenset("b")})
        assert out[3] == {"a", "b"}

    def test_branch_union_at_join(self):
        g = build([(1, 2), (1, 3), (2, 4), (3, 4)])
        out = reaching_labels(g, 1, {2: frozenset("x"), 3: frozenset("y")})
        assert out[4] == {"x", "y"}

    def test_loop_reaches_fixpoint(self):
        g = build([(1, 2), (2, 3), (3, 2), (2, 4)])
        out = reaching_labels(g, 1, {3: frozenset("l")})
        assert "l" in out[2]
        assert "l" in out[4]

    def test_unreachable_nodes_not_solved(self):
        g = build([(1, 2), (8, 9)])
        out = reaching_labels(g, 1, {})
        assert 9 not in out


class TestMustAnalysis:
    def test_intersection_at_join(self):
        g = build([(1, 2), (1, 3), (2, 4), (3, 4)])
        universe = frozenset("abc")
        gen = {2: frozenset("ab"), 3: frozenset("b")}
        problem = DataflowProblem(
            g,
            entry_fact=lambda n: frozenset(),
            bottom=lambda: universe,
            transfer=lambda n, fact: fact | gen.get(n, frozenset()),
            meet=lambda a, b: a & b,
            equal=lambda a, b: a == b,
        )
        out = solve_forward(problem, [1])
        assert out[4] == {"b"}  # only b holds on every path

    def test_must_through_loop(self):
        # A label generated before the loop must still hold after it.
        g = build([(1, 2), (2, 3), (3, 2), (2, 4)])
        universe = frozenset("ab")
        gen = {1: frozenset("a")}
        problem = DataflowProblem(
            g,
            entry_fact=lambda n: frozenset(),
            bottom=lambda: universe,
            transfer=lambda n, fact: fact | gen.get(n, frozenset()),
            meet=lambda a, b: a & b,
            equal=lambda a, b: a == b,
        )
        out = solve_forward(problem, [1])
        assert "a" in out[4]
        assert "b" not in out[4]
