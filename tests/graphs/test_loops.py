"""Natural loop discovery tests."""

from repro.graphs import DiGraph, natural_loops
from repro.graphs.loops import blocks_in_loops


def build(edges):
    g = DiGraph()
    for a, b in edges:
        g.add_edge(a, b)
    return g


class TestNaturalLoops:
    def test_no_loops_on_dag(self):
        g = build([(1, 2), (2, 3)])
        assert natural_loops(g, 1) == []

    def test_simple_while_loop(self):
        # 1 -> 2(header) -> 3(body) -> 2, 2 -> 4
        g = build([(1, 2), (2, 3), (3, 2), (2, 4)])
        loops = natural_loops(g, 1)
        assert len(loops) == 1
        assert loops[0].header == 2
        assert loops[0].body == {2, 3}

    def test_self_loop(self):
        g = build([(1, 2), (2, 2), (2, 3)])
        loops = natural_loops(g, 1)
        assert len(loops) == 1
        assert loops[0].body == {2}

    def test_nested_loops(self):
        # outer: 2..5, inner: 3..4
        g = build([(1, 2), (2, 3), (3, 4), (4, 3), (4, 5), (5, 2), (2, 6)])
        loops = natural_loops(g, 1)
        headers = {l.header: l for l in loops}
        assert set(headers) == {2, 3}
        assert headers[3].body == {3, 4}
        assert headers[2].body >= {2, 3, 4, 5}

    def test_two_back_edges_same_header_merge(self):
        g = build([(1, 2), (2, 3), (3, 2), (2, 4), (4, 2), (2, 5)])
        loops = natural_loops(g, 1)
        assert len(loops) == 1
        assert loops[0].body == {2, 3, 4}

    def test_blocks_in_loops_union(self):
        g = build([(1, 2), (2, 3), (3, 2), (2, 4)])
        assert blocks_in_loops(g, 1) == {2, 3}

    def test_goto_like_cycle_not_dominated_is_ignored(self):
        # Edge 4 -> 2 where 2 does not dominate 4 is not a back edge.
        g = build([(1, 2), (1, 4), (4, 2), (2, 3)])
        assert natural_loops(g, 1) == []

    def test_loop_membership_operator(self):
        g = build([(1, 2), (2, 3), (3, 2), (2, 4)])
        loop = natural_loops(g, 1)[0]
        assert 3 in loop
        assert 4 not in loop
