"""Dominator tree and dominance frontier tests."""

from repro.graphs import DiGraph, DominatorTree, dominance_frontiers
from repro.graphs.dominance import iterated_dominance_frontier


def build(edges):
    g = DiGraph()
    for a, b in edges:
        g.add_edge(a, b)
    return g


def diamond():
    # 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4
    return build([(1, 2), (1, 3), (2, 4), (3, 4)])


class TestDominatorTree:
    def test_entry_has_no_idom(self):
        t = DominatorTree(diamond(), 1)
        assert t.immediate_dominator(1) is None

    def test_diamond_idoms(self):
        t = DominatorTree(diamond(), 1)
        assert t.immediate_dominator(2) == 1
        assert t.immediate_dominator(3) == 1
        assert t.immediate_dominator(4) == 1  # join dominated by fork point

    def test_linear_chain(self):
        t = DominatorTree(build([(1, 2), (2, 3)]), 1)
        assert t.immediate_dominator(3) == 2
        assert t.dominates(1, 3)
        assert t.dominates(2, 3)
        assert not t.dominates(3, 2)

    def test_dominates_reflexive(self):
        t = DominatorTree(diamond(), 1)
        assert t.dominates(2, 2)

    def test_loop_back_edge(self):
        # 1 -> 2 -> 3 -> 2, 3 -> 4
        t = DominatorTree(build([(1, 2), (2, 3), (3, 2), (3, 4)]), 1)
        assert t.immediate_dominator(2) == 1
        assert t.immediate_dominator(3) == 2
        assert t.immediate_dominator(4) == 3

    def test_unreachable_nodes_excluded(self):
        g = build([(1, 2), (8, 9)])
        t = DominatorTree(g, 1)
        assert t.immediate_dominator(9) is None
        assert not t.dominates(1, 9)

    def test_children_partition(self):
        t = DominatorTree(diamond(), 1)
        assert sorted(t.children(1)) == [2, 3, 4]

    def test_dfs_preorder_starts_at_entry(self):
        t = DominatorTree(diamond(), 1)
        order = t.dfs_preorder()
        assert order[0] == 1
        assert sorted(order) == [1, 2, 3, 4]

    def test_irreducible_style_graph(self):
        # Two entries into a cycle: 1->2, 1->3, 2->3, 3->2, 2->4
        t = DominatorTree(build([(1, 2), (1, 3), (2, 3), (3, 2), (2, 4)]), 1)
        assert t.immediate_dominator(2) == 1
        assert t.immediate_dominator(3) == 1
        assert t.immediate_dominator(4) == 2


class TestFrontiers:
    def test_diamond_frontier(self):
        g = diamond()
        t = DominatorTree(g, 1)
        df = dominance_frontiers(g, t)
        assert df[2] == {4}
        assert df[3] == {4}
        assert df[1] == set()
        assert df[4] == set()

    def test_loop_frontier_contains_header(self):
        g = build([(1, 2), (2, 3), (3, 2), (3, 4)])
        t = DominatorTree(g, 1)
        df = dominance_frontiers(g, t)
        assert 2 in df[3]  # the back edge puts the header in 3's DF
        assert 2 in df[2]  # the header is in its own frontier

    def test_iterated_frontier_diamond(self):
        g = diamond()
        df = dominance_frontiers(g, DominatorTree(g, 1))
        assert iterated_dominance_frontier(df, {2}) == {4}
        assert iterated_dominance_frontier(df, {2, 3}) == {4}
        assert iterated_dominance_frontier(df, {1}) == set()

    def test_iterated_frontier_cascades(self):
        # Nested diamonds: phi at inner join forces phi at outer join.
        g = build([(1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (1, 5)])
        df = dominance_frontiers(g, DominatorTree(g, 1))
        idf = iterated_dominance_frontier(df, {2})
        assert 4 in idf and 5 in idf
