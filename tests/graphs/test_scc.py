"""Tarjan SCC, topological-rank, and condensation tests."""

import random

from repro.graphs import DiGraph, condensation, tarjan_scc
from repro.graphs.scc import topo_ranks, topo_ranks_dense


def build(edges, nodes=()):
    g = DiGraph()
    for n in nodes:
        g.add_node(n)
    for a, b in edges:
        g.add_edge(a, b)
    return g


def scc_sets(graph):
    return {frozenset(c) for c in tarjan_scc(graph)}


class TestTarjan:
    def test_empty_graph(self):
        assert tarjan_scc(DiGraph()) == []

    def test_singletons_on_dag(self):
        g = build([(1, 2), (2, 3)])
        assert scc_sets(g) == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_simple_cycle(self):
        g = build([(1, 2), (2, 3), (3, 1)])
        assert scc_sets(g) == {frozenset({1, 2, 3})}

    def test_two_cycles_bridged(self):
        g = build([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        assert scc_sets(g) == {frozenset({1, 2}), frozenset({3, 4})}

    def test_self_loop_is_its_own_scc(self):
        g = build([(1, 1), (1, 2)])
        assert scc_sets(g) == {frozenset({1}), frozenset({2})}

    def test_reverse_topological_emission(self):
        # Tarjan emits callees before callers.
        g = build([(1, 2), (2, 3)])
        sccs = tarjan_scc(g)
        order = [c[0] for c in sccs]
        assert order.index(3) < order.index(2) < order.index(1)

    def test_isolated_nodes(self):
        g = build([], nodes=["a", "b"])
        assert scc_sets(g) == {frozenset({"a"}), frozenset({"b"})}

    def test_large_chain_no_recursion_error(self):
        # The iterative implementation must survive deep graphs.
        n = 5000
        g = build([(i, i + 1) for i in range(n)])
        assert len(tarjan_scc(g)) == n + 1

    def test_large_cycle(self):
        n = 2000
        edges = [(i, (i + 1) % n) for i in range(n)]
        g = build(edges)
        assert scc_sets(g) == {frozenset(range(n))}


class TestCondensation:
    def test_condensed_dag_edges(self):
        g = build([(1, 2), (2, 1), (2, 3)])
        dag, scc_of = condensation(g)
        assert scc_of[1] == scc_of[2] != scc_of[3]
        assert dag.has_edge(scc_of[1], scc_of[3])

    def test_condensation_is_acyclic(self):
        g = build([(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 4)])
        dag, scc_of = condensation(g)
        inner = {frozenset(c) for c in tarjan_scc(dag)}
        assert all(len(c) == 1 for c in inner)

    def test_no_self_edges_in_condensation(self):
        g = build([(1, 2), (2, 1)])
        dag, scc_of = condensation(g)
        assert not dag.has_edge(scc_of[1], scc_of[1])


def _ranks_are_topological(succ, rank):
    """Every cross-SCC edge goes from a smaller to a larger rank."""
    for node, succs in enumerate(succ):
        for s in succs:
            assert rank[node] <= rank[s]


class TestTopoRanks:
    def test_chain_ranks_ascend(self):
        succ = [[1], [2], [3], []]
        rank, count = topo_ranks_dense(succ)
        assert rank == [0, 1, 2, 3]
        assert count == 4

    def test_cycle_shares_a_rank(self):
        succ = [[1], [2], [0, 3], []]
        rank, count = topo_ranks_dense(succ)
        assert rank[0] == rank[1] == rank[2] < rank[3]
        assert count == 2

    def test_diamond(self):
        succ = [[1, 2], [3], [3], []]
        rank, count = topo_ranks_dense(succ)
        assert rank[0] < rank[1] and rank[0] < rank[2]
        assert rank[1] < rank[3] and rank[2] < rank[3]
        assert count == 4

    def test_dense_agrees_with_generic(self):
        """The flat-array variant must compute the same SCC structure
        and topologically valid ranks as the readable generic one, on
        random graphs with cycles."""
        rng = random.Random(7)
        for _trial in range(20):
            n = rng.randrange(1, 40)
            succ = [[] for _ in range(n)]
            for _ in range(rng.randrange(0, 3 * n)):
                succ[rng.randrange(n)].append(rng.randrange(n))
            dense_rank, dense_count = topo_ranks_dense(succ)
            gen_rank, gen_count = topo_ranks(
                range(n), lambda v: succ[v])
            assert dense_count == gen_count
            # Same SCC partition: nodes share a dense rank exactly
            # when they share a generic rank.
            for a in range(n):
                for b in range(n):
                    assert (dense_rank[a] == dense_rank[b]) == \
                        (gen_rank[a] == gen_rank[b])
            _ranks_are_topological(succ, dense_rank)
            _ranks_are_topological(succ, gen_rank)

    def test_large_chain_no_recursion_error(self):
        n = 40000
        succ = [[i + 1] for i in range(n - 1)] + [[]]
        rank, count = topo_ranks_dense(succ)
        assert count == n
        assert rank[0] == 0 and rank[-1] == n - 1
