"""Unit tests for the directed-graph container."""

from repro.graphs import DiGraph


def build(edges):
    g = DiGraph()
    for a, b in edges:
        g.add_edge(a, b)
    return g


class TestBasics:
    def test_empty(self):
        g = DiGraph()
        assert len(g) == 0
        assert list(g.nodes()) == []
        assert g.num_edges() == 0

    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node("a")
        g.add_node("a")
        assert len(g) == 1

    def test_add_edge_creates_nodes(self):
        g = build([(1, 2)])
        assert 1 in g and 2 in g
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_parallel_edges_deduplicated(self):
        g = build([(1, 2), (1, 2)])
        assert g.num_edges() == 1

    def test_successors_predecessors(self):
        g = build([(1, 2), (1, 3), (2, 3)])
        assert g.successors(1) == {2, 3}
        assert g.predecessors(3) == {1, 2}
        assert g.predecessors(1) == set()

    def test_remove_edge(self):
        g = build([(1, 2)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert 1 in g and 2 in g

    def test_remove_missing_edge_is_noop(self):
        g = build([(1, 2)])
        g.remove_edge(5, 6)
        assert g.num_edges() == 1

    def test_edges_iteration(self):
        g = build([(1, 2), (2, 3)])
        assert set(g.edges()) == {(1, 2), (2, 3)}

    def test_self_loop(self):
        g = build([(1, 1)])
        assert g.has_edge(1, 1)
        assert 1 in g.successors(1)
        assert 1 in g.predecessors(1)


class TestReachability:
    def test_reachable_from_includes_start(self):
        g = build([(1, 2), (2, 3), (4, 5)])
        assert g.reachable_from(1) == {1, 2, 3}

    def test_reachable_from_missing_node(self):
        g = build([(1, 2)])
        assert g.reachable_from(99) == set()

    def test_reverse_reachable(self):
        g = build([(1, 2), (2, 3), (4, 3)])
        assert g.reverse_reachable_from(3) == {1, 2, 3, 4}

    def test_reachable_through_cycle(self):
        g = build([(1, 2), (2, 1), (2, 3)])
        assert g.reachable_from(1) == {1, 2, 3}


class TestOrders:
    def test_postorder_linear(self):
        g = build([(1, 2), (2, 3)])
        assert g.postorder(1) == [3, 2, 1]

    def test_reverse_postorder_is_topological_on_dag(self):
        g = build([(1, 2), (1, 3), (2, 4), (3, 4)])
        order = g.reverse_postorder(1)
        pos = {n: i for i, n in enumerate(order)}
        for a, b in g.edges():
            assert pos[a] < pos[b]

    def test_postorder_handles_cycles(self):
        g = build([(1, 2), (2, 3), (3, 1)])
        order = g.postorder(1)
        assert sorted(order) == [1, 2, 3]
        assert order[-1] == 1  # the root finishes last

    def test_copy_independent(self):
        g = build([(1, 2)])
        dup = g.copy()
        dup.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert dup.has_edge(1, 2)
