"""IR type system tests."""

from repro.ir.types import (
    ArrayType, FunctionType, IntType, LockType, PointerType, StructType,
    ThreadType, VoidType, INT, VOID, pointer_to,
)


class TestStructuralEquality:
    def test_int_equality(self):
        assert IntType() == IntType()
        assert IntType() != VoidType()

    def test_pointer_equality(self):
        assert PointerType(INT) == PointerType(INT)
        assert PointerType(INT) != PointerType(VOID)
        assert PointerType(PointerType(INT)) == PointerType(PointerType(INT))

    def test_hashable(self):
        s = {PointerType(INT), PointerType(INT), INT}
        assert len(s) == 2

    def test_array_equality(self):
        assert ArrayType(INT, 4) == ArrayType(INT, 4)
        assert ArrayType(INT, 4) != ArrayType(INT, 8)

    def test_function_type(self):
        f1 = FunctionType(VOID, [INT, PointerType(INT)])
        f2 = FunctionType(VOID, [INT, PointerType(INT)])
        assert f1 == f2
        assert f1 != FunctionType(INT, [INT])

    def test_thread_and_lock_types(self):
        assert ThreadType() == ThreadType()
        assert LockType() == LockType()
        assert ThreadType() != LockType()


class TestStructs:
    def test_nominal_identity(self):
        a = StructType("node", [("v", INT)])
        b = StructType("node")  # same name, fields filled later
        assert a == b

    def test_different_names_differ(self):
        assert StructType("a") != StructType("b")

    def test_field_lookup(self):
        s = StructType("pair", [("fst", INT), ("snd", PointerType(INT))])
        assert s.field_index("snd") == 1
        assert s.field_type(1) == PointerType(INT)

    def test_missing_field_raises(self):
        s = StructType("pair", [("fst", INT)])
        try:
            s.field_index("nope")
            assert False, "expected KeyError"
        except KeyError:
            pass

    def test_recursive_struct_reprs(self):
        s = StructType("node")
        s.fields = [("next", PointerType(s))]
        assert "node" in repr(s)


class TestHelpers:
    def test_is_pointer(self):
        assert pointer_to(INT).is_pointer()
        assert not INT.is_pointer()

    def test_reprs(self):
        assert repr(pointer_to(INT)) == "int*"
        assert repr(ArrayType(INT, 3)) == "int[3]"
