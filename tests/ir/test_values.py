"""Value and abstract-object tests."""

from repro.ir.types import ArrayType, IntType, PointerType, StructType, INT
from repro.ir.values import Constant, Function, MemObject, ObjectKind, Temp


class TestTemps:
    def test_unique_ids(self):
        a = Temp("a", INT)
        b = Temp("a", INT)
        assert a.id != b.id
        assert a is not b

    def test_repr(self):
        assert repr(Temp("x", INT)) == "%x"


class TestConstants:
    def test_null(self):
        n = Constant.null(PointerType(INT))
        assert n.is_null
        assert repr(n) == "null"

    def test_int_constant(self):
        c = Constant(7, INT)
        assert c.value == 7
        assert not c.is_null


class TestMemObjects:
    def test_singleton_global(self):
        obj = MemObject("g", INT, ObjectKind.GLOBAL)
        assert obj.is_singleton

    def test_heap_not_singleton(self):
        obj = MemObject("h", INT, ObjectKind.HEAP)
        assert not obj.is_singleton

    def test_array_not_singleton(self):
        obj = MemObject("a", ArrayType(INT, 4), ObjectKind.GLOBAL, is_array=True)
        assert not obj.is_singleton

    def test_recursive_local_not_singleton(self):
        obj = MemObject("l", INT, ObjectKind.STACK, in_recursion=True)
        assert not obj.is_singleton

    def test_plain_stack_singleton(self):
        obj = MemObject("l", INT, ObjectKind.STACK)
        assert obj.is_singleton

    def test_field_objects_memoised(self):
        s = StructType("s", [("a", INT), ("b", INT)])
        obj = MemObject("o", s, ObjectKind.GLOBAL)
        f0 = obj.field(0, INT)
        assert obj.field(0, INT) is f0
        assert obj.field(1, INT) is not f0

    def test_field_inherits_kind(self):
        s = StructType("s", [("a", INT)])
        heap = MemObject("h", s, ObjectKind.HEAP)
        assert not heap.field(0, INT).is_singleton

    def test_field_root(self):
        s = StructType("s", [("a", INT)])
        obj = MemObject("o", s, ObjectKind.GLOBAL)
        f = obj.field(0, INT)
        assert f.root() is obj
        assert f.base is obj
        assert f.field_index == 0


class TestFunctions:
    def test_mem_object_lazily_created_and_cached(self):
        from repro.ir.types import FunctionType, VOID
        fn = Function("f", FunctionType(VOID, []))
        obj = fn.mem_object
        assert obj is fn.mem_object
        assert obj.kind is ObjectKind.FUNCTION
        assert obj.function is fn

    def test_entry_requires_blocks(self):
        from repro.ir.types import FunctionType, VOID
        fn = Function("f", FunctionType(VOID, []))
        try:
            fn.entry
            assert False
        except ValueError:
            pass
