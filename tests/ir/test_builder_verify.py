"""IR builder, printer, and verifier tests."""

import pytest

from repro.ir import (
    Branch, Copy, IRBuilder, Jump, Module, Phi, Ret, Store, Temp,
    VerificationError, print_function, print_module, verify_module, INT,
)
from repro.ir.types import PointerType


def fresh():
    m = Module("t")
    return m, IRBuilder(m)


class TestBuilder:
    def test_function_with_entry_block(self):
        m, b = fresh()
        fn = b.new_function("main")
        assert fn.blocks and fn.entry.label.endswith("0")
        b.ret()
        verify_module(m)

    def test_addr_of_types_pointer(self):
        m, b = fresh()
        b.new_function("main")
        obj = b.stack_object("x", INT)
        p = b.addr_of(obj)
        assert isinstance(p.type, PointerType)
        b.ret()
        verify_module(m)

    def test_store_load_roundtrip_structure(self):
        m, b = fresh()
        b.new_function("main")
        obj = b.stack_object("x", INT)
        p = b.addr_of(obj)
        b.store(p, b.const(3))
        v = b.load(p)
        b.ret(v)
        verify_module(m)

    def test_branch_and_blocks(self):
        m, b = fresh()
        fn = b.new_function("main")
        then = b.new_block("then")
        other = b.new_block("else")
        b.branch(b.const(1), then, other)
        b.position_at(then)
        b.ret()
        b.position_at(other)
        b.ret()
        verify_module(m)
        assert len(fn.blocks) == 3

    def test_unique_block_labels(self):
        m, b = fresh()
        b.new_function("main")
        b1 = b.new_block("loop")
        b2 = b.new_block("loop")
        assert b1.label != b2.label

    def test_fork_join_lock_unlock(self):
        m, b = fresh()
        worker = b.new_function("worker")
        b.ret()
        b.position(m.function("main") if "main" in m.functions else b.new_function("main"), None) if False else None
        main = b.new_function("main")
        lock_obj = b.stack_object("m", INT)
        lp = b.addr_of(lock_obj)
        b.lock(lp)
        b.unlock(lp)
        slot = b.stack_object("t", INT)
        hp = b.addr_of(slot)
        b.fork(hp, worker, None)
        h = b.load(hp)
        b.join(h)
        b.ret()
        verify_module(m)


class TestPrinter:
    def test_print_module_contains_functions(self):
        m, b = fresh()
        b.new_function("main")
        b.ret()
        text = print_module(m)
        assert "define main" in text
        assert "ret" in text

    def test_print_function_lists_blocks(self):
        m, b = fresh()
        fn = b.new_function("f")
        b.ret()
        text = print_function(fn)
        assert fn.blocks[0].label + ":" in text


class TestVerifier:
    def test_missing_terminator(self):
        m, b = fresh()
        b.new_function("main")  # entry block left unterminated
        with pytest.raises(VerificationError, match="missing terminator"):
            verify_module(m)

    def test_double_definition(self):
        m, b = fresh()
        b.new_function("main")
        t = b.temp(INT)
        b.block.append(Copy(t, b.const(1)))
        b.block.append(Copy(t, b.const(2)))
        b.ret()
        with pytest.raises(VerificationError, match="defined twice"):
            verify_module(m)

    def test_use_of_undefined_temp(self):
        m, b = fresh()
        b.new_function("main")
        ghost = Temp("ghost", INT)
        b.block.append(Copy(b.temp(INT), ghost))
        b.ret()
        with pytest.raises(VerificationError, match="undefined temp"):
            verify_module(m)

    def test_terminator_not_last(self):
        m, b = fresh()
        b.new_function("main")
        b.ret()
        b.block.append(Copy(b.temp(INT), b.const(1)))
        b.block.append(Ret())
        with pytest.raises(VerificationError, match="not last"):
            verify_module(m)

    def test_phi_incomings_must_match_predecessors(self):
        m, b = fresh()
        fn = b.new_function("main")
        merge = b.new_block("merge")
        b.jump(merge)
        b.position_at(merge)
        t = b.temp(INT)
        phi = Phi(t)
        phi.add_incoming(b.const(1), fn.entry)
        phi.add_incoming(b.const(2), fn.entry)  # duplicate pred set ok (set-compare)
        merge.insert(0, phi)
        b.ret()
        verify_module(m)  # same set of predecessors: fine

    def test_phi_with_wrong_pred_fails(self):
        m, b = fresh()
        fn = b.new_function("main")
        merge = b.new_block("merge")
        stranger = b.new_block("stranger")
        b.jump(merge)
        b.position_at(stranger)
        b.ret()
        b.position_at(merge)
        t = b.temp(INT)
        phi = Phi(t)
        phi.add_incoming(b.const(1), stranger)
        merge.insert(0, phi)
        b.ret()
        with pytest.raises(VerificationError, match="phi"):
            verify_module(m)

    def test_phi_after_non_phi_fails(self):
        m, b = fresh()
        fn = b.new_function("main")
        merge = b.new_block("merge")
        b.jump(merge)
        b.position_at(merge)
        c = b.copy(b.const(1))
        t = b.temp(INT)
        phi = Phi(t)
        phi.add_incoming(b.const(1), fn.entry)
        merge.append(phi)
        b.ret()
        with pytest.raises(VerificationError, match="after non-phi"):
            verify_module(m)
