"""Golden tests for the IR textual printer."""

from repro.frontend import compile_source
from repro.ir import print_function, print_module


class TestPrinterGolden:
    def test_simple_module(self):
        m = compile_source("""
int g;
int *p;
int main() {
    p = &g;
    return 0;
}
""", name="golden")
        text = print_module(m)
        assert text.splitlines()[0] == "; module golden"
        assert "global @g : int" in text
        assert "global @p : int*" in text
        assert "define main() {" in text
        assert "= &g" in text
        assert "ret 0" in text

    def test_instruction_spellings(self):
        m = compile_source("""
struct s { int *f; };
mutex_t mu;
struct s box;
int g;
void *w(void *arg) { return null; }
int main() {
    thread_t t;
    int c;
    box.f = &g;
    c = 1;
    if (c) { c = 2; } else { c = 3; }
    lock(&mu);
    unlock(&mu);
    fork(&t, w, null);
    join(t);
    return c;
}
""")
        text = print_module(m)
        for needle in ("gep", "phi", "br ", "jmp ", "lock(", "unlock(",
                       "fork(", "join(", "define w("):
            assert needle in text, f"missing {needle!r} in printed IR"

    def test_sync_extension_spellings(self):
        m = compile_source("""
mutex_t mu; cond_t cv; barrier_t b;
int main() {
    barrier_init(&b, 2);
    lock(&mu);
    wait(&cv, &mu);
    signal(&cv);
    broadcast(&cv);
    unlock(&mu);
    barrier_wait(&b);
    return 0;
}
""")
        text = print_module(m)
        for needle in ("barrier_init(", "wait(", "signal(", "broadcast(",
                       "barrier_wait("):
            assert needle in text

    def test_block_labels_and_order(self):
        m = compile_source("""
int main() {
    int i;
    for (i = 0; i < 3; i = i + 1) { }
    return i;
}
""")
        text = print_function(m.functions["main"])
        lines = [l for l in text.splitlines() if l.endswith(":")]
        assert lines[0].startswith("main.")
        assert len(lines) == len(m.functions["main"].blocks)

    def test_print_is_stable(self):
        src = "int g; int main() { g = 1; return g; }"
        t1 = print_module(compile_source(src))
        t2 = print_module(compile_source(src))
        # Temp counters differ between compilations, but shape is
        # identical: same number of lines, same opcodes per line.
        shape1 = [line.split("=")[0].count("%") for line in t1.splitlines()]
        shape2 = [line.split("=")[0].count("%") for line in t2.splitlines()]
        assert shape1 == shape2
