"""The inline runner and its degradation ladder."""

from repro.fsam.config import FSAMConfig
from repro.service.requests import AnalysisRequest
from repro.service.runner import run_request_inline
from repro.workloads import get_workload


def _request(**config_kwargs):
    return AnalysisRequest(name="raytrace",
                           source=get_workload("raytrace").source(1),
                           config=FSAMConfig(**config_kwargs))


class TestInlineLadder:
    def test_full_pipeline(self):
        outcome = run_request_inline(_request())
        assert outcome.status == "ok"
        assert not outcome.artifact.degraded
        assert outcome.artifact.mem
        assert outcome.attempts == 1
        assert len(outcome.digest) == 64

    def test_tiny_budget_degrades_instead_of_failing(self):
        # The acceptance-criterion path: an artificially tiny budget
        # exhausts mid-pipeline; the ladder lands on an Andersen-only
        # degraded result rather than raising out of the batch.
        outcome = run_request_inline(_request(time_budget=1e-9))
        assert outcome.status == "degraded"
        assert outcome.artifact.degraded
        assert outcome.artifact.degraded_reason == "budget-exhausted"
        # Andersen-only: flow-insensitive top sets, no memory states,
        # no solver work.
        assert outcome.artifact.pts_top
        assert not outcome.artifact.mem
        assert outcome.artifact.solver_iterations() == 0

    def test_degraded_result_still_validates(self):
        from repro.service.artifacts import validate_artifact
        outcome = run_request_inline(_request(time_budget=1e-9))
        validate_artifact(outcome.artifact.to_dict())
