"""Input hardening and graceful shutdown for the serve loop."""

import io
import json
import os
import signal
import subprocess
import sys
import time

from repro.service.serve import ShutdownFlag, serve_loop

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _serve(lines, **kwargs):
    out = io.StringIO()
    served = serve_loop(io.StringIO("\n".join(lines) + "\n"), out, **kwargs)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return served, responses


class TestHardening:
    def test_oversized_line_refused_and_loop_survives(self):
        huge = json.dumps({"source": "x" * 4096, "name": "huge"})
        served, responses = _serve(
            [huge, '{"workload": "word_count", "id": 2}'],
            max_request_bytes=1024)
        assert served == 1
        assert responses[0]["status"] == "error"
        assert responses[0]["error"]["type"] == "RequestTooLarge"
        assert responses[1]["status"] == "ok"
        assert responses[1]["id"] == 2

    def test_oversized_line_without_newline_at_eof(self):
        out = io.StringIO()
        served = serve_loop(io.StringIO("{" + "a" * 4096), out,
                            max_request_bytes=256)
        assert served == 0
        record = json.loads(out.getvalue().splitlines()[0])
        assert record["error"]["type"] == "RequestTooLarge"

    def test_deep_nesting_refused_before_parse(self):
        hostile = "[" * 200 + "]" * 200
        served, responses = _serve(
            [hostile, '{"workload": "word_count"}'], max_json_depth=32)
        assert served == 1
        assert responses[0]["error"]["type"] == "RequestTooDeep"
        assert responses[1]["status"] == "ok"

    def test_depth_limit_allows_reasonable_nesting(self):
        entry = json.dumps(
            {"workload": "word_count", "config": {"value_flow": True}})
        served, responses = _serve([entry], max_json_depth=32)
        assert served == 1
        assert responses[0]["status"] == "ok"

    def test_invalid_json_error_type_is_preserved(self):
        # The pre-scan must not change what malformed-but-small lines
        # report: clients match on JSONDecodeError.
        _, responses = _serve(["{nope", '{"workload": "word_count"}'])
        assert responses[0]["error"]["type"] == "JSONDecodeError"

    def test_no_limit_accepts_large_lines(self):
        big = json.dumps({"workload": "word_count",
                          "name": "n" * 4096, "id": 1})
        served, responses = _serve([big], max_request_bytes=None)
        assert served == 1
        assert responses[0]["status"] == "ok"


class TestShutdownFlag:
    def test_requested_flag_breaks_loop_between_requests(self):
        shutdown = ShutdownFlag()
        shutdown.requested = True
        served, responses = _serve(['{"workload": "word_count"}'],
                                   shutdown=shutdown)
        assert served == 0 and responses == []

    def test_trigger_while_reading_interrupts(self):
        class Hanging(io.StringIO):
            def __init__(self, flag):
                super().__init__()
                self.flag = flag

            def readline(self, *args):
                # Simulate a signal arriving while blocked in the read.
                self.flag.trigger()
                raise AssertionError("trigger should have interrupted")

        shutdown = ShutdownFlag()
        out = io.StringIO()
        metrics = io.StringIO()
        served = serve_loop(Hanging(shutdown), out, shutdown=shutdown,
                            metrics_stream=metrics)
        assert served == 0
        assert shutdown.requested
        # The final metrics snapshot still went out.
        final = json.loads(metrics.getvalue().splitlines()[-1])
        assert final["schema"] == "repro.metrics/1"

    def test_trigger_outside_read_defers(self):
        shutdown = ShutdownFlag()
        shutdown.trigger()  # not reading: must not raise
        assert shutdown.requested


class TestSignalSubprocess:
    def _spawn(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--metrics-interval", "0"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, env=env, text=True)

    def _drain_and_signal(self, proc, signum):
        proc.stdin.write('{"workload": "word_count", "id": 1}\n')
        proc.stdin.flush()
        line = proc.stdout.readline()
        assert json.loads(line)["status"] == "ok"
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        # Final repro.metrics/1 snapshot flushed to stderr on the way out.
        snapshots = [json.loads(text) for text in err.splitlines()
                     if text.startswith("{")]
        assert snapshots and snapshots[-1]["schema"] == "repro.metrics/1"
        assert snapshots[-1]["counters"]["serve.requests"] == 1

    def test_sigterm_drains_and_exits_zero(self):
        self._drain_and_signal(self._spawn(), signal.SIGTERM)

    def test_sigint_drains_and_exits_zero(self):
        self._drain_and_signal(self._spawn(), signal.SIGINT)

    def test_in_process_serve_restores_dispositions(self, monkeypatch,
                                                    capsys):
        """``main(["serve"])`` must leave SIGINT/SIGTERM exactly as it
        found them.  A leaked cooperative handler is inherited by every
        process forked afterwards in the same interpreter, where it
        turns ``Process.terminate()`` into a no-op — the worker pool
        then joins a child that will never die."""
        import io

        from repro.cli import main

        before = (signal.getsignal(signal.SIGINT),
                  signal.getsignal(signal.SIGTERM))
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve"]) == 0
        capsys.readouterr()
        after = (signal.getsignal(signal.SIGINT),
                 signal.getsignal(signal.SIGTERM))
        assert after == before
