"""Differential suite for function-granular incremental analysis.

Every scenario drives the same contract: a warm run that reuses
per-function fixpoints from the :class:`FuncArtifactStore` must be
**bit-identical** (payload digest over objects, ``pts_top``, ``mem``,
and store classes) to a cold run of the same edited source, across all
ten Table-1 workloads, under

- single-function edits (an address-taken store inserted into one
  function body),
- signature-changing edits (a store to a new global, which changes the
  edited function's mod-ref summary and hence its callers' digests),
- function addition (an unreferenced function appended), and
- function deletion (warm run on the base after a cold run on
  base-plus-added-function).
"""

import re

import pytest

from repro.service.cache import FuncArtifactStore
from repro.service.requests import AnalysisRequest
from repro.service.runner import run_request_inline
from repro.workloads import WORKLOADS, get_workload

ALL_WORKLOADS = list(WORKLOADS)

#: Top-level function headers in the MiniC sources: return type at
#: column 0, name, parameter list, opening brace on the same line.
_HEADER = re.compile(r"^[A-Za-z_][\w \*]*?([A-Za-z_]\w*)\s*\(.*\)\s*\{\s*$")

#: An IR-visible single-function edit. The local is address-taken so
#: mem2reg cannot promote it and dead-code elimination cannot drop the
#: store — the edited function's canonical IR is guaranteed to change.
STORE_EDIT = "    int z_q; int *p_q; p_q = &z_q; *p_q = 1;"

#: An unreferenced function used for the add/delete scenarios.
ADDED_FN = ("\nint added_fn_q(int a_q) {\n"
            "    int r_q;\n"
            "    r_q = a_q + 1;\n"
            "    return r_q;\n"
            "}\n")


def _functions(source):
    return [m.group(1) for line in source.split("\n")
            if (m := _HEADER.match(line))]


def _edit_target(source):
    """The first non-main function — every workload has one."""
    return next(f for f in _functions(source) if f != "main")


def _insert_after_header(source, fn, text):
    lines = source.split("\n")
    for i, line in enumerate(lines):
        m = _HEADER.match(line)
        if m and m.group(1) == fn:
            return "\n".join(lines[:i + 1] + [text] + lines[i + 1:])
    raise AssertionError(f"function {fn} not found")


def _store_edit(source):
    return _insert_after_header(source, _edit_target(source), STORE_EDIT)


def _signature_edit(source):
    """Store to a fresh global: the edited function's mod set gains an
    object, so callee signatures embedded in callers' digests change
    too, not just the edited function's own canonical IR."""
    source = "int g_sig_q;\n" + source
    return _insert_after_header(source, _edit_target(source),
                                "    g_sig_q = 2;")


def _run(source, name, store=None):
    request = AnalysisRequest(name=name, source=source)
    return run_request_inline(request, funcstore=store)


def _warm_vs_cold(name, base_source, edited_source, tmp_path):
    """Cold run on *base_source* to populate the store, warm run on
    *edited_source*, cold reference on *edited_source*. Returns
    (warm outcome, cold outcome, warm incremental stats)."""
    store = FuncArtifactStore(tmp_path)
    _run(base_source, name, store)
    warm = _run(edited_source, name, store)
    cold = _run(edited_source, name)
    incr = warm.artifact.summary["incremental"]
    assert isinstance(incr, dict)
    return warm, cold, incr


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestStoreEdit:
    def test_bit_identical_and_partial_reuse(self, name, tmp_path):
        base = get_workload(name).source(1)
        warm, cold, incr = _warm_vs_cold(name, base, _store_edit(base),
                                         tmp_path)
        assert warm.artifact.payload_digest() == \
            cold.artifact.payload_digest()
        assert incr["mode"] == "warm"
        assert 0 < incr["func_hits"] < incr["functions"]
        # Only the region downstream of the edit is re-solved.
        assert 0 < incr["seeded_nodes"] < incr["dug_nodes"]
        assert incr["frozen_nodes"] > 0


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestSignatureEdit:
    def test_bit_identical(self, name, tmp_path):
        base = get_workload(name).source(1)
        warm, cold, incr = _warm_vs_cold(name, base, _signature_edit(base),
                                         tmp_path)
        assert warm.artifact.payload_digest() == \
            cold.artifact.payload_digest()
        assert incr["mode"] == "warm"
        assert 0 < incr["func_hits"] < incr["functions"]


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestFunctionAddDelete:
    def test_add_validates_every_existing_function(self, name, tmp_path):
        base = get_workload(name).source(1)
        warm, cold, incr = _warm_vs_cold(name, base, base + ADDED_FN,
                                         tmp_path)
        assert warm.artifact.payload_digest() == \
            cold.artifact.payload_digest()
        assert incr["mode"] == "warm"
        # Every pre-existing function hits; only the new one is cold.
        assert incr["func_hits"] == incr["functions"] - 1

    def test_delete_validates_every_surviving_function(self, name, tmp_path):
        base = get_workload(name).source(1)
        warm, cold, incr = _warm_vs_cold(name, base + ADDED_FN, base,
                                         tmp_path)
        assert warm.artifact.payload_digest() == \
            cold.artifact.payload_digest()
        assert incr["mode"] == "warm"
        assert incr["func_hits"] == incr["functions"]


class TestFullValidation:
    @pytest.mark.parametrize("name", ("word_count", "raytrace"))
    def test_unchanged_source_solves_in_zero_iterations(self, name,
                                                        tmp_path):
        # The inline runner has no whole-program cache, so an
        # unchanged source is the extreme warm case: every function
        # validates, nothing is seeded, the solver runs 0 iterations.
        base = get_workload(name).source(1)
        warm, cold, incr = _warm_vs_cold(name, base, base, tmp_path)
        assert warm.artifact.payload_digest() == \
            cold.artifact.payload_digest()
        assert incr["func_hits"] == incr["functions"]
        assert incr["seeded_nodes"] == 0
        assert warm.artifact.summary["solver_iterations"] == 0
