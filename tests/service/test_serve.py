"""The stdin/JSONL serve loop."""

import io
import json

from repro.obs import Observer
from repro.service.cache import ArtifactCache
from repro.service.serve import serve_loop


def _serve(lines, **kwargs):
    out = io.StringIO()
    served = serve_loop(io.StringIO("\n".join(lines) + "\n"), out, **kwargs)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return served, responses


class TestServeLoop:
    def test_workload_request(self):
        served, responses = _serve(['{"workload": "word_count"}'])
        assert served == 1
        assert responses[0]["name"] == "word_count"
        assert responses[0]["status"] == "ok"
        assert responses[0]["cache"] == "miss"
        assert responses[0]["summary"]["points_to_entries"] > 0

    def test_id_echoed_back(self):
        _, responses = _serve(['{"workload": "word_count", "id": 42}'])
        assert responses[0]["id"] == 42

    def test_second_request_hits_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _, responses = _serve(['{"workload": "word_count"}'] * 2,
                              cache=cache)
        assert [r["cache"] for r in responses] == ["miss", "hit"]
        assert responses[0]["digest"] == responses[1]["digest"]

    def test_malformed_line_does_not_kill_the_loop(self):
        served, responses = _serve([
            'this is not json',
            '{"no_program": true, "id": "after"}',
            '{"workload": "word_count"}',
        ])
        assert served == 1
        assert "error" in responses[0]
        assert "error" in responses[1]
        assert responses[1]["id"] == "after"
        assert responses[2]["status"] == "ok"

    def test_error_record_is_structured(self):
        """Garbage then a valid request: the garbage line yields a
        typed error record, the valid line is still served."""
        served, responses = _serve([
            '<<< not json >>>',
            '{"workload": "word_count", "id": 3}',
        ])
        assert served == 1
        err = responses[0]
        assert err["status"] == "error"
        assert err["error"]["type"] == "JSONDecodeError"
        assert err["error"]["message"]
        assert responses[1]["id"] == 3
        assert responses[1]["status"] == "ok"

    def test_unserializable_response_degrades_to_error_record(
            self, monkeypatch):
        """A response json cannot encode must not tear down the loop."""
        import repro.service.serve as serve_mod
        from repro.service.runner import RequestOutcome

        class _Artifact:
            degraded = False
            degraded_reason = None
            summary = {"weird": object()}

        def fake_run(request):
            return RequestOutcome(name=request.name, digest="d0",
                                  artifact=_Artifact(), cache="miss",
                                  seconds=0.0, attempts=1)

        monkeypatch.setattr(serve_mod, "run_request_inline", fake_run)
        served, responses = _serve([
            '{"workload": "word_count", "id": 9}',
        ])
        assert served == 0
        assert responses[0]["status"] == "error"
        assert responses[0]["error"]["type"] == "TypeError"
        assert responses[0]["id"] == 9

    def test_blank_lines_skipped(self):
        served, responses = _serve(["", '{"workload": "word_count"}', ""])
        assert served == 1
        assert len(responses) == 1

    def test_file_entry_uses_base_dir(self, tmp_path):
        (tmp_path / "tiny.mc").write_text("int main() { return 0; }")
        _, responses = _serve(['{"file": "tiny.mc"}'],
                              base_dir=str(tmp_path))
        assert responses[0]["name"] == "tiny.mc"
        assert responses[0]["status"] == "ok"

    def test_obs_counters(self, tmp_path):
        obs = Observer(name="serve")
        _serve(['{"workload": "word_count"}', 'garbage'],
               cache=ArtifactCache(tmp_path), obs=obs)
        assert obs.counters["serve.requests"] == 1
        assert obs.counters["serve.errors"] == 1
        assert obs.counters["cache.stores"] == 1

    def test_degraded_request_served(self):
        _, responses = _serve([
            '{"workload": "raytrace", '
            '"config": {"time_budget": 1e-9}}'])
        assert responses[0]["status"] == "degraded"
        assert responses[0]["degraded_reason"] == "budget-exhausted"
