"""The service-layer query path: artifact store, runner, batch rows,
serve loop, and spec parsing for ``"op": "query"`` entries.

The fsam-level differential contract (demand answer == whole-program
fixpoint) lives in ``tests/fsam/test_query.py``; here we only care
that the wire plumbing around it is faithful — answers survive the
disk round-trip byte-for-byte, warm hits really skip the solver, and
malformed queries degrade to structured errors without killing the
batch or the loop.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.fsam import FSAMConfig
from repro.obs import Observer
from repro.service.artifacts import artifact_from_query, validate_queryartifact
from repro.service.batch import run_batch, validate_batch_report
from repro.service.cache import ArtifactCache, QueryArtifactStore
from repro.service.requests import (AnalysisRequest, QueryRequest,
                                    query_from_entry, requests_from_spec)
from repro.service.runner import QueryRunner
from repro.service.serve import serve_loop
from repro.workloads import get_workload

VAR = "insert_entry_0.key"          # a word_count function parameter
GLOBAL = "bucket_0"                 # a word_count global object


def _request(name="word_count"):
    return AnalysisRequest(name=name,
                           source=get_workload(name).source(1),
                           config=FSAMConfig())


def _query(var=VAR, obj=False, line=None):
    return QueryRequest(request=_request(), var=var, line=line, obj=obj)


class TestQueryRunner:
    def test_cold_query_solves(self):
        row = QueryRunner().run(_query())
        assert row["status"] == "ok"
        assert row["cache"] == "miss"
        assert row["var"] == VAR
        assert row["iterations"] >= 0
        assert isinstance(row["pts"], list)
        assert 0.0 <= row["slice_fraction"] <= 1.0

    def test_disk_round_trip_is_byte_identical(self, tmp_path):
        store = QueryArtifactStore(tmp_path)
        runner = QueryRunner(querystore=store)
        cold = runner.run(_query())
        warm = QueryRunner(querystore=store).run(_query())
        assert warm["cache"] == "hit"
        assert warm["iterations"] == 0
        assert warm["pts"] == cold["pts"]
        assert warm["mask"] == cold["mask"]
        assert warm["slice_nodes"] == cold["slice_nodes"]
        assert warm["query_digest"] == cold["query_digest"]

    def test_same_runner_second_query_is_engine_warm(self):
        runner = QueryRunner()
        assert runner.run(_query())["cache"] == "miss"
        assert runner.run(_query())["cache"] == "warm"

    def test_object_query(self):
        row = QueryRunner().run(_query(var=GLOBAL, obj=True))
        assert row["status"] == "ok"
        assert row["obj"] is True

    def test_unknown_var_raises_to_caller(self):
        with pytest.raises(ValueError, match="no top-level variable"):
            QueryRunner().run(_query(var="nope_not_a_var"))

    def test_store_obs_counters(self, tmp_path):
        store = QueryArtifactStore(tmp_path)
        runner = QueryRunner(querystore=store)
        runner.run(_query())
        runner2 = QueryRunner(querystore=store)
        runner2.run(_query())
        obs = Observer(name="t", track_memory=False)
        runner2.flush_obs(obs)
        counters = obs.to_metrics_dict()["counters"]
        assert counters["query.cache_hits"] == 1

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = QueryArtifactStore(tmp_path)
        runner = QueryRunner(querystore=store)
        digest = runner.run(_query())["query_digest"]
        path = store.root / digest[:2] / f"{digest[2:]}.json"
        path.write_text("{ corrupt")
        fresh = QueryArtifactStore(tmp_path)
        assert fresh.get(digest) is None
        assert QueryRunner(querystore=fresh).run(_query())["cache"] == "miss"


class TestQueryArtifact:
    def _artifact(self):
        runner = QueryRunner()
        query = _query()
        result_row = runner.run(query)
        pipeline = runner._pipeline(query.request, query.request.digest())
        answer = pipeline.query(VAR)
        signature = pipeline._query_engine.slice_signature(
            answer.node_uids, answer.temp_ids)
        return artifact_from_query(query.request.digest(), signature, answer)

    def test_validates(self):
        validate_queryartifact(self._artifact())

    def test_rejects_bad_mask(self):
        doc = self._artifact()
        doc["answer"]["mask"] = "not hex"
        with pytest.raises(ValueError):
            validate_queryartifact(doc)

    def test_rejects_wrong_schema(self):
        doc = self._artifact()
        doc["schema"] = "repro.artifact/1"
        with pytest.raises(ValueError):
            validate_queryartifact(doc)


class TestBatchQueries:
    def test_queries_run_after_dispatch(self, tmp_path):
        report = run_batch([_request()], workers=1,
                           cache=ArtifactCache(tmp_path),
                           queries=[_query(), _query(var="missing_var")])
        doc = report.to_dict()
        validate_batch_report(doc)
        rows = doc["queries"]
        assert [row["status"] for row in rows] == ["ok", "error"]
        assert rows[0]["cache"] in ("hit", "warm", "miss")
        assert rows[1]["error"]["type"] == "ValueError"
        counters = doc["metrics"]["counters"]
        assert counters["batch.queries"] == 2
        assert counters["batch.query_errors"] == 1

    def test_report_without_queries_backward_compatible(self):
        doc = run_batch([_request()], workers=1).to_dict()
        validate_batch_report(doc)
        assert doc["queries"] == []
        legacy = dict(doc)
        del legacy["queries"]
        validate_batch_report(legacy)


class TestServeQueries:
    def _serve(self, lines, **kwargs):
        out = io.StringIO()
        served = serve_loop(io.StringIO("\n".join(lines) + "\n"), out,
                            **kwargs)
        return served, [json.loads(line) for line in out.getvalue().splitlines()]

    def test_query_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        entry = json.dumps({"op": "query", "workload": "word_count",
                            "var": VAR, "id": 7})
        served, responses = self._serve([entry, entry], cache=cache)
        assert served == 2
        first, second = responses
        assert first["op"] == "query" and first["status"] == "ok"
        assert first["id"] == 7
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert second["pts"] == first["pts"]

    def test_bad_query_is_structured_error(self):
        served, responses = self._serve([
            json.dumps({"op": "query", "workload": "word_count",
                        "var": "missing_var", "id": "bad"}),
            json.dumps({"workload": "word_count"}),
        ])
        assert served == 1
        assert responses[0]["status"] == "error"
        assert responses[0]["id"] == "bad"
        assert responses[1]["status"] == "ok"

    def test_query_counters(self, tmp_path):
        obs = Observer(name="serve", track_memory=False)
        cache = ArtifactCache(tmp_path)
        entry = json.dumps({"op": "query", "workload": "word_count",
                            "var": VAR})
        self._serve([entry, entry], cache=cache, obs=obs)
        counters = obs.to_metrics_dict()["counters"]
        assert counters["query.requests"] == 2
        assert counters["query.cache_hits"] == 1
        assert counters["query.cache_stores"] == 1


class TestSpecParsing:
    def test_query_entries_split_out(self):
        spec = {"requests": [
            {"workload": "word_count"},
            {"op": "query", "workload": "word_count", "var": VAR,
             "line": 3, "obj": False},
        ]}
        requests, options = requests_from_spec(spec)
        assert len(requests) == 1
        queries = options["queries"]
        assert len(queries) == 1
        assert queries[0].var == VAR
        assert queries[0].line == 3

    def test_query_entry_validation(self):
        with pytest.raises(ValueError):
            query_from_entry({"op": "query", "workload": "word_count"})
        with pytest.raises(ValueError):
            query_from_entry({"op": "query", "workload": "word_count",
                              "var": ""})
        with pytest.raises(ValueError):
            query_from_entry({"op": "query", "workload": "word_count",
                              "var": VAR, "line": "five"})
        with pytest.raises(ValueError):
            query_from_entry({"op": "query", "workload": "word_count",
                              "var": VAR, "obj": "yes"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown request op"):
            requests_from_spec({"requests": [
                {"op": "explode", "workload": "word_count"}]})
