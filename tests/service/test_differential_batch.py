"""Differential pinning of the batch service's execution modes.

Extends the PR-4 engine differential suite one level up: for all ten
Table-1 workloads, the **serial** inline loop, the **4-worker pooled**
batch, and the **cache-warm** batch must produce bit-identical
``pts_top``/``mem`` maps (hex bitmasks over canonical indices — the
exact bytes the artifact cache stores). The warm batch must
additionally perform *zero* sparse-solver iterations, asserted
through the ``repro.obs`` counters the driver flushes.

One module-scoped run keeps this affordable: the ten workloads are
analysed once per mode (~1s serial), not once per assertion.
"""

import pytest

from repro.service.batch import run_batch
from repro.service.cache import ArtifactCache
from repro.service.requests import AnalysisRequest
from repro.workloads import get_workload, workload_names

WORKLOADS = workload_names()


def _requests():
    return [AnalysisRequest(name=name,
                            source=get_workload(name).source(1))
            for name in WORKLOADS]


@pytest.fixture(scope="module")
def modes(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("artifact-cache")
    serial = run_batch(_requests(), workers=1, name="serial")
    pooled = run_batch(_requests(), workers=4,
                       cache=ArtifactCache(cache_dir), name="pooled")
    warm = run_batch(_requests(), workers=4,
                     cache=ArtifactCache(cache_dir), name="warm")
    return {"serial": serial, "pooled": pooled, "warm": warm}


class TestModesAgreeBitForBit:
    @pytest.mark.parametrize("index", range(len(WORKLOADS)),
                             ids=WORKLOADS)
    def test_pts_top_and_mem_identical(self, modes, index):
        serial = modes["serial"].outcomes[index].artifact
        pooled = modes["pooled"].outcomes[index].artifact
        warm = modes["warm"].outcomes[index].artifact
        assert serial.pts_top == pooled.pts_top == warm.pts_top
        assert serial.mem == pooled.mem == warm.mem
        assert serial.store_classes == pooled.store_classes \
            == warm.store_classes
        assert serial.payload_digest() == pooled.payload_digest() \
            == warm.payload_digest()

    def test_all_modes_completed_undegraded(self, modes):
        for report in modes.values():
            assert [o.status for o in report.outcomes] == \
                ["ok"] * len(WORKLOADS)


class TestWarmBatchDoesNoSolverWork:
    def test_every_request_hits(self, modes):
        warm = modes["warm"]
        assert [o.cache for o in warm.outcomes] == ["hit"] * len(WORKLOADS)
        assert warm.counters["batch.cache_hits"] == len(WORKLOADS)
        assert warm.counters["batch.cache_misses"] == 0

    def test_zero_solver_iterations(self, modes):
        warm_doc = modes["warm"].to_dict()
        assert warm_doc["aggregate"]["solver_iterations"] == 0
        assert warm_doc["counters"]["batch.solver_iterations"] == 0
        # The cold pooled batch did real work under the same counter.
        assert modes["pooled"].counters["batch.solver_iterations"] > 0

    def test_no_pool_dispatch_on_warm(self, modes):
        # Every digest resolved from the cache, so the pool never ran.
        assert "pool.dispatched" not in modes["warm"].counters
