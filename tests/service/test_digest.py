"""Digest stability contract for the service cache keys.

Every on-disk artifact key in the service layer — request, function,
and query — flows through :func:`repro.service.digest.canonical_digest`
(sha256 over sorted-keys compact JSON). The pinned hex values below
are the contract: if any of them changes, every deployed cache is
silently invalidated, so a failure here must be a deliberate,
release-noted decision — never a refactor side effect.

Pins that depend on :data:`repro.schemas.CODE_VERSION` or on
``FSAMConfig`` cache-key fields pass an explicit ``code_version`` so
they only move when the serialization itself changes (code-version
bumps are *supposed* to move real keys; that path is covered by the
mismatch tests in the cache suite).
"""

from __future__ import annotations

import pytest

from repro.fsam import FSAMConfig
from repro.schemas import CODE_VERSION
from repro.service.digest import canonical_digest, query_digest
from repro.service.requests import function_digest, request_digest


def test_canonical_digest_pins():
    assert canonical_digest({}) == \
        "44136fa355b3678a1146ad16f7e8649e94fb4fc21fe77e8310c060f61caaff8a"
    assert canonical_digest({"b": 2, "a": 1}) == \
        "43258cff783fe7036d8a43033f830adfc60ec037382473548ac742b888292777"
    assert canonical_digest({"s": "café", "n": [1, 2.5, None, True]}) == \
        "229403e95e978cd011c648f7af3117e83defbfd1623acbdbbca11937e4c6d7b2"


def test_canonical_digest_is_order_insensitive():
    assert canonical_digest({"a": 1, "b": 2}) == \
        canonical_digest({"b": 2, "a": 1})
    # ...but value- and type-sensitive (bool is not int, int is not str).
    assert canonical_digest({"a": 1}) != canonical_digest({"a": True})
    assert canonical_digest({"a": 1}) != canonical_digest({"a": "1"})


def test_query_digest_pins():
    program = "0" * 64
    assert query_digest(program, "p", code_version="test-1") == \
        "835b8b7294bc824ca03a055bd19914eace723f7ca9d829a58c369c61d1721466"
    assert query_digest(program, "p", line=7, obj=True,
                        code_version="test-1") == \
        "9b28f28d93afca06a05be521a10508d47b4f2e8b2dd647e802e3ce37d03e6bea"


def test_query_digest_discriminates_every_field():
    base = query_digest("0" * 64, "p", code_version="test-1")
    assert query_digest("1" * 64, "p", code_version="test-1") != base
    assert query_digest("0" * 64, "q", code_version="test-1") != base
    assert query_digest("0" * 64, "p", line=1, code_version="test-1") != base
    assert query_digest("0" * 64, "p", obj=True, code_version="test-1") != base
    assert query_digest("0" * 64, "p", code_version="test-2") != base
    # Default code_version is the live one.
    assert query_digest("0" * 64, "p") == \
        query_digest("0" * 64, "p", code_version=CODE_VERSION)


def test_request_digest_pin():
    assert request_digest("int main() { return 0; }\n", FSAMConfig(),
                          code_version="test-1") == \
        "f4097a587d338bde131c2e204cd884c76e559052df5aef2dc262a7d1c14ecc3a"


def test_function_digest_pin():
    assert function_digest("fn main:\n  ret 0\n",
                           [["helper", "mod:-,ref:-"]], FSAMConfig(),
                           code_version="test-1") == \
        "8ef896cfeecd5a0a7849e7c671b2900f7d8d5bf89c1fc439364e786e90ac557f"


def test_request_digest_ignores_execution_only_fields():
    """Name, timeouts, and observability toggles never shape the
    fixpoint, so they must not shape the key either."""
    base = request_digest("int main() { return 0; }\n", FSAMConfig())
    traced = request_digest("int main() { return 0; }\n",
                            FSAMConfig(trace=True))
    assert traced == base
    demand = request_digest("int main() { return 0; }\n",
                            FSAMConfig(solver_mode="demand"))
    assert demand == base
    # ...while fixpoint-determining fields do participate.
    no_locks = request_digest("int main() { return 0; }\n",
                              FSAMConfig(lock_analysis=False))
    assert no_locks != base


def test_canonical_digest_rejects_unserializable():
    with pytest.raises(TypeError):
        canonical_digest({"x": object()})
