"""Artifact serialization: canonical keys, round trips, validation."""

import pytest

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.schemas import ARTIFACT_SCHEMA, CODE_VERSION
from repro.service.artifacts import (
    AnalysisArtifact, artifact_from_andersen, artifact_from_result,
    validate_artifact,
)
from repro.workloads import get_workload

SOURCE = get_workload("word_count").source(1)


@pytest.fixture(scope="module")
def artifact():
    result = FSAM(compile_source(SOURCE), FSAMConfig()).run()
    return artifact_from_result("word_count", result)


class TestArtifactFromResult:
    def test_has_facts(self, artifact):
        assert artifact.pts_top
        assert artifact.mem
        assert artifact.store_classes
        assert artifact.objects
        assert not artifact.degraded

    def test_summary_counts(self, artifact):
        assert artifact.summary["points_to_entries"] > 0
        assert artifact.solver_iterations() > 0

    def test_masks_are_hex(self, artifact):
        for mask in artifact.pts_top.values():
            assert int(mask, 16) >= 0
        for mask in artifact.mem.values():
            assert int(mask, 16) >= 0

    def test_round_trip(self, artifact):
        doc = artifact.to_dict()
        assert doc["schema"] == ARTIFACT_SCHEMA
        back = AnalysisArtifact.from_dict(doc)
        assert back.to_dict() == doc
        assert back.payload_digest() == artifact.payload_digest()

    def test_same_run_same_digest(self):
        a = artifact_from_result(
            "a", FSAM(compile_source(SOURCE), FSAMConfig()).run())
        b = artifact_from_result(
            "b", FSAM(compile_source(SOURCE), FSAMConfig()).run())
        # Different raw process-global ids, identical canonical payload.
        assert a.payload_digest() == b.payload_digest()

    def test_digest_ignores_profile_and_name(self, artifact):
        doc = artifact.to_dict()
        stripped = AnalysisArtifact.from_dict(doc)
        stripped.profile = None
        stripped.name = "other"
        assert stripped.payload_digest() == artifact.payload_digest()


class TestDegradedArtifact:
    def test_andersen_only(self):
        module = compile_source(SOURCE)
        andersen = run_andersen(module)
        artifact = artifact_from_andersen("wc", module, andersen,
                                          reason="wall-clock-timeout")
        assert artifact.degraded
        assert artifact.degraded_reason == "wall-clock-timeout"
        assert artifact.pts_top          # flow-insensitive sets exist
        assert not artifact.mem          # no per-definition states
        assert not artifact.store_classes
        assert artifact.solver_iterations() == 0
        validate_artifact(artifact.to_dict())


class TestValidateArtifact:
    def _doc(self, artifact, **overrides):
        doc = artifact.to_dict()
        doc.update(overrides)
        return doc

    def test_accepts_good(self, artifact):
        assert validate_artifact(artifact.to_dict()) is not None

    def test_rejects_wrong_schema(self, artifact):
        with pytest.raises(ValueError, match="schema"):
            validate_artifact(self._doc(artifact, schema="repro.obs/1"))

    def test_rejects_bad_mask(self, artifact):
        doc = artifact.to_dict()
        doc["pts_top"] = {"0": "not-hex"}
        with pytest.raises(ValueError, match="hex"):
            validate_artifact(doc)

    def test_rejects_unknown_store_class(self, artifact):
        doc = artifact.to_dict()
        doc["store_classes"] = {"0:0": "sideways"}
        with pytest.raises(ValueError, match="store_classes"):
            validate_artifact(doc)

    def test_rejects_missing_code_version(self, artifact):
        with pytest.raises(ValueError, match="code_version"):
            validate_artifact(self._doc(artifact, code_version=""))

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_artifact([1, 2, 3])

    def test_code_version_round_trips(self, artifact):
        assert artifact.code_version == CODE_VERSION
        assert AnalysisArtifact.from_dict(
            artifact.to_dict()).code_version == CODE_VERSION
