"""Worker-pool scheduling: sharding, timeouts, retry, degradation."""

import pytest

from repro.fsam.config import FSAMConfig
from repro.service.pool import WorkerPool
from repro.service.requests import AnalysisRequest
from repro.service.runner import run_request_inline
from repro.workloads import get_workload

SMALL = ("word_count", "kmeans", "automount")


def _requests(names=SMALL, **config_kwargs):
    config = FSAMConfig(**config_kwargs)
    return [AnalysisRequest(name=name,
                            source=get_workload(name).source(1),
                            config=config)
            for name in names]


class TestPoolHappyPath:
    def test_pooled_matches_inline(self):
        requests = _requests()
        pool = WorkerPool(workers=2)
        outcomes = pool.run(requests)
        assert [o.name for o in outcomes] == list(SMALL)
        for outcome, request in zip(outcomes, requests):
            inline = run_request_inline(request)
            assert outcome.status == "ok"
            assert outcome.artifact.payload_digest() == \
                inline.artifact.payload_digest()
        assert pool.dispatched == len(SMALL)
        assert pool.degraded == 0
        assert pool.retried == 0

    def test_more_workers_than_requests(self):
        outcomes = WorkerPool(workers=8).run(_requests(("word_count",)))
        assert len(outcomes) == 1
        assert outcomes[0].status == "ok"

    def test_results_in_request_order(self):
        # raytrace takes much longer than word_count; order must not
        # follow completion order.
        requests = _requests(("raytrace", "word_count"))
        outcomes = WorkerPool(workers=2).run(requests)
        assert [o.name for o in outcomes] == ["raytrace", "word_count"]


class TestPoolDegradation:
    def test_budget_exhaustion_degrades_without_retry(self):
        # The cooperative in-process budget is deterministic, so the
        # pool skips the retry rung and degrades immediately.
        pool = WorkerPool(workers=2)
        outcomes = pool.run(_requests(("raytrace",), time_budget=1e-9))
        assert outcomes[0].status == "degraded"
        assert outcomes[0].artifact.degraded_reason == "budget-exhausted"
        assert pool.budget_exhaustions == 1
        assert pool.retried == 0
        assert pool.degraded == 1

    def test_wall_clock_timeout_retries_then_degrades(self):
        # A 1ms wall-clock deadline kills the worker before it can
        # finish; after one retry the pool falls back to the
        # Andersen-only artifact instead of failing the batch.
        request = AnalysisRequest(name="raytrace",
                                  source=get_workload("raytrace").source(1),
                                  timeout=0.001)
        pool = WorkerPool(workers=1)
        outcomes = pool.run([request])
        assert outcomes[0].status == "degraded"
        assert outcomes[0].artifact.degraded_reason == "wall-clock-timeout"
        assert outcomes[0].artifact.pts_top      # Andersen survives
        assert not outcomes[0].artifact.mem
        assert pool.timeouts >= 1
        assert pool.retried == 1
        assert outcomes[0].attempts == 2

    def test_mixed_batch_never_fails(self):
        # One doomed request among healthy ones: everyone gets a
        # terminal outcome, in order.
        doomed = AnalysisRequest(name="doomed",
                                 source=get_workload("raytrace").source(1),
                                 config=FSAMConfig(time_budget=1e-9))
        requests = _requests(("word_count",)) + [doomed] \
            + _requests(("kmeans",))
        outcomes = WorkerPool(workers=2).run(requests)
        assert [o.status for o in outcomes] == ["ok", "degraded", "ok"]


class TestPoolObs:
    def test_flush_obs(self):
        from repro.obs import Observer
        pool = WorkerPool(workers=2)
        pool.run(_requests(("word_count",)))
        obs = Observer(name="t")
        pool.flush_obs(obs)
        assert obs.counters["pool.dispatched"] == 1
        assert obs.counters["pool.degraded"] == 0
