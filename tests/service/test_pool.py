"""Worker-pool scheduling: sharding, timeouts, retry, degradation."""

import multiprocessing
import time
from collections import deque

import pytest

from repro.fsam.config import FSAMConfig
from repro.service.pool import WorkerPool, _Attempt, _PENDING
from repro.service.requests import AnalysisRequest
from repro.service.runner import run_request_inline
from repro.workloads import get_workload

SMALL = ("word_count", "kmeans", "automount")


def _requests(names=SMALL, **config_kwargs):
    config = FSAMConfig(**config_kwargs)
    return [AnalysisRequest(name=name,
                            source=get_workload(name).source(1),
                            config=config)
            for name in names]


class TestPoolHappyPath:
    def test_pooled_matches_inline(self):
        requests = _requests()
        pool = WorkerPool(workers=2)
        outcomes = pool.run(requests)
        assert [o.name for o in outcomes] == list(SMALL)
        for outcome, request in zip(outcomes, requests):
            inline = run_request_inline(request)
            assert outcome.status == "ok"
            assert outcome.artifact.payload_digest() == \
                inline.artifact.payload_digest()
        assert pool.dispatched == len(SMALL)
        assert pool.degraded == 0
        assert pool.retried == 0
        for outcome in outcomes:
            assert len(outcome.attempt_seconds) == 1
            assert 0 < outcome.attempt_seconds[0] <= outcome.seconds + 1e-6

    def test_more_workers_than_requests(self):
        outcomes = WorkerPool(workers=8).run(_requests(("word_count",)))
        assert len(outcomes) == 1
        assert outcomes[0].status == "ok"

    def test_results_in_request_order(self):
        # raytrace takes much longer than word_count; order must not
        # follow completion order.
        requests = _requests(("raytrace", "word_count"))
        outcomes = WorkerPool(workers=2).run(requests)
        assert [o.name for o in outcomes] == ["raytrace", "word_count"]


class TestPoolDegradation:
    def test_budget_exhaustion_degrades_without_retry(self):
        # The cooperative in-process budget is deterministic, so the
        # pool skips the retry rung and degrades immediately.
        pool = WorkerPool(workers=2)
        outcomes = pool.run(_requests(("raytrace",), time_budget=1e-9))
        assert outcomes[0].status == "degraded"
        assert outcomes[0].artifact.degraded_reason == "budget-exhausted"
        assert pool.budget_exhaustions == 1
        assert pool.retried == 0
        assert pool.degraded == 1

    def test_wall_clock_timeout_retries_then_degrades(self):
        # A 1ms wall-clock deadline kills the worker before it can
        # finish; after one retry the pool falls back to the
        # Andersen-only artifact instead of failing the batch.
        request = AnalysisRequest(name="raytrace",
                                  source=get_workload("raytrace").source(1),
                                  timeout=0.001)
        pool = WorkerPool(workers=1)
        outcomes = pool.run([request])
        assert outcomes[0].status == "degraded"
        assert outcomes[0].artifact.degraded_reason == "wall-clock-timeout"
        assert outcomes[0].artifact.pts_top      # Andersen survives
        assert not outcomes[0].artifact.mem
        assert pool.timeouts >= 1
        assert pool.retried == 1
        assert outcomes[0].attempts == 2
        # Two killed attempts plus the degraded fallback rung, each
        # timed individually; ``seconds`` spans the whole request
        # (including the requeue wait the per-attempt entries exclude).
        assert len(outcomes[0].attempt_seconds) == 3
        assert all(s >= 0 for s in outcomes[0].attempt_seconds)
        assert sum(outcomes[0].attempt_seconds) <= outcomes[0].seconds + 1e-6

    def test_mixed_batch_never_fails(self):
        # One doomed request among healthy ones: everyone gets a
        # terminal outcome, in order.
        doomed = AnalysisRequest(name="doomed",
                                 source=get_workload("raytrace").source(1),
                                 config=FSAMConfig(time_budget=1e-9))
        requests = _requests(("word_count",)) + [doomed] \
            + _requests(("kmeans",))
        outcomes = WorkerPool(workers=2).run(requests)
        assert [o.status for o in outcomes] == ["ok", "degraded", "ok"]


class _ExitedProc:
    """A worker process that has already exited."""

    def is_alive(self):
        return False

    def join(self, timeout=None):
        return None

    def terminate(self):  # pragma: no cover - not reached in these tests
        return None


class _LateMessageConn:
    """Reproduces the send-then-exit race deterministically: the
    sweep's first poll sees an empty pipe (the worker had not sent
    yet), the liveness check then finds the process dead, and only the
    post-join drain can observe the message the worker sent in
    between."""

    def __init__(self, conn):
        self._conn = conn
        self._polls = 0

    def poll(self, timeout=0):
        self._polls += 1
        if self._polls == 1:
            return False
        return self._conn.poll(timeout)

    def recv(self):
        return self._conn.recv()

    def close(self):
        return self._conn.close()


class TestPoolSendExitRace:
    def test_result_sent_between_poll_and_liveness_check_is_recovered(self):
        # Regression: a worker that sends its result and exits in the
        # window between the parent's conn.poll(0) and proc.is_alive()
        # used to be misclassified as a worker crash (result thrown
        # away, request retried). The fix drains the pipe once more
        # after joining the dead process.
        request = _requests(("word_count",))[0]
        artifact = run_request_inline(request).artifact
        reader, writer = multiprocessing.Pipe(duplex=False)
        writer.send({"status": "ok", "artifact": artifact.to_dict()})
        writer.close()
        pool = WorkerPool(workers=1)
        now = time.perf_counter()
        attempt = _Attempt(0, request, 1, _ExitedProc(),
                           _LateMessageConn(reader), deadline=None,
                           started_at=now)
        outcome = pool._sweep(attempt, deque(), {0: now}, {})
        assert outcome is not _PENDING and outcome is not None
        assert outcome.status == "ok"
        assert outcome.artifact.payload_digest() == artifact.payload_digest()
        assert pool.worker_errors == 0
        assert pool.retried == 0
        assert len(outcome.attempt_seconds) == 1

    def test_exit_without_message_is_still_a_crash(self):
        # The drain must not mask a genuine crash: a dead worker with
        # an empty pipe still lands on the retry/degrade ladder.
        request = _requests(("word_count",))[0]
        reader, writer = multiprocessing.Pipe(duplex=False)
        writer.close()
        pool = WorkerPool(workers=1)
        now = time.perf_counter()
        attempt = _Attempt(0, request, 1, _ExitedProc(),
                           _LateMessageConn(reader), deadline=None,
                           started_at=now)
        pending = deque()
        outcome = pool._sweep(attempt, pending, {0: now}, {})
        assert outcome is None          # requeued for the retry
        assert pool.worker_errors == 1
        assert pool.retried == 1
        assert pending and pending[0][2] == 2


class TestPoolObs:
    def test_flush_obs(self):
        from repro.obs import Observer
        pool = WorkerPool(workers=2)
        pool.run(_requests(("word_count",)))
        obs = Observer(name="t")
        pool.flush_obs(obs)
        assert obs.counters["pool.dispatched"] == 1
        assert obs.counters["pool.degraded"] == 0
