"""Cross-process service telemetry: worker span snapshots, the batch
``repro.metrics/1`` rollup, queue-wait attribution, determinism of
warm-batch metrics, and the serve-loop metrics stream."""

import io
import json
import shutil

from repro.fsam.config import FSAMConfig
from repro.harness.report import TelemetrySource, render_telemetry_report
from repro.obs import validate_metrics, validate_metrics_stream
from repro.service.batch import run_batch
from repro.service.cache import ArtifactCache
from repro.service.pool import WorkerPool
from repro.service.requests import AnalysisRequest
from repro.service.serve import serve_loop
from repro.workloads import get_workload

SMALL = ("word_count", "kmeans", "automount")


def _requests(names=SMALL, **config_kwargs):
    config = FSAMConfig(**config_kwargs)
    return [AnalysisRequest(name=name,
                            source=get_workload(name).source(1),
                            config=config)
            for name in names]


class TestBatchRollup:
    def test_pooled_cold_batch_rollup(self, tmp_path):
        """The ISSUE acceptance scenario: a 2-worker batch over the
        three smallest workloads yields a validated metrics rollup
        with dispatch histograms, worker-merged phase distributions,
        and cache hit-rate gauges."""
        report = run_batch(_requests(profile=True), workers=2,
                           cache=ArtifactCache(tmp_path), slow_ms=0)
        metrics = report.metrics
        validate_metrics(metrics)

        for name in ("pool.run_seconds", "pool.queue_seconds",
                     "request.seconds"):
            hist = metrics["histograms"][name]
            assert hist["count"] == len(SMALL)
            assert hist["p99"] >= hist["p50"] >= 0.0
        assert metrics["histograms"]["pool.run_seconds"]["sum"] > 0.0

        # Worker-side spans shipped home: per-phase distributions and
        # solver counters merged across processes.
        assert metrics["histograms"]["phase.sparse_solve"]["count"] == \
            len(SMALL)
        assert metrics["phase_seconds"]["sparse_solve"] > 0.0
        assert metrics["counters"]["solver.iterations"] > 0

        assert metrics["gauges"]["cache.hit_rate"] == 0.0
        assert "cache.func_hit_rate" in metrics["gauges"]

        # Slow-request exemplars (threshold 0ms: every miss) keep the
        # per-phase breakdown and the dominant phase.
        assert len(report.exemplars) == len(SMALL)
        for exemplar in report.exemplars:
            assert exemplar["request_id"].startswith("r")
            assert exemplar["dominant_phase"] in exemplar["phase_seconds"]

        text = render_telemetry_report(
            TelemetrySource("batch", metrics,
                            rows=report.to_dict()["requests"],
                            exemplars=report.exemplars))
        assert "pool.run_seconds" in text
        assert "sparse_solve" in text
        assert "cache hit rate" in text

    def test_request_ids_and_queue_in_rows(self, tmp_path):
        report = run_batch(_requests(), workers=2,
                           cache=ArtifactCache(tmp_path))
        rows = report.to_dict()["requests"]
        assert [row["request_id"] for row in rows] == \
            ["r0000", "r0001", "r0002"]
        assert all(row["queue_seconds"] >= 0.0 for row in rows)

    def test_warm_batch_metrics_bit_deterministic(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_batch(_requests(profile=True), workers=2, cache=cache)
        warm1 = run_batch(_requests(profile=True), workers=2,
                          cache=ArtifactCache(tmp_path))
        warm2 = run_batch(_requests(profile=True), workers=2,
                          cache=ArtifactCache(tmp_path))
        assert json.dumps(warm1.metrics, sort_keys=True) == \
            json.dumps(warm2.metrics, sort_keys=True)
        # No wall-clock samples on the warm path at all.
        assert warm1.metrics["histograms"] == {}
        assert warm1.metrics["phase_seconds"] == {}
        assert warm1.metrics["gauges"]["cache.hit_rate"] == 1.0

    def test_inline_batch_rollup_matches_pooled_shape(self):
        # workers=1 runs in-process; the rollup must still carry the
        # same histogram set (no pool, so queue waits are zero).
        report = run_batch(_requests(("word_count",), profile=True),
                           workers=1)
        metrics = report.metrics
        validate_metrics(metrics)
        assert metrics["histograms"]["pool.run_seconds"]["count"] == 1
        assert metrics["histograms"]["phase.sparse_solve"]["count"] == 1
        assert metrics["counters"]["solver.iterations"] > 0


class TestQueueWait:
    def test_queue_wait_split_from_run_time(self):
        # One worker, two requests: the second request queues behind
        # the first, and that wait lands in queue_seconds, not in the
        # per-attempt run times.
        requests = _requests(("word_count", "kmeans"))
        pool = WorkerPool(workers=1)
        outcomes = pool.run(requests)
        assert outcomes[0].queue_seconds >= 0.0
        assert outcomes[1].queue_seconds > 0.0
        # The follower waited at least as long as the leader's run.
        assert outcomes[1].queue_seconds >= \
            outcomes[0].attempt_seconds[0] - 1e-3
        for outcome in outcomes:
            assert sum(outcome.attempt_seconds) <= \
                outcome.seconds + 1e-6


class TestWorkerSnapshots:
    def test_snapshot_shipped_with_profile(self):
        outcomes = WorkerPool(workers=2).run(
            _requests(("word_count",), profile=True))
        snapshot = outcomes[0].obs_snapshot
        assert snapshot is not None
        validate_metrics(snapshot)
        assert snapshot["phase_seconds"]["sparse_solve"] > 0.0
        assert snapshot["counters"]["solver.iterations"] > 0

    def test_func_counters_survive_pooled_workers(self, tmp_path):
        """Regression for the removed artifact-summary reconstruction
        path: store-level func-cache counters shipped in worker
        snapshots must equal the per-artifact incremental summaries
        they replaced."""
        cache = ArtifactCache(tmp_path)
        run_batch(_requests(), workers=2, cache=cache)
        # Drop the program-level artifacts but keep the per-function
        # store, so the rerun misses the top cache and reuses the
        # function layer.
        for child in tmp_path.iterdir():
            if child.is_dir() and child.name != "func":
                shutil.rmtree(child)
        report = run_batch(_requests(), workers=2,
                           cache=ArtifactCache(tmp_path))
        assert all(o.cache == "miss" for o in report.outcomes)
        summary_hits = sum(
            o.artifact.summary["incremental"]["func_hits"]
            for o in report.outcomes)
        assert summary_hits > 0
        assert report.counters["cache.func_hits"] == summary_hits
        assert report.metrics["gauges"]["cache.func_hit_rate"] > 0.0


class TestServeMetricsStream:
    def test_stream_validates_and_accumulates(self, tmp_path):
        stream = io.StringIO()
        out = io.StringIO()
        lines = "\n".join(['{"workload": "word_count"}'] * 2) + "\n"
        served = serve_loop(io.StringIO(lines), out,
                            cache=ArtifactCache(tmp_path),
                            metrics_interval=0.0, metrics_stream=stream)
        assert served == 2
        docs = [json.loads(line)
                for line in stream.getvalue().splitlines()]
        assert len(docs) >= 2          # per-request snapshots + final
        validate_metrics_stream(docs)
        final = docs[-1]
        assert final["counters"]["serve.requests"] == 2
        assert final["counters"]["cache.hits"] == 1
        assert final["gauges"]["cache.hit_rate"] == 0.5
        assert final["histograms"]["request.seconds"]["count"] == 1

    def test_responses_carry_span_and_queue(self, tmp_path):
        out = io.StringIO()
        serve_loop(io.StringIO('{"workload": "word_count"}\n'), out,
                   cache=ArtifactCache(tmp_path))
        response = json.loads(out.getvalue().splitlines()[0])
        assert response["span"] == "s0000"
        assert response["queue_seconds"] >= 0.0
