"""Bounded artifact cache: LRU-by-mtime eviction under max_bytes."""

import os

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.obs import Observer
from repro.service.artifacts import artifact_from_result
from repro.service.cache import ArtifactCache, FuncArtifactStore


def _artifact():
    source = "int g; int main() { int *p; p = &g; return 0; }"
    result = FSAM(compile_source(source), FSAMConfig()).run()
    return artifact_from_result("tiny", result)


def _digest(i):
    return f"{i:02d}" * 32


def _touch_older(cache, digest, seconds):
    """Backdate an entry's mtime so eviction order is deterministic."""
    path = cache.path(digest)
    st = os.stat(path)
    os.utime(path, (st.st_atime - seconds, st.st_mtime - seconds))


class TestCacheCap:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path, max_bytes=-1)
        ArtifactCache(tmp_path, max_bytes=0)  # degenerate but legal

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        for i in range(5):
            cache.put(_digest(i), artifact)
        assert cache.evicted == 0
        assert all(cache.get(_digest(i)) is not None for i in range(5))

    def test_oldest_entries_age_out_first(self, tmp_path):
        artifact = _artifact()
        probe = ArtifactCache(tmp_path)
        path = probe.put(_digest(0), artifact)
        size = path.stat().st_size
        os.unlink(path)

        cache = ArtifactCache(tmp_path, max_bytes=3 * size)
        for i in range(3):
            cache.put(_digest(i), artifact)
            _touch_older(cache, _digest(i), seconds=100 - i)
        assert cache.evicted == 0  # exactly at the cap
        cache.put(_digest(3), artifact)  # one over: oldest goes
        assert cache.evicted == 1
        assert cache.get(_digest(0)) is None
        assert cache.get(_digest(1)) is not None
        assert cache.get(_digest(3)) is not None

    def test_hit_touch_keeps_hot_entries_alive(self, tmp_path):
        artifact = _artifact()
        probe = ArtifactCache(tmp_path)
        path = probe.put(_digest(0), artifact)
        size = path.stat().st_size
        os.unlink(path)

        cache = ArtifactCache(tmp_path, max_bytes=2 * size)
        cache.put(_digest(0), artifact)
        cache.put(_digest(1), artifact)
        _touch_older(cache, _digest(0), seconds=200)
        _touch_older(cache, _digest(1), seconds=100)
        # A hit refreshes digest 0's mtime, so the *other* entry is
        # now the LRU victim.
        assert cache.get(_digest(0)) is not None
        cache.put(_digest(2), artifact)
        assert cache.get(_digest(0)) is not None
        assert cache.get(_digest(1)) is None
        assert cache.get(_digest(2)) is not None

    def test_func_store_is_exempt(self, tmp_path):
        artifact = _artifact()
        cache = ArtifactCache(tmp_path, max_bytes=1)  # evict everything
        store = FuncArtifactStore(tmp_path)
        store.put("fn" + "cd" * 31, {
            "schema": "repro.funcartifact/1",
            "code_version": __import__(
                "repro.schemas", fromlist=["CODE_VERSION"]).CODE_VERSION,
            "function": "main", "points_to": {}, "iterations": 1,
        })
        before = sorted(p.name for p in (tmp_path / "func").rglob("*"))
        cache.put(_digest(0), artifact)
        assert cache.get(_digest(0)) is None  # over the 1-byte cap
        assert cache.evicted == 1
        after = sorted(p.name for p in (tmp_path / "func").rglob("*"))
        assert before == after  # the func/ sub-store was never touched

    def test_evicted_counter_flushes_to_obs(self, tmp_path):
        artifact = _artifact()
        cache = ArtifactCache(tmp_path, max_bytes=1)
        cache.put(_digest(0), artifact)
        obs = Observer(name="test", track_memory=False)
        cache.flush_obs(obs)
        assert obs.counter("cache.evicted") == 1
        assert cache.stats()["evicted"] == 1
