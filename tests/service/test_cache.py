"""Content-addressed artifact cache policies."""

import json

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.obs import Observer
from repro.service.artifacts import AnalysisArtifact, artifact_from_result
from repro.service.cache import ArtifactCache
from repro.workloads import get_workload

DIGEST = "ab" * 32


def _artifact():
    source = get_workload("word_count").source(1)
    result = FSAM(compile_source(source), FSAMConfig()).run()
    return artifact_from_result("word_count", result)


class TestCacheRoundTrip:
    def test_miss_store_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get(DIGEST) is None
        artifact = _artifact()
        path = cache.put(DIGEST, artifact)
        assert path is not None and path.exists()
        back = cache.get(DIGEST)
        assert back is not None
        assert back.payload_digest() == artifact.payload_digest()
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                                 "corrupt": 0}

    def test_fanout_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.path(DIGEST)
        assert path.parent.name == DIGEST[:2]
        assert path.name == f"{DIGEST[2:]}.json"

    def test_degraded_never_stored(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        artifact.degraded = True
        artifact.degraded_reason = "budget-exhausted"
        assert cache.put(DIGEST, artifact) is None
        assert cache.stores == 0
        assert cache.get(DIGEST) is None


class TestCacheInvalidation:
    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.path(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_text("{ truncated")
        assert cache.get(DIGEST) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_schema_invalid_entry_is_corrupt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.path(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "repro.artifact/1"}))
        assert cache.get(DIGEST) is None
        assert cache.corrupt == 1

    def test_stale_code_version_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        cache.put(DIGEST, artifact)
        doc = json.loads(cache.path(DIGEST).read_text())
        doc["code_version"] = "fsam-0.0.0/artifact-0"
        cache.path(DIGEST).write_text(json.dumps(doc))
        assert cache.get(DIGEST) is None
        assert cache.corrupt == 0        # stale, not corrupt
        assert not cache.path(DIGEST).exists()

    def test_rewrite_after_stale_drop(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        cache.put(DIGEST, artifact)
        doc = json.loads(cache.path(DIGEST).read_text())
        doc["code_version"] = "old"
        cache.path(DIGEST).write_text(json.dumps(doc))
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, artifact)
        assert isinstance(cache.get(DIGEST), AnalysisArtifact)


class TestCacheObs:
    def test_flush_obs(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get(DIGEST)
        cache.put(DIGEST, _artifact())
        cache.get(DIGEST)
        obs = Observer(name="t")
        cache.flush_obs(obs)
        assert obs.counters["cache.hits"] == 1
        assert obs.counters["cache.misses"] == 1
        assert obs.counters["cache.stores"] == 1
        assert obs.counters["cache.corrupt"] == 0
