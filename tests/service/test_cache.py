"""Content-addressed artifact cache policies."""

import json
import os

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.obs import Observer
from repro.schemas import CODE_VERSION, FUNC_ARTIFACT_SCHEMA
from repro.service.artifacts import AnalysisArtifact, artifact_from_result
from repro.service.cache import (
    ArtifactCache, FuncArtifactStore, _atomic_write, _handle_sig,
    _tolerant_drop,
)
from repro.workloads import get_workload

DIGEST = "ab" * 32


def _artifact():
    source = get_workload("word_count").source(1)
    result = FSAM(compile_source(source), FSAMConfig()).run()
    return artifact_from_result("word_count", result)


class TestCacheRoundTrip:
    def test_miss_store_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get(DIGEST) is None
        artifact = _artifact()
        path = cache.put(DIGEST, artifact)
        assert path is not None and path.exists()
        back = cache.get(DIGEST)
        assert back is not None
        assert back.payload_digest() == artifact.payload_digest()
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                                 "corrupt": 0, "stale": 0, "evicted": 0}

    def test_fanout_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.path(DIGEST)
        assert path.parent.name == DIGEST[:2]
        assert path.name == f"{DIGEST[2:]}.json"

    def test_degraded_never_stored(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        artifact.degraded = True
        artifact.degraded_reason = "budget-exhausted"
        assert cache.put(DIGEST, artifact) is None
        assert cache.stores == 0
        assert cache.get(DIGEST) is None


class TestCacheInvalidation:
    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.path(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_text("{ truncated")
        assert cache.get(DIGEST) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_schema_invalid_entry_is_corrupt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.path(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "repro.artifact/1"}))
        assert cache.get(DIGEST) is None
        assert cache.corrupt == 1

    def test_stale_code_version_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        cache.put(DIGEST, artifact)
        doc = json.loads(cache.path(DIGEST).read_text())
        doc["code_version"] = "fsam-0.0.0/artifact-0"
        cache.path(DIGEST).write_text(json.dumps(doc))
        assert cache.get(DIGEST) is None
        assert cache.corrupt == 0        # stale, not corrupt
        assert cache.stale == 1
        assert not cache.path(DIGEST).exists()

    def test_rewrite_after_stale_drop(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        cache.put(DIGEST, artifact)
        doc = json.loads(cache.path(DIGEST).read_text())
        doc["code_version"] = "old"
        cache.path(DIGEST).write_text(json.dumps(doc))
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, artifact)
        assert isinstance(cache.get(DIGEST), AnalysisArtifact)


class TestTolerantDrop:
    """The unlink-by-path race: a corrupt read must never delete a
    fresh artifact a concurrent worker just ``os.replace``d into the
    same slot."""

    def test_drops_only_the_file_that_was_read(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("{ truncated")
        with open(path) as handle:
            sig = _handle_sig(handle)
        assert _tolerant_drop(path, sig) is False
        assert not path.exists()

    def test_replaced_slot_is_preserved(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("{ truncated")
        with open(path) as handle:
            sig = _handle_sig(handle)
        # A concurrent worker lands a fresh entry in the slot between
        # our failed read and the drop.
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"fresh": True}))
        os.replace(fresh, path)
        assert _tolerant_drop(path, sig) is True
        assert path.exists()
        assert json.loads(path.read_text()) == {"fresh": True}

    def test_missing_file_is_a_noop(self, tmp_path):
        assert _tolerant_drop(tmp_path / "gone.json", None) is False

    def test_get_retries_and_serves_concurrently_replaced_entry(
            self, tmp_path, monkeypatch):
        """End to end through ``ArtifactCache.get``: the first read hits
        a corrupt entry, a concurrent writer replaces the slot before
        the drop, and the retry serves the fresh artifact instead of
        unlinking it."""
        cache = ArtifactCache(tmp_path)
        artifact = _artifact()
        path = cache.path(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_text("{ truncated")

        real_load = json.load
        state = {"reads": 0}

        def racy_load(handle):
            state["reads"] += 1
            if state["reads"] == 1:
                # Simulate the concurrent os.replace landing after our
                # read but before the tolerant drop.
                _atomic_write(path, artifact.to_dict())
                raise json.JSONDecodeError("truncated", "{", 1)
            return real_load(handle)

        monkeypatch.setattr(json, "load", racy_load)
        back = cache.get(DIGEST)
        assert back is not None
        assert back.payload_digest() == artifact.payload_digest()
        assert cache.corrupt == 1
        assert cache.hits == 1 and cache.misses == 0
        assert path.exists()


def _funcdoc(**overrides):
    doc = {
        "schema": FUNC_ARTIFACT_SCHEMA,
        "code_version": CODE_VERSION,
        "function": "main",
        "digest": "cd" * 32,
        "context_sig": "ef" * 32,
        "objects": ["stack:main::x", "heap:malloc.l+2@main"],
        "top": {"0": "0x1", "3": "0x3"},
        "mem": {"0:1": "0x2"},
    }
    doc.update(overrides)
    return doc


class TestFuncArtifactStore:
    def test_round_trip(self, tmp_path):
        store = FuncArtifactStore(tmp_path)
        digest = "cd" * 32
        assert store.get(digest) is None
        path = store.put(digest, _funcdoc())
        assert path.exists()
        assert str(path).startswith(str(tmp_path / "func"))
        back = store.get(digest)
        assert back == _funcdoc()
        assert store.stats() == {"func_hits": 1, "func_misses": 1,
                                 "func_stores": 1, "corrupt": 0}

    def test_put_rejects_non_funcartifact(self, tmp_path):
        store = FuncArtifactStore(tmp_path)
        try:
            store.put("cd" * 32, {"schema": "repro.artifact/1"})
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_stale_code_version_reads_as_miss(self, tmp_path):
        store = FuncArtifactStore(tmp_path)
        digest = "cd" * 32
        store.put(digest, _funcdoc(code_version="fsam-0.0.0/func-0"))
        assert store.get(digest) is None
        assert store.corrupt == 1
        assert not store.path(digest).exists()

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = FuncArtifactStore(tmp_path)
        digest = "cd" * 32
        path = store.path(digest)
        path.parent.mkdir(parents=True)
        path.write_text("{ truncated")
        assert store.get(digest) is None
        assert store.corrupt == 1
        assert not path.exists()

    def test_flush_obs(self, tmp_path):
        store = FuncArtifactStore(tmp_path)
        store.get("cd" * 32)
        store.put("cd" * 32, _funcdoc())
        store.get("cd" * 32)
        obs = Observer(name="t")
        store.flush_obs(obs)
        assert obs.counters["cache.func_hits"] == 1
        assert obs.counters["cache.func_misses"] == 1
        assert obs.counters["cache.func_stores"] == 1


class TestCacheObs:
    def test_flush_obs(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get(DIGEST)
        cache.put(DIGEST, _artifact())
        cache.get(DIGEST)
        obs = Observer(name="t")
        cache.flush_obs(obs)
        assert obs.counters["cache.hits"] == 1
        assert obs.counters["cache.misses"] == 1
        assert obs.counters["cache.stores"] == 1
        assert obs.counters["cache.corrupt"] == 0
