"""Determinism guard: artifact digests must be identical across
fresh interpreter processes.

The artifact cache is keyed by content digest and stores canonical
payloads; if any hash-order, set-order, or counter-offset
nondeterminism leaked into the canonical numbering, two processes
would disagree about the "same" artifact and the cache could serve a
result that is not what a fresh run computes. Running the digest
computation in subprocesses with *different* ``PYTHONHASHSEED``
values flushes out the whole class at once.

(In-process stability across counter offsets is covered by
``test_artifacts.py::test_same_run_same_digest``; this file pins the
cross-interpreter half of the contract.)
"""

import json
import os
import subprocess
import sys

WORKLOADS = ("word_count", "kmeans", "raytrace")

_SCRIPT = r"""
import json, sys
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.service.artifacts import artifact_from_result
from repro.service.requests import request_digest
from repro.workloads import get_workload

out = {}
for name in %(workloads)r:
    source = get_workload(name).source(1)
    result = FSAM(compile_source(source), FSAMConfig()).run()
    artifact = artifact_from_result(name, result)
    out[name] = {
        "request_digest": request_digest(source, FSAMConfig()),
        "payload_digest": artifact.payload_digest(),
    }
json.dump(out, sys.stdout, sort_keys=True)
"""


def _digests_under_hashseed(seed: str):
    import repro
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT % {"workloads": WORKLOADS}],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_digests_identical_across_hashseeds():
    a = _digests_under_hashseed("1")
    b = _digests_under_hashseed("4242")
    assert a == b
    for name in WORKLOADS:
        assert len(a[name]["request_digest"]) == 64
        assert len(a[name]["payload_digest"]) == 64
