"""Request digests (the cache key) and batch-spec parsing."""

import json

import pytest

from repro.fsam.config import FSAMConfig
from repro.service.requests import (
    AnalysisRequest, request_digest, request_from_entry, requests_from_spec,
)

SOURCE = "int main() { return 0; }"


class TestRequestDigest:
    def test_stable(self):
        assert request_digest(SOURCE, FSAMConfig()) == \
            request_digest(SOURCE, FSAMConfig())

    def test_source_participates(self):
        assert request_digest(SOURCE, FSAMConfig()) != \
            request_digest(SOURCE + " ", FSAMConfig())

    def test_fixpoint_config_participates(self):
        assert request_digest(SOURCE, FSAMConfig()) != \
            request_digest(SOURCE, FSAMConfig(interleaving=False))
        assert request_digest(SOURCE, FSAMConfig()) != \
            request_digest(SOURCE, FSAMConfig(max_context_depth=1))

    def test_execution_knobs_do_not_participate(self):
        base = request_digest(SOURCE, FSAMConfig())
        # Budget, observability, and engine selection change how a run
        # executes, never what fixpoint it computes.
        assert base == request_digest(SOURCE, FSAMConfig(time_budget=1.0))
        assert base == request_digest(SOURCE, FSAMConfig(profile=False))
        assert base == request_digest(SOURCE, FSAMConfig(trace=True))
        assert base == request_digest(
            SOURCE, FSAMConfig(solver_engine="reference"))

    def test_code_version_participates(self):
        assert request_digest(SOURCE, FSAMConfig()) != \
            request_digest(SOURCE, FSAMConfig(), code_version="other")


class TestConfigWireForm:
    def test_round_trip(self):
        config = FSAMConfig(interleaving=False, time_budget=2.5,
                            max_context_depth=3, trace=True)
        assert FSAMConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FSAMConfig"):
            FSAMConfig.from_dict({"interleavings": True})

    def test_partial_dict_fills_defaults(self):
        config = FSAMConfig.from_dict({"value_flow": False})
        assert not config.value_flow
        assert config.interleaving

    def test_request_payload_round_trip(self):
        request = AnalysisRequest(name="r", source=SOURCE,
                                  config=FSAMConfig(lock_analysis=False),
                                  timeout=7.0)
        back = AnalysisRequest.from_payload(request.to_payload())
        assert back == request
        assert back.digest() == request.digest()


class TestRequestFromEntry:
    def test_workload_entry(self):
        request = request_from_entry({"workload": "word_count"})
        assert request.name == "word_count"
        assert "fork" in request.source

    def test_file_entry_uses_base_dir(self, tmp_path):
        (tmp_path / "p.mc").write_text(SOURCE)
        request = request_from_entry({"file": "p.mc"}, base_dir=str(tmp_path))
        assert request.source == SOURCE
        assert request.name == "p.mc"

    def test_inline_source_needs_name(self):
        with pytest.raises(ValueError, match="need a name"):
            request_from_entry({"source": SOURCE})
        request = request_from_entry({"source": SOURCE, "name": "tiny"})
        assert request.name == "tiny"

    def test_exactly_one_program_key(self):
        with pytest.raises(ValueError, match="exactly one way"):
            request_from_entry({"workload": "word_count", "source": SOURCE})
        with pytest.raises(ValueError, match="exactly one way"):
            request_from_entry({"name": "nothing"})

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            request_from_entry({"workload": "word_count", "timeout": "fast"})

    def test_config_propagates(self):
        request = request_from_entry({
            "workload": "word_count",
            "config": {"interleaving": False}, "timeout": 3})
        assert not request.config.interleaving
        assert request.timeout == 3


class TestSpecParsing:
    def test_spec_round_trip(self, tmp_path):
        spec = {
            "workers": 2, "cache": ".c", "timeout": 9,
            "requests": [{"workload": "word_count"},
                         {"source": SOURCE, "name": "tiny"}],
        }
        requests, options = requests_from_spec(
            json.loads(json.dumps(spec)), base_dir=str(tmp_path))
        assert [r.name for r in requests] == ["word_count", "tiny"]
        assert options == {"workers": 2, "cache": ".c", "timeout": 9}

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            requests_from_spec({"requests": []})
        with pytest.raises(ValueError, match="not a JSON object"):
            requests_from_spec([])
