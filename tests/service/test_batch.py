"""The batch driver: dedup, cache consultation, reporting."""

import pytest

from repro.fsam.config import FSAMConfig
from repro.obs import Observer
from repro.service.batch import (
    render_batch_report, run_batch, validate_batch_report,
)
from repro.service.cache import ArtifactCache
from repro.service.requests import AnalysisRequest
from repro.workloads import get_workload

SMALL = ("word_count", "kmeans", "automount")


def _requests(names=SMALL, **config_kwargs):
    config = FSAMConfig(**config_kwargs)
    return [AnalysisRequest(name=name,
                            source=get_workload(name).source(1),
                            config=config)
            for name in names]


class TestDedup:
    def test_duplicate_requests_run_once(self, tmp_path):
        requests = _requests(("word_count",)) * 3
        requests[1].name = "copy-1"
        requests[2].name = "copy-2"
        report = run_batch(requests, workers=1)
        assert [o.cache for o in report.outcomes] == \
            ["miss", "dedup", "dedup"]
        # Followers share the representative's artifact object.
        assert report.outcomes[1].artifact is report.outcomes[0].artifact
        assert report.counters["batch.unique_requests"] == 1
        assert report.counters["batch.deduped"] == 2

    def test_different_config_not_deduped(self):
        requests = _requests(("word_count",)) \
            + _requests(("word_count",), interleaving=False)
        report = run_batch(requests, workers=1)
        assert [o.cache for o in report.outcomes] == ["miss", "miss"]


class TestCacheIntegration:
    def test_cold_then_warm(self, tmp_path):
        requests = _requests()
        cold = run_batch(requests, workers=1,
                         cache=ArtifactCache(tmp_path), name="cold")
        assert all(o.cache == "miss" for o in cold.outcomes)
        assert cold.to_dict()["aggregate"]["solver_iterations"] > 0

        warm = run_batch(requests, workers=1,
                         cache=ArtifactCache(tmp_path), name="warm")
        assert all(o.cache == "hit" for o in warm.outcomes)
        doc = warm.to_dict()
        # The cache guarantee: a fully warm batch performs no solver
        # work at all, visible both in the aggregate and the counters.
        assert doc["aggregate"]["solver_iterations"] == 0
        assert doc["counters"]["batch.solver_iterations"] == 0
        assert doc["counters"]["batch.cache_hits"] == len(SMALL)
        assert doc["aggregate"]["phase_seconds"] == {}
        # ... and the warm artifacts are the cold ones, bit for bit.
        for cold_o, warm_o in zip(cold.outcomes, warm.outcomes):
            assert warm_o.artifact.payload_digest() == \
                cold_o.artifact.payload_digest()

    def test_degraded_outcome_not_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_batch(_requests(("raytrace",), time_budget=1e-9),
                  workers=1, cache=cache)
        assert cache.stores == 0
        # The same request unbudgeted is a miss, then runs fully.
        report = run_batch(_requests(("raytrace",)), workers=1, cache=cache)
        assert report.outcomes[0].cache == "miss"
        assert report.outcomes[0].status == "ok"

    def test_inline_timeout_becomes_budget(self):
        # workers=1 has no process to kill: the batch-level timeout is
        # applied as the cooperative budget and degrades the same way.
        report = run_batch(_requests(("raytrace",)), workers=1,
                           timeout=1e-9)
        assert report.outcomes[0].status == "degraded"
        assert report.counters["batch.degraded"] == 1


class TestReport:
    def test_report_validates_and_renders(self, tmp_path):
        report = run_batch(_requests(), workers=1,
                           cache=ArtifactCache(tmp_path))
        doc = validate_batch_report(report.to_dict())
        assert doc["schema"] == "repro.batch/1"
        text = render_batch_report(doc)
        for name in SMALL:
            assert name in text
        assert "batch.cache_misses" in text

    def test_validator_rejects_bad_rows(self):
        report = run_batch(_requests(("word_count",)), workers=1)
        doc = report.to_dict()
        doc["requests"][0]["status"] = "confused"
        with pytest.raises(ValueError, match="status"):
            validate_batch_report(doc)

    def test_external_observer_is_used(self):
        obs = Observer(name="external")
        run_batch(_requests(("word_count",)), workers=1, obs=obs)
        assert obs.counters["batch.requests"] == 1

    def test_phase_seconds_aggregated_on_cold_runs(self):
        report = run_batch(_requests(("word_count",)), workers=1)
        phases = report.to_dict()["aggregate"]["phase_seconds"]
        assert "sparse_solve" in phases
