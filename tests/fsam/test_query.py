"""Differential suite for the demand-driven query engine.

The contract under test: a demand query's answer — solved over the
backward DUG slice only — is **bit-identical** (equal PTSet masks) to
the whole-program fixpoint, for every top-level variable of every
workload, under every kernel backend and with tracing forced on (the
scalar-fallback path). Plus the engine mechanics around it: warm
re-queries cost zero iterations, the reference engine bails to one
cached whole-program solve, object queries reproduce ``global_pts``,
and ``solver_mode="demand"`` defers all solving to queries.
"""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig, analyze_source
from repro.fsam.kernel import numpy_available
from repro.fsam.query import QueryEngine, resolve_temps
from repro.trace import Tracer
from repro.workloads import get_workload, workload_names

WORKLOADS = tuple(workload_names())

BACKENDS = ("none", "python") + (("numpy",) if numpy_available() else ())

_PIPELINES = {}


def pipeline(name: str):
    """One shared whole-program solve per workload (the oracle)."""
    if name not in _PIPELINES:
        source = get_workload(name).source(1)
        _PIPELINES[name] = FSAM(compile_source(source, name=name)).run()
    return _PIPELINES[name]


def top_level_names(result):
    return sorted({temp.name
                   for fn in result.module.functions.values()
                   for temp in list(fn.params)
                   + [instr.dst for instr in fn.instructions()
                      if hasattr(instr, "dst")]
                   if hasattr(temp, "name") and hasattr(temp, "id")})


def expected_mask(result, var: str) -> int:
    mask = 0
    for tid in resolve_temps(result.module, var):
        pts = result.solver.pts_top.get(tid)
        if pts is not None:
            mask |= pts.mask
    return mask


def engine_for(result, **config_kwargs) -> QueryEngine:
    return QueryEngine(result.module, result.dug, result.builder,
                       result.andersen,
                       config=FSAMConfig(**config_kwargs))


@pytest.mark.parametrize("name", WORKLOADS)
def test_demand_answers_bit_identical(name):
    """Every top-level variable, every kernel backend: demand answer
    mask == whole-program fixpoint mask."""
    result = pipeline(name)
    names = top_level_names(result)
    assert names, f"workload {name} has no top-level variables"
    for backend in BACKENDS:
        engine = engine_for(result, kernel=backend)
        for var in names:
            answer = engine.query(var)
            assert answer.mask == expected_mask(result, var), \
                (name, backend, var)


@pytest.mark.parametrize("name", WORKLOADS)
def test_object_queries_match_global_pts(name):
    result = pipeline(name)
    engine = engine_for(result)
    for gname in sorted(result.module.globals):
        answer = engine.query(gname, obj=True)
        assert answer.mask == result.global_pts(gname).mask, (name, gname)
        assert set(answer.names()) == result.global_pts_names(gname)


@pytest.mark.parametrize("name", ("kmeans", "raytrace"))
def test_tracer_forces_scalar_and_stays_identical(name):
    """Tracing disables the kernel (provenance needs the scalar
    per-visit path) — the demand answers must not change."""
    result = pipeline(name)
    engine = QueryEngine(result.module, result.dug, result.builder,
                         result.andersen, config=FSAMConfig(trace=True),
                         tracer=Tracer(name=name))
    saw_solve = False
    for var in top_level_names(result):
        answer = engine.query(var)
        if answer.source == "solve":
            saw_solve = True
            assert answer.kernel_backend is None
        assert answer.mask == expected_mask(result, var), (name, var)
    assert saw_solve


def test_warm_requery_costs_zero_iterations():
    result = pipeline("kmeans")
    engine = engine_for(result)
    var = next(v for v in top_level_names(result)
               if engine.query(v).slice_nodes > 0)
    again = engine.query(var)
    assert again.source == "warm"
    assert again.iterations == 0
    assert again.mask == expected_mask(result, var)


def test_reference_engine_bails_to_cached_full_solve():
    result = pipeline("kmeans")
    engine = engine_for(result, solver_engine="reference")
    names = top_level_names(result)
    first = engine.query(names[0])
    assert first.source == "full"
    assert first.slice_fraction == 1.0
    assert first.iterations > 0
    assert first.mask == expected_mask(result, names[0])
    second = engine.query(names[1])
    assert second.source == "full"
    assert second.iterations == 0  # whole-program solve is cached
    assert second.mask == expected_mask(result, names[1])


def test_unknown_names_raise():
    result = pipeline("kmeans")
    engine = engine_for(result)
    with pytest.raises(ValueError, match="no top-level variable"):
        engine.query("no_such_variable")
    with pytest.raises(ValueError, match="unknown global"):
        engine.query("no_such_global", obj=True)


def test_line_restricted_query():
    """A line qualifier restricts resolution to temps defined on that
    source line; a line with no matching definition is an error, not
    an empty answer."""
    src = """
int x; int y;
int *p;
int main() {
    p = &x;
    p = &y;
    return 0;
}
"""
    result = analyze_source(src)
    # Pick a real dst temp (assignments SSA-rename, so resolve one
    # dynamically rather than hard-coding the compiler's naming).
    fn = result.module.functions["main"]
    instr = next(i for i in fn.instructions()
                 if getattr(i, "dst", None) is not None)
    var, line = instr.dst.name, instr.line
    unrestricted = result.query(var)
    restricted = result.query(var, line=line)
    assert restricted.mask == unrestricted.mask
    assert restricted.names() == unrestricted.names()
    with pytest.raises(ValueError, match=f"at line {line + 99}"):
        result.query(var, line=line + 99)


def test_demand_mode_defers_all_solving():
    """``solver_mode="demand"`` skips the whole-program solve; queries
    still answer bit-identically."""
    oracle = pipeline("kmeans")
    source = get_workload("kmeans").source(1)
    result = FSAM(compile_source(source, name="kmeans"),
                  FSAMConfig(solver_mode="demand")).run()
    assert result.solver.iterations == 0  # nothing solved eagerly
    for var in top_level_names(oracle)[:25]:
        answer = result.query(var)
        assert answer.mask == expected_mask(oracle, var), var
    # An engine accumulates: the same variable again is warm.
    for var in top_level_names(oracle)[:5]:
        assert result.query(var).source == "warm"


def test_slice_signature_is_canonical():
    """Two pipelines over the same source produce the same slice
    signature for the same query (the artifact-cache requirement),
    even though raw uids/temp ids differ across pipelines."""
    source = get_workload("kmeans").source(1)
    signatures = []
    for _ in range(2):
        result = FSAM(compile_source(source, name="kmeans")).run()
        engine = engine_for(result)
        var = top_level_names(result)[0]
        answer = engine.query(var)
        signatures.append(
            engine.slice_signature(answer.node_uids, answer.temp_ids))
    assert signatures[0] == signatures[1]
