"""Differential pinning of the delta-propagating solver engine.

The optimised :class:`~repro.fsam.solver.SparseSolver` (delta
propagation + SCC-condensed topological scheduling) must compute a
fixpoint *bit-identical* to the retained naive
:class:`~repro.fsam.reference.ReferenceSolver` (FIFO, seed-all,
recompute-from-preds): same ``pts_top`` map, same per-definition
``mem`` map, same strong/weak/pass/kill classification at every
(store, object) — across every workload program and every ablation
config. Transfer functions are union-monotone, so any schedule
reaches the same least fixpoint; these tests are the executable form
of that argument.

Both engines run over the *same* DUG/builder/universe (the pipeline
is run once; the reference engine re-solves its output graph), so the
interned masks are directly comparable integers.
"""

import pytest

from repro.frontend import compile_source
from repro.fsam.analysis import FSAM
from repro.fsam.config import FSAMConfig
from repro.fsam.kernel import numpy_available
from repro.fsam.reference import ReferenceSolver
from repro.fsam.solver import SparseSolver, store_update_classes
from repro.trace import Tracer
from repro.workloads import get_workload, workload_names

ABLATIONS = ["interleaving", "value_flow", "lock_analysis"]
KERNELS = ("numpy", "python", "none")


def _fixpoint(solver):
    """The three comparable faces of a solved fixpoint, as raw masks
    over the shared interning universe."""
    return ({k: v.mask for k, v in solver.pts_top.items()},
            {k: v.mask for k, v in solver.mem.items()},
            store_update_classes(solver))


def _assert_engines_agree(source: str, config: FSAMConfig) -> None:
    result = FSAM(compile_source(source), config).run()
    new = result.solver
    assert isinstance(new, SparseSolver)
    ref = ReferenceSolver(result.module, result.dug, result.builder,
                          result.andersen, config=config)
    ref.solve()
    # Interned sets over one shared universe: masks are directly
    # comparable ints, and neither engine stores empty entries.
    assert {k: v.mask for k, v in new.pts_top.items()} == \
        {k: v.mask for k, v in ref.pts_top.items()}
    assert {k: v.mask for k, v in new.mem.items()} == \
        {k: v.mask for k, v in ref.mem.items()}
    assert store_update_classes(new) == store_update_classes(ref)


class TestEnginesAgreeOnWorkloads:
    @pytest.mark.parametrize("name", workload_names())
    def test_default_config(self, name):
        _assert_engines_agree(get_workload(name).source(1), FSAMConfig())

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("phase", ABLATIONS)
    def test_ablations(self, name, phase):
        _assert_engines_agree(get_workload(name).source(1),
                              FSAMConfig().ablated(phase))

    def test_interfering_store_demotion_config(self):
        # The non-default strong-update policy exercises the
        # classification cache's interference branch.
        _assert_engines_agree(
            get_workload("radiosity").source(1),
            FSAMConfig(strong_updates_at_interfering_stores=False))


class TestKernelBackendsBitIdentical:
    """Every kernel backend and the kernel-less scalar engine compute
    the reference fixpoint bit-for-bit, over one shared pipeline."""

    @pytest.mark.parametrize("name", workload_names())
    def test_four_way_pinning(self, name):
        source = get_workload(name).source(1)
        result = FSAM(compile_source(source), FSAMConfig()).run()
        ref = ReferenceSolver(result.module, result.dug, result.builder,
                              result.andersen, config=FSAMConfig())
        ref.solve()
        expected = _fixpoint(ref)
        for kernel in KERNELS:
            if kernel == "numpy" and not numpy_available():
                continue
            solver = SparseSolver(result.module, result.dug,
                                  result.builder, result.andersen,
                                  config=FSAMConfig(kernel=kernel))
            solver.solve()
            assert _fixpoint(solver) == expected, kernel
            if kernel == "none":
                assert solver.kernel_backend is None

    @pytest.mark.parametrize("name", workload_names())
    def test_tracer_forces_scalar_fallback(self, name):
        """Provenance tracing records every interior merge visit the
        kernel would skip, so a traced solve must take the scalar
        path — and still land on the identical fixpoint."""
        source = get_workload(name).source(1)
        result = FSAM(compile_source(source), FSAMConfig()).run()
        expected = _fixpoint(result.solver)
        traced = SparseSolver(result.module, result.dug, result.builder,
                              result.andersen, config=FSAMConfig(),
                              tracer=Tracer(name="diff"))
        traced.solve()
        assert traced._kern is None          # no batches ran
        assert traced.kernel_backend is None
        assert traced.kernel_fallbacks > 0
        assert _fixpoint(traced) == expected


class TestEngineSelection:
    def test_reference_engine_via_config(self):
        source = get_workload("word_count").source(1)
        result = FSAM(compile_source(source),
                      FSAMConfig(solver_engine="reference")).run()
        assert isinstance(result.solver, ReferenceSolver)
        assert result.points_to_entries() > 0

    def test_ablated_preserves_engine(self):
        config = FSAMConfig(solver_engine="reference")
        assert config.ablated("value_flow").solver_engine == "reference"


class TestEngineDoesLessWork:
    @pytest.mark.parametrize("name", workload_names())
    def test_fewer_iterations_and_revisits(self, name):
        source = get_workload(name).source(1)
        result = FSAM(compile_source(source), FSAMConfig()).run()
        new = result.solver
        ref = ReferenceSolver(result.module, result.dug, result.builder,
                              result.andersen, config=FSAMConfig())
        ref.solve()
        assert new.iterations < ref.iterations
        new_revisits = new.iterations - len(new._visited)
        ref_revisits = ref.iterations - len(ref._visited)
        assert new_revisits < ref_revisits
        # Sparse seeding: only fact-producing nodes enter the initial
        # worklist, vs every node in the reference engine.
        assert new.seeded_nodes < ref.seeded_nodes
        assert new.scc_count > 0
        assert new.delta_propagations > 0
