"""Unit tests for the vectorized delta-propagation kernel.

The differential suite pins whole-solve bit-identity; these tests pin
the kernel's pieces in isolation — backend selection (including the
no-numpy gate and the adaptive ``auto`` demotion), the plan's
condensed-DAG invariants, and the inject/flush/materialize contract
on a hand-built plan where the expected sweeps are enumerable.
"""

import os
import subprocess
import sys
from array import array
from pathlib import Path

import pytest

import repro
import repro.fsam.kernel as kernel_mod
import repro.fsam.solver as solver_mod
from repro.frontend import compile_source
from repro.fsam.analysis import FSAM
from repro.fsam.config import FSAMConfig
from repro.fsam.kernel import (
    AUTO_NUMPY_MIN_REACH,
    NO_RANK,
    KernelPlan,
    NumpyKernel,
    PythonKernel,
    backend_name,
    make_kernel,
    numpy_available,
)
from repro.workloads import get_workload

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not importable")


def _solve(name, config):
    source = get_workload(name).source(1)
    return FSAM(compile_source(source), config).run().solver


class TestBackendName:
    def test_mapping(self):
        assert backend_name("none") is None
        assert backend_name("python") == "python"
        assert backend_name("auto") in ("numpy", "python")

    def test_unknown_value_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            backend_name("simd")

    def test_explicit_numpy_fails_loudly_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "_np", None)
        with pytest.raises(RuntimeError, match="not importable"):
            backend_name("numpy")
        assert backend_name("auto") == "python"

    @needs_numpy
    def test_explicit_numpy_with_numpy(self):
        assert backend_name("numpy") == "numpy"

    def test_repro_no_numpy_env_hides_numpy(self):
        """The env gate is evaluated at import: a fresh interpreter
        with REPRO_NO_NUMPY set must run the pure-Python fallback."""
        code = ("from repro.fsam.kernel import backend_name, "
                "numpy_available; "
                "assert not numpy_available(); "
                "assert backend_name('auto') == 'python'")
        env = dict(os.environ, REPRO_NO_NUMPY="1", PYTHONPATH=SRC_DIR)
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestAutoBackendSelection:
    @needs_numpy
    def test_auto_demotes_thin_plans(self, monkeypatch):
        monkeypatch.setattr(solver_mod, "AUTO_NUMPY_MIN_REACH", 1 << 30)
        solver = _solve("word_count", FSAMConfig(kernel="auto"))
        assert solver.kernel_backend == "python"

    @needs_numpy
    def test_auto_keeps_numpy_on_wide_plans(self, monkeypatch):
        monkeypatch.setattr(solver_mod, "AUTO_NUMPY_MIN_REACH", 0)
        solver = _solve("word_count", FSAMConfig(kernel="auto"))
        assert solver.kernel_backend == "numpy"

    @needs_numpy
    def test_explicit_backend_never_demoted(self):
        solver = _solve("word_count", FSAMConfig(kernel="numpy"))
        assert solver.kernel_backend == "numpy"

    def test_threshold_is_positive(self):
        assert AUTO_NUMPY_MIN_REACH > 1

    def test_make_kernel_unknown_backend(self):
        with pytest.raises(ValueError):
            make_kernel("simd", KernelPlan(), 64)


class TestBuiltPlan:
    def test_condensed_dag_invariants(self):
        solver = _solve("radiosity", FSAMConfig(kernel="python"))
        plan = solver._plan
        assert plan.n_rows > 0
        assert plan.n_boundary > 0
        assert len(plan.scc_succs) == plan.n_sccs == len(plan.scc_preds)
        for s, succs in enumerate(plan.scc_succs):
            for t in succs:
                # SCC ids are topological ranks: edges ascend, and the
                # pred table is the exact inverse of the succ table.
                assert t > s
                assert s in plan.scc_preds[t]
        assert plan.max_reach == max(
            m.bit_count() for m in plan._reach_bits)
        assert plan.max_reach >= 1
        for uid, bid in plan.brow_of_uid.items():
            assert plan.rows[plan.boundary_rows[bid]].uid == uid
        # A boundary row's own SCC reaches it, and can first matter no
        # later than its earliest reader.
        for bid, row in enumerate(plan.boundary_rows):
            scc = plan.scc_of_row[row]
            assert bid in plan.reach(scc)
            assert plan.first_rank[scc] < NO_RANK


def _chain_plan():
    """Three single-row SCCs in a chain, every row a boundary row:
    injections at SCC 0 sweep three rows (the vectorized path),
    injections at SCC 2 sweep one (the tiny-reach path)."""
    plan = KernelPlan()
    plan.rows = ["r0", "r1", "r2"]
    plan.scc_of_row = [0, 1, 2]
    plan.scc_of_uid = {}
    plan.n_sccs = 3
    plan.scc_preds = [(), (0,), (1,)]
    plan.scc_succs = [(1,), (2,), ()]
    plan.boundary_rows = array("l", [0, 1, 2])
    plan.boundary_edges = [[], [], []]
    plan.brow_of_uid = {}
    plan.first_rank = [3, 5, 7]
    plan.scc_members = [["r0"], ["r1"], ["r2"]]
    plan._reach_bits = [0b111, 0b110, 0b100]
    plan.max_reach = 3
    return plan


def _backends():
    yield PythonKernel(_chain_plan())
    if numpy_available():
        yield NumpyKernel(_chain_plan(), universe_bits=8)


class TestInjectFlushMaterialize:
    def test_flush_delivers_new_bits_downstream(self):
        for kern in _backends():
            delivered = []
            kern.inject(0, 0b101)
            assert kern.has_pending
            assert kern.pending_min_rank == 3
            kern.flush(lambda b, new: delivered.append((b, new)))
            assert sorted(delivered) == [(0, 0b101), (1, 0b101),
                                         (2, 0b101)], kern.name
            assert not kern.has_pending
            assert kern.pending_min_rank == NO_RANK
            assert kern.batches == 1
            assert kern.updates == 3

    def test_redundant_injection_delivers_nothing(self):
        for kern in _backends():
            kern.inject(0, 0b11)
            kern.flush(lambda b, new: None)
            delivered = []
            kern.inject(0, 0b11)
            kern.flush(lambda b, new: delivered.append((b, new)))
            assert delivered == [], kern.name
            assert kern.updates == 3

    def test_coalescing_and_partial_growth(self):
        for kern in _backends():
            kern.inject(2, 0b001)
            kern.inject(2, 0b010)      # coalesces with the first
            assert kern.injections == 2
            delivered = []
            kern.flush(lambda b, new: delivered.append((b, new)))
            assert delivered == [(2, 0b011)], kern.name
            # Upstream injection overlapping the delivered bits: only
            # row 2's complement and rows 0/1's full mask are new.
            delivered.clear()
            kern.inject(0, 0b111)
            kern.flush(lambda b, new: delivered.append((b, new)))
            assert sorted(delivered) == [(0, 0b111), (1, 0b111),
                                         (2, 0b100)], kern.name

    def test_boundary_mask_reads_exact_state(self):
        for kern in _backends():
            kern.inject(1, 0b1010)
            kern.flush(lambda b, new: None)
            assert kern.boundary_mask(0) == 0, kern.name
            assert kern.boundary_mask(1) == 0b1010
            assert kern.boundary_mask(2) == 0b1010

    def test_materialize_unions_along_the_dag(self):
        for kern in _backends():
            kern.inject(0, 0b001)
            kern.inject(2, 0b100)
            kern.flush(lambda b, new: None)
            got = {members[0]: mask for mask, members in kern.materialize()}
            assert got == {"r0": 0b001, "r1": 0b001,
                           "r2": 0b101}, kern.name

    def test_materialize_skips_untouched_sccs(self):
        for kern in _backends():
            kern.inject(2, 0b1)
            kern.flush(lambda b, new: None)
            got = list(kern.materialize())
            assert got == [(0b1, ["r2"])], kern.name

    @needs_numpy
    def test_numpy_widens_past_initial_words(self):
        """Field derivation can register objects mid-solve: a mask
        wider than the initial matrix must widen it, keep the int
        mirror in sync, and deliver exact new bits."""
        kern = NumpyKernel(_chain_plan(), universe_bits=8)
        wide = (1 << 200) | 0b1
        delivered = []
        kern.inject(0, wide)
        kern.flush(lambda b, new: delivered.append((b, new)))
        assert sorted(delivered) == [(0, wide), (1, wide), (2, wide)]
        assert kern.boundary_mask(1) == wide
        # Matrix and mirror agree bit-for-bit after widening.
        row = int.from_bytes(kern._acc[1].tobytes(), "little")
        assert row == kern._acc_int[1] == wide
