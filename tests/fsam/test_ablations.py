"""Ablation semantics: turning a phase off must never lose soundness,
only precision and performance (paper Section 4.3)."""

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.ir import Load
from repro.workloads import get_workload

PROGRAMS = ["word_count", "radiosity", "mt_daapd"]


def loads_of(module):
    return [i for i in module.all_instructions() if isinstance(i, Load)]


def normalised(objs):
    """Names comparable across two compilations of the same source:
    abstract thread-id objects embed per-run instruction ids, so they
    are collapsed (they all denote 'some tid of this program')."""
    return {"tid" if o.name.startswith("tid.fork") else o.name for o in objs}


def run(src, config=None):
    module = compile_source(src)
    return module, FSAM(module, config).run()


@pytest.mark.parametrize("name", PROGRAMS)
@pytest.mark.parametrize("phase", ["interleaving", "value_flow", "lock_analysis"])
class TestAblationMonotonicity:
    def test_ablated_is_superset_at_loads(self, name, phase):
        src = get_workload(name).source(1)
        m1, base = run(src)
        m2, ablated = run(src, FSAMConfig().ablated(phase))
        for l1, l2 in zip(loads_of(m1), loads_of(m2)):
            precise = normalised(base.pts(l1.dst))
            coarse = normalised(ablated.pts(l2.dst))
            assert precise <= coarse, (
                f"{name}/{phase}: ablation lost facts at {l1!r}: "
                f"{sorted(precise - coarse)}")


class TestAblationEdgeCounts:
    def test_no_value_flow_inflates_edges(self):
        src = get_workload("radiosity").source(1)
        _m1, base = run(src)
        _m2, novf = run(src, FSAMConfig(value_flow=False))
        assert len(novf.dug.thread_edges) > len(base.dug.thread_edges)

    def test_no_lock_inflates_edges_on_lock_heavy_code(self):
        src = get_workload("radiosity").source(1)
        _m1, base = run(src)
        _m2, nolock = run(src, FSAMConfig(lock_analysis=False))
        assert len(nolock.dug.thread_edges) >= len(base.dug.thread_edges)

    def test_no_interleaving_inflates_edges_on_master_slave(self):
        src = get_workload("mt_daapd").source(1)
        _m1, base = run(src)
        _m2, coarse = run(src, FSAMConfig(interleaving=False))
        assert len(coarse.dug.thread_edges) >= len(base.dug.thread_edges)


class TestNoValueFlowPrecisionLoss:
    def test_figure1d_pollution(self):
        # With AS(*p,*q) disregarded, the non-aliased store *x = r
        # pollutes pt(c) — the exact Section 1.1 example.
        src = """
int x_; int y; int z; int a_;
int *p; int *q; int *r;
int **x;
int *c;
void foo(void *arg) {
    *p = q;
    *x = r;
    return null;
}
int main() {
    thread_t t;
    p = &x_; q = &y; r = &z; x = &a_;
    fork(&t, foo, null);
    c = *p;
    return 0;
}
"""
        _m, base = run(src)
        assert base.deref_pts_names_at_line(15) == {"y"}
        _m2, novf = run(src, FSAMConfig(value_flow=False))
        got = novf.deref_pts_names_at_line(15)
        assert "z" in got, "the spurious edge should pollute pt(c)"
