"""FSAMResult query-API tests."""

from repro.fsam import analyze_source
from repro.ir.values import Function


SRC = """
int x; int y;
int *p;
int *q;
int main() {
    p = &x;
    q = p;
    return 0;
}
"""


class TestResultQueries:
    def test_pts_names(self):
        r = analyze_source(SRC)
        assert r.global_pts_names("p") == {"x"}
        assert r.global_pts_names("q") == {"x"}

    def test_pts_of_function_value(self):
        r = analyze_source("""
        void f() { }
        int *fp;
        int main() { fp = f; return 0; }
        """)
        fn = r.module.functions["f"]
        assert r.pts(fn) == {fn.mem_object}
        assert r.pts_names(fn) == {"fn:f"}

    def test_pts_of_constant_empty(self):
        from repro.ir.values import Constant
        from repro.ir.types import INT
        r = analyze_source(SRC)
        assert r.pts(Constant(0, INT)) == set()

    def test_load_pts_at_line_vs_deref(self):
        r = analyze_source(SRC)
        # line 7 'q = p;' loads global p: the plain query sees it, the
        # deref-only query does not (it is an implicit variable read).
        assert "x" in r.load_pts_names_at_line(7)
        assert r.deref_pts_names_at_line(7) == set()

    def test_store_out_at_line(self):
        src = """
int x; int A;
int *p;
int main() {
    p = &A;
    *p = &x;
    return 0;
}
"""
        r = analyze_source(src)
        A = r.module.globals["A"]
        out = r.store_out_at_line(6, A)
        assert {o.name for o in out} == {"x"}

    def test_missing_line_queries_empty(self):
        r = analyze_source(SRC)
        assert r.load_pts_at_line(999) == set()
        assert r.deref_pts_at_line(999) == set()

    def test_stats_keys_complete(self):
        r = analyze_source(SRC)
        stats = r.stats()
        assert {"phase_times", "points_to_entries", "dug_nodes",
                "dug_mem_edges", "thread_aware_edges", "threads",
                "solver_iterations"} <= set(stats)
        assert stats["threads"] == 1
        assert stats["thread_aware_edges"] == 0

    def test_vf_stats_surface(self):
        r = analyze_source(SRC)
        assert r.vf_stats is not None
        assert r.vf_stats.edges_added == 0
