"""End-to-end validation against every worked example in the paper.

Each test encodes a numbered example (Figures 1, 3, 6, 9, 11) as
MiniC and checks the points-to result the paper states.
"""

from repro.fsam import FSAMConfig, analyze_source


class TestFigure1:
    """The five motivating examples (paper Figure 1)."""

    def test_a_interleaving(self):
        # c = *p may read the store from the main thread or thread t.
        r = analyze_source("""
int x; int y; int z;
int *p; int *q; int *r;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    p = &x; q = &y; r = &z;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(13) == {"y", "z"}

    def test_b_soundness_outliving_thread(self):
        # t2 outlives t1 (joined): *p = r in main interleaves with t2.
        r = analyze_source("""
int x; int y; int z;
int *p; int *q; int *r;
int *c;
void bar(void *arg) {
    *p = q;
    c = *p;
}
void foo(void *arg) {
    thread_t t2;
    fork(&t2, bar, null);
    return null;
}
int main() {
    thread_t t1;
    p = &x; q = &y; r = &z;
    fork(&t1, foo, null);
    join(t1);
    *p = r;
    c = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(7) == {"y", "z"}

    def test_c_precision_strong_update_across_join(self):
        # Serial order *p=r; *p=q; c=*p: the strong update kills z.
        r = analyze_source("""
int x; int y; int z;
int *p; int *q; int *r;
int *c;
void foo(void *arg) {
    *p = q;
    return null;
}
int main() {
    thread_t t;
    p = &x; q = &y; r = &z;
    *p = r;
    fork(&t, foo, null);
    join(t);
    c = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(15) == {"y"}

    def test_d_sparsity_non_aliases(self):
        # *x = r writes a different object: pt(c) = {y} only.
        r = analyze_source("""
int x_; int y; int z; int a_;
int *p; int *q; int *r;
int **x;
int *c;
void foo(void *arg) {
    *p = q;
    *x = r;
    return null;
}
int main() {
    thread_t t;
    p = &x_; q = &y; r = &z; x = &a_;
    fork(&t, foo, null);
    c = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(15) == {"y"}

    FIG1E = """
int x; int y; int z; int v; int w_;
int *p; int *q; int *r; int *u;
int *c;
mutex_t l1;
void foo(void *arg) {
    lock(&l1);
    *p = u;
    *p = q;
    unlock(&l1);
}
int main() {
    thread_t t;
    p = &x; q = &y; r = &z; u = &v;
    *p = r;
    fork(&t, foo, null);
    lock(&l1);
    c = *p;
    unlock(&l1);
    return 0;
}
"""

    def test_e_lock_spans_filter_v(self):
        # *p = u is overwritten before the lock is released: v cannot
        # reach the read in the other critical section.
        r = analyze_source(self.FIG1E)
        assert r.deref_pts_names_at_line(18) == {"y", "z"}

    def test_e_without_lock_analysis_keeps_v(self):
        r = analyze_source(self.FIG1E, FSAMConfig(lock_analysis=False))
        assert r.deref_pts_names_at_line(18) == {"v", "y", "z"}


class TestFigure3PartialSSA:
    def test_complex_statement_decomposition(self):
        # *p = *q lowers through a top-level temporary (t2 = *q; *p = t2)
        # and the analysis still resolves the flow.
        r = analyze_source("""
int b_t; int A; int C;
int *p; int *q;
int *out;
int main() {
    p = &A; q = &C;
    *q = &b_t;
    *p = *q;
    out = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(9) == {"b_t"}


class TestFigure11SymmetricLoops:
    def test_post_join_master_isolated_from_slaves(self):
        # After the join loop, the master's read sees only the final
        # state; the slave store does not interleave with it.
        r = analyze_source("""
int g; int h;
int *shared;
thread_t tid[8];
void *wordcount_map(void *out) {
    shared = &g;
    return null;
}
int main() {
    int i;
    shared = &h;
    for (i = 0; i < 8; i = i + 1) {
        fork(&tid[i], wordcount_map, null);
    }
    for (i = 0; i < 8; i = i + 1) {
        join(tid[i]);
    }
    return 0;
}
""")
        model = r.thread_model
        assert model.symmetric_pairs, "Figure 11 pattern must be recognised"
        slave = next(t for t in model.threads if not t.is_main)
        assert slave.multi_forked
        # The slaves are certainly dead once the join loop exits.
        t0 = model.threads[0]
        assert slave.id in model.fully_joined[t0.id]
