"""Sparse solver unit tests (paper Figure 10 rules)."""

from repro.fsam import FSAMConfig, analyze_source


class TestTopLevelRules:
    def test_p_addr(self):
        r = analyze_source("int x; int *p; int main() { p = &x; return 0; }")
        assert r.global_pts_names("p") == {"x"}

    def test_p_copy_and_phi(self):
        r = analyze_source("""
int x; int y;
int *p;
int main() {
    int *a; int *b;
    if (x < 1) { a = &x; } else { a = &y; }
    b = a;
    p = b;
    return 0;
}
""")
        assert r.global_pts_names("p") == {"x", "y"}

    def test_p_load_flow_sensitive(self):
        # Flow-sensitivity: the load between the two stores sees only
        # the first store's value.
        r = analyze_source("""
int x; int y; int A;
int *p; int *mid; int *last;
int main() {
    p = &A;
    *p = &x;
    mid = *p;
    *p = &y;
    last = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(7) == {"x"}
        assert r.deref_pts_names_at_line(9) == {"y"}

    def test_p_store_weak_on_non_singleton(self):
        # Heap objects never take strong updates.
        r = analyze_source("""
int x; int y;
int **h;
int *out;
int main() {
    h = malloc(sizeof(int));
    *h = &x;
    *h = &y;
    out = *h;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(9) == {"x", "y"}

    def test_p_store_weak_on_multi_target(self):
        r = analyze_source("""
int x; int y; int A; int B;
int *p; int *out;
int main() {
    if (x < 1) { p = &A; } else { p = &B; }
    *p = &x;
    *p = &y;
    out = *p;
    return 0;
}
""")
        # p may point to A or B: the second store cannot kill the first.
        assert r.deref_pts_names_at_line(8) == {"x", "y"}

    def test_strong_update_on_singleton(self):
        r = analyze_source("""
int x; int y; int A;
int *p; int *out;
int main() {
    p = &A;
    *p = &x;
    *p = &y;
    out = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(8) == {"y"}

    def test_gep_field_flow(self):
        r = analyze_source("""
struct s { int *a; int *b; };
int x; int y;
struct s g;
int *out_a; int *out_b;
int main() {
    g.a = &x;
    g.b = &y;
    out_a = g.a;
    out_b = g.b;
    return 0;
}
""")
        assert r.global_pts_names("out_a") == {"x"}
        assert r.global_pts_names("out_b") == {"y"}


class TestInterprocedural:
    def test_param_and_return_flow(self):
        r = analyze_source("""
int x;
int *identity(int *p) { return p; }
int *out;
int main() { out = identity(&x); return 0; }
""")
        assert r.global_pts_names("out") == {"x"}

    def test_callee_side_effects_visible(self):
        r = analyze_source("""
int x; int A;
int *p; int *out;
void write_it() { *p = &x; }
int main() {
    p = &A;
    write_it();
    out = *p;
    return 0;
}
""")
        assert r.global_pts_names("out") == {"x"}

    def test_callee_strong_update_kills(self):
        r = analyze_source("""
int x; int y; int A;
int *p; int *out;
void overwrite() { *p = &y; }
int main() {
    p = &A;
    *p = &x;
    overwrite();
    out = *p;
    return 0;
}
""")
        assert r.global_pts_names("out") == {"y"}

    def test_conditionally_writing_callee_merges(self):
        r = analyze_source("""
int x; int y; int A; int cond;
int *p; int *out;
void maybe_overwrite() { if (cond) { *p = &y; } }
int main() {
    p = &A;
    *p = &x;
    maybe_overwrite();
    out = *p;
    return 0;
}
""")
        assert r.global_pts_names("out") == {"x", "y"}

    def test_two_callers_merge_at_formal_in(self):
        r = analyze_source("""
int x; int y;
int *keep;
void sink(int *p) { keep = p; }
int main() { sink(&x); sink(&y); return 0; }
""")
        assert r.global_pts_names("keep") == {"x", "y"}

    def test_recursive_list_build(self):
        r = analyze_source("""
struct n { struct n *next; };
struct n *head;
struct n *mk(int d) {
    struct n *node;
    node = malloc(struct n);
    if (d > 0) { node->next = mk(d - 1); }
    return node;
}
int main() { head = mk(3); return 0; }
""")
        assert r.global_pts_names("head")  # the malloc object

    def test_null_store_kills_nothing_downstream(self):
        r = analyze_source("""
int x;
int *p; int *out;
int main() {
    int *q;
    q = null;
    *q = &x;
    p = &x;
    out = p;
    return 0;
}
""")
        assert r.global_pts_names("out") == {"x"}


class TestStats:
    def test_points_to_entries_positive(self):
        r = analyze_source("int x; int *p; int main() { p = &x; return 0; }")
        assert r.points_to_entries() > 0
        stats = r.stats()
        assert stats["dug_nodes"] > 0
        assert stats["threads"] == 1

    def test_phase_times_recorded(self):
        r = analyze_source("int main() { return 0; }")
        assert set(r.phase_times) >= {"pre_analysis", "thread_oblivious_dug",
                                      "interleaving", "sparse_solve"}
        assert r.total_time() > 0


class TestConfig:
    def test_ablated_copies(self):
        cfg = FSAMConfig()
        no_vf = cfg.ablated("value_flow")
        assert not no_vf.value_flow
        assert no_vf.interleaving and no_vf.lock_analysis
        assert cfg.value_flow  # original untouched

    def test_ablated_unknown_phase(self):
        import pytest
        with pytest.raises(ValueError):
            FSAMConfig().ablated("nonsense")

    def test_timeout_raises(self):
        import pytest
        from repro.fsam.config import AnalysisTimeout, Deadline
        d = Deadline(0.0)
        import time
        time.sleep(0.01)
        with pytest.raises(AnalysisTimeout):
            d.check()

    def test_no_deadline_never_raises(self):
        from repro.fsam.config import Deadline
        Deadline(None).check()
