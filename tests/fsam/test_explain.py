"""Points-to provenance (explain) tests."""

from repro.fsam import analyze_source
from repro.fsam.explain import explain_at_line, explain_load
from repro.ir import Load

FIG1A = """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
"""


class TestExplain:
    def test_local_value_provenance(self):
        result = analyze_source(FIG1A)
        provs = explain_at_line(result, 14, "z")
        assert provs
        text = provs[0].describe()
        assert "read z" in text
        # The chain must end at the main-thread store *p = r.
        assert any(step.node.instr.line == 13
                   for step in provs[0].steps
                   if hasattr(step.node, "instr") and step.node.instr.line)

    def test_thread_aware_provenance(self):
        result = analyze_source(FIG1A)
        provs = explain_at_line(result, 14, "y")
        assert provs
        # y arrives from the parallel thread: the chain must traverse
        # a thread-aware edge.
        assert any(step.thread_aware for step in provs[0].steps)

    def test_unexplainable_fact_none(self):
        result = analyze_source(FIG1A)
        loads = [i for i in result.module.all_instructions()
                 if isinstance(i, Load) and i.line == 14]
        deref = loads[-1]
        ghost = result.module.globals["x"]
        # x is the container, never a value of the load.
        assert explain_load(result, deref, ghost) is None

    def test_interprocedural_chain(self):
        result = analyze_source("""
int x; int A;
int *p = &A;
int *out;
void write_it() { *p = &x; }
int main() {
    write_it();
    out = *p;
    return 0;
}
""")
        provs = explain_at_line(result, 8, "x")
        assert provs
        described = provs[0].describe()
        assert "x" in described
        # The chain crosses the callee boundary (formal-out / chi nodes).
        kinds = {type(step.node).__name__ for step in provs[0].steps}
        assert kinds & {"FormalOutNode", "CallChiNode", "StmtNode"}
