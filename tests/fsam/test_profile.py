"""End-to-end observability: one FSAM run -> one profile document."""

import tracemalloc

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.obs import NULL_OBS, Observer, validate_profile

# A workload exercising every pipeline stage: a fork, an MHP aliased
# store/load pair (value flow), and lock spans.
SRC = """
int x_t; int A; int B;
int *p; int *q;
mutex_t m;
void *writer(void *arg) {
    lock(&m);
    *p = &x_t;
    unlock(&m);
    return null;
}
int main() {
    thread_t t;
    p = &A; q = &B;
    fork(&t, writer, null);
    q = *p;
    *q = &x_t;
    join(t);
    return 0;
}
"""

PIPELINE_PHASES = ["pre_analysis", "icfg", "thread_oblivious_dug",
                   "thread_model", "interleaving", "lock_analysis",
                   "value_flow", "sparse_solve"]


def run_profiled():
    module = compile_source(SRC)
    result = FSAM(module).run()
    return result


class TestProfileDocument:
    def test_single_run_produces_valid_document(self):
        doc = run_profiled().profile()
        validate_profile(doc)

    def test_every_pipeline_phase_timed(self):
        doc = run_profiled().profile()
        names = [p["name"] for p in doc["phases"]]
        assert names == PIPELINE_PHASES
        assert all(p["seconds"] >= 0 for p in doc["phases"])

    def test_counters_from_at_least_five_stages(self):
        doc = run_profiled().profile()
        counters = doc["counters"]
        stages_hit = {name.split(".")[0]
                      for name, value in counters.items() if value > 0}
        assert {"andersen", "memssa", "mhp", "valueflow",
                "solver"} <= stages_hit

    def test_per_phase_peak_memory_with_tracemalloc(self):
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        try:
            doc = run_profiled().profile()
        finally:
            if not was_tracing:
                tracemalloc.stop()
        assert any(p["peak_traced_kb"] > 0 for p in doc["phases"])
        assert doc["peak_traced_kb"] >= max(
            p["peak_traced_kb"] for p in doc["phases"])

    def test_profile_json_round_trips(self):
        import json
        doc = json.loads(run_profiled().profile_json())
        validate_profile(doc)

    def test_phase_times_match_observer(self):
        result = run_profiled()
        assert set(result.phase_times) == set(PIPELINE_PHASES)
        for name, seconds in result.obs.phase_seconds().items():
            if "/" not in name:
                # timed() wraps the obs scope, so its reading is the
                # outer (slightly larger) one.
                assert result.phase_times[name] >= seconds


class TestValueFlowShim:
    def test_stats_object_matches_counters(self):
        result = run_profiled()
        counters = result.obs.counters
        assert result.vf_stats.candidate_pairs == counters["valueflow.candidate_pairs"]
        assert result.vf_stats.mhp_pairs == counters["valueflow.mhp_pairs"]
        assert result.vf_stats.lock_filtered == counters["valueflow.lock_filtered"]
        assert result.vf_stats.edges_added == counters["valueflow.edges_added"]
        assert result.vf_stats.edges_added >= 1


class TestProfileToggle:
    def test_profile_off_uses_null_observer(self):
        module = compile_source(SRC)
        fsam = FSAM(module, FSAMConfig(profile=False))
        assert fsam.obs is NULL_OBS
        result = fsam.run()
        assert result.obs is NULL_OBS
        assert result.profile()["phases"] == []
        # phase_times stays populated regardless (harness compat).
        assert set(result.phase_times) == set(PIPELINE_PHASES)

    def test_explicit_observer_wins(self):
        module = compile_source(SRC)
        obs = Observer(name="mine")
        result = FSAM(module, FSAMConfig(profile=False), obs=obs).run()
        assert result.obs is obs
        assert obs.counter("solver.iterations") > 0

    def test_ablated_preserves_profile_flag(self):
        config = FSAMConfig(profile=False)
        assert config.ablated("value_flow").profile is False

    def test_stats_includes_counters_and_gauges(self):
        stats = run_profiled().stats()
        assert stats["counters"]["solver.iterations"] > 0
        assert stats["gauges"]["solver.dug_nodes"] > 0

    def test_nonsparse_baseline_flushes_counters(self):
        from repro.baseline import NonSparseAnalysis
        module = compile_source(SRC)
        obs = Observer(name="base")
        NonSparseAnalysis(module, obs=obs).run()
        assert obs.counter("nonsparse.iterations") > 0
        assert obs.counter("nonsparse.strong_updates") \
            + obs.counter("nonsparse.weak_updates") > 0
        assert [p["name"] for p in obs.to_dict()["phases"]] == \
            ["pre_analysis", "icfg", "pcg", "nonsparse_solve"]


class TestValueFlowSingleSource:
    def test_shim_and_counters_share_one_source(self):
        # The shim attributes and the valueflow.* counters must both
        # be assigned from the same local tallies: pin the idiom by
        # checking every obs.count("valueflow.X", ...) call passes the
        # shim's own attribute, so the two can never drift.
        import inspect
        import re
        from repro.mt import valueflow
        source = inspect.getsource(valueflow.add_thread_aware_edges)
        calls = re.findall(r'obs\.count\("valueflow\.(\w+)",\s*([\w.]+)\)',
                           source)
        assert sorted(name for name, _ in calls) == \
            ["candidate_pairs", "edges_added", "lock_filtered",
             "mhp_cache_hits", "mhp_pairs"]
        for name, value_expr in calls:
            assert value_expr == f"stats.{name}"


class TestTraceToggle:
    def test_trace_off_uses_null_tracer(self):
        from repro.trace import NULL_TRACER
        module = compile_source(SRC)
        fsam = FSAM(module, FSAMConfig())
        assert fsam.tracer is NULL_TRACER
        result = fsam.run()
        assert result.tracer is NULL_TRACER
        assert result.provenance is None

    def test_trace_on_builds_tracer(self):
        module = compile_source(SRC)
        result = FSAM(module, FSAMConfig(trace=True)).run()
        assert result.tracer.enabled
        assert result.tracer.emitted > 0
        assert result.provenance

    def test_explicit_tracer_wins(self):
        from repro.trace import Tracer
        module = compile_source(SRC)
        tracer = Tracer(name="mine")
        result = FSAM(module, FSAMConfig(trace=False), tracer=tracer).run()
        assert result.tracer is tracer
        assert tracer.emitted > 0

    def test_ablated_preserves_trace_flag(self):
        config = FSAMConfig(trace=True)
        assert config.ablated("interleaving").trace is True
