"""[P-STORE] edge-case tests: the empty-pointer and pass-through
paths of ``_eval_store``, and o-edge propagation between distinct
``gep`` instructions deriving the same field object."""

from repro.fsam import analyze_source
from repro.ir.instructions import Gep, Store


def store_at_line(result, line):
    return next(i for i in result.module.all_instructions()
                if isinstance(i, Store) and i.line == line)


class TestEmptyPointerStore:
    SRC = """
int y; int A;
int *p; int *out;
int main() {
    *p = &y;
    p = &A;
    out = *p;
    return 0;
}
"""

    def test_nothing_propagates(self):
        # At the store, p is flow-sensitively empty (it is assigned
        # only afterwards): kill(s, p) = A, so the store defines no
        # o-state at all and the later load through p sees nothing.
        r = analyze_source(self.SRC)
        assert r.deref_pts_names_at_line(7) == set()

    def test_path_is_exercised(self):
        # Guard against vacuity: Andersen (flow-insensitive) must give
        # the store a chi on A while the sparse solver sees an empty
        # pointer — otherwise the store body is never entered at all.
        r = analyze_source(self.SRC)
        store = store_at_line(r, 5)
        A = r.module.globals["A"]
        assert A in r.builder.chis.get(store.id, set())
        assert len(r.solver.value_pts(store.ptr)) == 0


class TestPassThroughStore:
    SRC = """
int x; int y; int A; int B;
int *p; int *q; int *out;
int main() {
    q = &A;
    *q = &x;
    p = &B;
    *p = &y;
    out = *q;
    p = &A;
    return 0;
}
"""

    def test_untouched_object_flows_through(self):
        # The store at line 8 has chi functions on both A and B
        # (Andersen sees the later p = &A), but flow-sensitively only
        # targets B: A's state {x} must pass through unchanged — not
        # be dropped, and not absorb y.
        r = analyze_source(self.SRC)
        assert r.deref_pts_names_at_line(9) == {"x"}

    def test_path_is_exercised(self):
        r = analyze_source(self.SRC)
        store = store_at_line(r, 8)
        A = r.module.globals["A"]
        B = r.module.globals["B"]
        assert A in r.builder.chis.get(store.id, set())
        assert set(r.solver.value_pts(store.ptr)) == {B}


class TestGepFieldPropagation:
    SRC = """
struct pair { int *fst; int *snd; };
int x;
struct pair g;
int *out;
int main() {
    struct pair *p;
    struct pair *q;
    p = &g;
    q = &g;
    p->fst = &x;
    out = q->fst;
    return 0;
}
"""

    def test_store_reaches_load_via_shared_field_object(self):
        # Two distinct gep instructions derive g's fst field; the
        # o-edge between the store's chi and the load's mu matches by
        # object id, so the write through p is visible through q.
        r = analyze_source(self.SRC)
        assert r.global_pts_names("out") == {"x"}

    def test_both_geps_resolve_to_one_object_id(self):
        r = analyze_source(self.SRC)
        geps = [i for i in r.module.all_instructions() if isinstance(i, Gep)]
        assert len(geps) >= 2
        ids = {obj.id for gep in geps for obj in r.pts(gep.dst)}
        assert len(ids) == 1
