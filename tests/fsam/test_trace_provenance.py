"""Recorded derivation provenance (FSAMConfig(trace=True))."""

import pytest

from repro.fsam import FSAM, FSAMConfig
from repro.fsam.explain import derivation_chain, explain_fact, render_derivation
from repro.frontend import compile_source
from repro.trace import validate_trace_jsonl

FIG1A = """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
"""

LOCKED = """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
mutex_t m;
void foo(void *arg) {
    lock(&m);
    *p = q;
    *p = r;
    unlock(&m);
}
int main() {
    thread_t t;
    fork(&t, foo, null);
    lock(&m);
    *p = r;
    c = *p;
    unlock(&m);
    return 0;
}
"""


def run_traced(source):
    return FSAM(compile_source(source), FSAMConfig(trace=True)).run()


class TestRecording:
    def test_trace_off_means_no_provenance(self):
        result = FSAM(compile_source(FIG1A), FSAMConfig()).run()
        assert result.provenance is None
        with pytest.raises(ValueError, match="trace=True"):
            explain_fact(result, "c")

    def test_trace_on_records_facts(self):
        result = run_traced(FIG1A)
        assert result.provenance
        assert all(key[0] in ("top", "mem") for key in result.provenance)

    def test_every_chain_terminates(self):
        result = run_traced(FIG1A)
        for key in result.provenance:
            chain = derivation_chain(result, key)
            assert chain
            # The walk either bottoms out at a root or at a fact whose
            # derivation links a value outside the recorded universe
            # (e.g. a seeded state); it never cycles.
            assert len(chain) < 128

    def test_first_introduction_is_stable(self):
        # Re-running the same program records the same derivations
        # (first-introduction semantics are a function of the
        # deterministic solve order, not of dict iteration). Node uids
        # come from a process-global counter, so compare the
        # structural shape rather than raw keys.
        def shape(result):
            from collections import Counter
            return Counter((key[0], d.rule, d.thread_edge)
                           for key, d in result.provenance.items())

        assert shape(run_traced(FIG1A)) == shape(run_traced(FIG1A))


class TestFigure1Story:
    def test_sequential_fact_roots_at_addrof(self):
        result = run_traced(FIG1A)
        chains = explain_fact(result, "c", obj_name="z")
        assert len(chains) == 1
        text = chains[0]
        assert "P-ADDR" in text and "root" in text
        # Sequential story: z flows via the main-thread store, no
        # thread edge involved.
        assert "THREAD-VF" not in text

    def test_thread_fact_cites_edge_and_verdict(self):
        # The acceptance story: y reaches `c = *p` only through the
        # other thread's `*p = q`; the chain must include the
        # thread-aware store->load edge, the MHP/lock verdict that
        # admitted it, and still end at an AddrOf root.
        result = run_traced(FIG1A)
        chains = explain_fact(result, "c", obj_name="y")
        assert len(chains) == 1
        text = chains[0]
        assert "THREAD-VF" in text
        assert "MHP" in text
        assert "P-ADDR" in text and "root" in text

    def test_thread_edge_derivation_links_to_verdict(self):
        result = run_traced(FIG1A)
        edges = [d for d in result.provenance.values() if d.thread_edge]
        assert edges
        for derivation in edges:
            verdict = result.dug.thread_edge_verdict(*derivation.edge)
            assert verdict is not None
            assert "mhp" in verdict

    def test_unknown_object_yields_nothing(self):
        result = run_traced(FIG1A)
        assert explain_fact(result, "c", obj_name="x") == []


class TestEvents:
    def test_trace_document_validates(self):
        result = run_traced(FIG1A)
        assert validate_trace_jsonl(result.trace_jsonl()) > 0

    def test_vf_pair_verdicts_cover_counters(self):
        result = run_traced(FIG1A)
        pairs = [e for e in result.tracer.events if e["ev"] == "vf.pair"]
        stats = result.vf_stats
        assert len(pairs) == stats.candidate_pairs
        verdicts = [e["verdict"] for e in pairs]
        assert verdicts.count("edge-added") == stats.edges_added
        assert verdicts.count("lock-filtered") == stats.lock_filtered
        assert verdicts.count("mhp-refuted") == \
            stats.candidate_pairs - stats.mhp_pairs

    def test_lock_filtered_names_the_witness(self):
        result = run_traced(LOCKED)
        assert result.vf_stats.lock_filtered > 0
        filtered = [e for e in result.tracer.events
                    if e["ev"] == "vf.pair" and e["verdict"] == "lock-filtered"]
        assert filtered
        assert all(e["lock"] == "m" for e in filtered)

    def test_mhp_and_lock_events_present(self):
        kinds = run_traced(LOCKED).tracer.kinds()
        assert kinds.get("mhp.seed", 0) >= 2  # main + foo
        assert kinds.get("mhp.spawn", 0) >= 1
        assert kinds.get("lock.span", 0) >= 2

    def test_provenance_gauge_flushed(self):
        result = run_traced(FIG1A)
        # flush_obs only reports when an enabled observer is attached;
        # rerun with profiling too.
        result = FSAM(compile_source(FIG1A),
                      FSAMConfig(trace=True, profile=True)).run()
        gauge = result.obs.gauges.get("trace.provenance_facts")
        assert gauge == len(result.provenance)


class TestRendering:
    def test_render_derivation_for_every_fact(self):
        result = run_traced(FIG1A)
        for key in result.provenance:
            assert render_derivation(result, key)
