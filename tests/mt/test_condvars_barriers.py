"""Extension tests: condition variables and barriers.

The paper treats signal/wait and barriers soundly as no-ops
(Section 3.1). The extension here keeps that soundness but models
the mutex release inside pthread_cond_wait: a lock-release span ends
at a wait on its own mutex and a new span starts there.
"""

import pytest

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.fsam import analyze_source
from repro.interp import ExecutionLimit, Interpreter
from repro.ir import BarrierInit, BarrierWait, Signal, Store, Wait
from repro.memssa import build_dug
from repro.mt import InterleavingAnalysis, LockAnalysis, ThreadModel

PRODUCER_CONSUMER = """
mutex_t mu;
cond_t cv;
int ready;
int g; int *shared;
int *got;

void *producer(void *arg) {
    lock(&mu);
    shared = &g;
    ready = 1;
    signal(&cv);
    unlock(&mu);
    return null;
}

void *consumer(void *arg) {
    lock(&mu);
    while (ready == 0) {
        wait(&cv, &mu);
    }
    got = shared;
    unlock(&mu);
    return null;
}

int main() {
    thread_t p; thread_t c;
    fork(&p, producer, null);
    fork(&c, consumer, null);
    join(p);
    join(c);
    return 0;
}
"""


class TestFrontend:
    def test_wait_signal_lowered(self):
        m = compile_source(PRODUCER_CONSUMER)
        waits = [i for i in m.all_instructions() if isinstance(i, Wait)]
        signals = [i for i in m.all_instructions() if isinstance(i, Signal)]
        assert len(waits) == 1 and len(signals) == 1
        assert not signals[0].broadcast

    def test_broadcast_flag(self):
        m = compile_source("""
        cond_t cv;
        int main() { broadcast(&cv); return 0; }
        """)
        s = next(i for i in m.all_instructions() if isinstance(i, Signal))
        assert s.broadcast

    def test_pthread_spellings(self):
        m = compile_source("""
        mutex_t mu; cond_t cv; barrier_t b;
        int main() {
            pthread_barrier_init(&b, 0, 2);
            pthread_mutex_lock(&mu);
            pthread_cond_wait(&cv, &mu);
            pthread_cond_signal(&cv);
            pthread_mutex_unlock(&mu);
            pthread_barrier_wait(&b);
            return 0;
        }
        """)
        kinds = {type(i).__name__ for i in m.all_instructions()}
        assert {"Wait", "Signal", "BarrierInit", "BarrierWait"} <= kinds

    def test_barrier_init_count(self):
        m = compile_source("""
        barrier_t b;
        int main() { barrier_init(&b, 4); barrier_wait(&b); return 0; }
        """)
        init = next(i for i in m.all_instructions() if isinstance(i, BarrierInit))
        assert repr(init.count) == "4"


class TestLockSpansAtWait:
    def test_wait_splits_span(self):
        m = compile_source(PRODUCER_CONSUMER)
        a = run_andersen(m)
        dug, builder = build_dug(m, a)
        model = ThreadModel(m, a)
        locks = LockAnalysis(model, a, dug, builder)
        consumer = next(t for t in model.threads
                        if not t.is_main and t.routine.name == "consumer")
        consumer_spans = [sp for sp in locks.spans if sp.thread is consumer]
        # One span from the lock() (ending at the wait) and one seeded
        # at the wait itself (the re-acquisition).
        assert len(consumer_spans) == 2
        wait = next(i for i in m.all_instructions() if isinstance(i, Wait))
        lock_seeded = [sp for sp in consumer_spans
                       if sp.lock_sid in model.state_graphs[consumer.id].states_of_instr(wait)]
        assert len(lock_seeded) == 1

    def test_store_before_wait_not_visible_as_span_tail_after(self):
        # A store between lock() and wait() is released at the wait;
        # the consumer's read after the wait sits in a *different*
        # span, so lock reasoning still applies pairwise.
        r = analyze_source(PRODUCER_CONSUMER)
        assert r.global_pts_names("got") >= {"g"}  # sound


class TestInterpreter:
    def test_producer_consumer_terminates_all_schedules(self):
        for seed in range(8):
            m = compile_source(PRODUCER_CONSUMER)
            interp = Interpreter(m, seed=seed, max_steps=50000)
            interp.run()
            assert all(t.done for t in interp.threads)

    def test_barrier_rendezvous(self):
        src = """
        barrier_t b;
        int phase1_done; int order_ok;
        void *w1(void *arg) {
            phase1_done = 1;
            barrier_wait(&b);
            return null;
        }
        void *w2(void *arg) {
            barrier_wait(&b);
            order_ok = phase1_done;
            return null;
        }
        int main() {
            thread_t a; thread_t c;
            barrier_init(&b, 2);
            fork(&a, w1, null);
            fork(&c, w2, null);
            join(a); join(c);
            return order_ok;
        }
        """
        # Under every schedule, w2's read happens after w1's write.
        for seed in range(10):
            m = compile_source(src)
            interp = Interpreter(m, seed=seed, max_steps=50000)
            interp.run()
            assert all(t.done for t in interp.threads)
            # Find the order_ok cell and confirm the barrier ordered
            # the phases.
            cell = interp.globals[m.globals["order_ok"].id]
            assert cell.scalar == 1

    def test_barrier_underflow_deadlocks(self):
        src = """
        barrier_t b;
        int main() { barrier_init(&b, 2); barrier_wait(&b); return 0; }
        """
        m = compile_source(src)
        with pytest.raises(ExecutionLimit):
            Interpreter(m, seed=0, max_steps=5000).run()

    def test_wait_releases_mutex(self):
        # If wait failed to release, the producer could never acquire
        # the lock and every schedule would deadlock.
        m = compile_source(PRODUCER_CONSUMER)
        interp = Interpreter(m, seed=5, max_steps=50000)
        interp.run()
        assert not interp.locks_held


class TestSoundnessWithCondvars:
    def test_analysis_covers_all_schedules(self):
        from repro.fsam import FSAM
        from repro.ir import Load
        module = compile_source(PRODUCER_CONSUMER)
        result = FSAM(module).run()
        for seed in range(6):
            m2 = compile_source(PRODUCER_CONSUMER)
            loads1 = [i for i in module.all_instructions() if isinstance(i, Load)]
            loads2 = [i for i in m2.all_instructions() if isinstance(i, Load)]
            twin_of = {l2.id: l1 for l1, l2 in zip(loads1, loads2)}
            interp = Interpreter(m2, seed=seed, max_steps=50000)
            interp.run()
            for obs in interp.observations:
                twin = twin_of[obs.load.id]
                static = {o.name for o in result.pts(twin.dst)}
                assert obs.target.name in static
