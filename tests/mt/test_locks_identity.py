"""Lock analysis must compare MemObjects by allocation-site id.

Regression tests for identity (``is``) comparisons in mt/locks.py:
distinct MemObject instances with the same ``.id`` denote the same
abstract object, and the analysis must treat them as equal — the
pre-fix code silently stopped terminating spans and matching common
locks when the lock object arrived as a different instance.
"""

import copy

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Load, Store
from repro.memssa import build_dug
from repro.mt import InterleavingAnalysis, LockAnalysis, ThreadModel

SRC = """
int o_t1; int o_t2; int O;
int *p; int *q;
mutex_t l1;
void foo1(void *arg) {
    *p = &o_t1;            // s1 (outside the span)
    lock(&l1);
    *p = &o_t1;            // s2 (overwritten before unlock)
    *p = &o_t2;            // s3 (span tail)
    unlock(&l1);
    *p = &o_t1;            // s4 (outside, after the release)
    return null;
}
void foo2(void *arg) {
    lock(&l1);
    q = *p;                // load (span head read of O)
    unlock(&l1);
    return null;
}
int main() {
    thread_t a; thread_t b;
    p = &O;
    fork(&a, foo1, null);
    fork(&b, foo2, null);
    join(a); join(b);
    return 0;
}
"""


def setup(monkeypatch=None, clone_lock_objects=False):
    if clone_lock_objects:
        # Make every lock-object resolution hand back a *fresh*
        # MemObject instance with the same .id — the situation the
        # identity comparisons got wrong.
        orig = LockAnalysis._lock_object

        def cloning(self, ptr):
            obj = orig(self, ptr)
            return copy.copy(obj) if obj is not None else None

        monkeypatch.setattr(LockAnalysis, "_lock_object", cloning)
    m = compile_source(SRC)
    a = run_andersen(m)
    dug, builder = build_dug(m, a)
    model = ThreadModel(m, a)
    mhp = InterleavingAnalysis(model)
    locks = LockAnalysis(model, a, dug, builder)
    O = m.globals["O"]
    stores = [i for i in m.functions["foo1"].instructions()
              if isinstance(i, Store) and O in builder.chis.get(i.id, ())]
    load = next(i for i in m.functions["foo2"].instructions()
                if isinstance(i, Load) and O in builder.mus.get(i.id, ()))
    return m, mhp, locks, O, stores, load


class TestClonedLockObjects:
    def test_spans_terminate_at_release(self, monkeypatch):
        _m, _mhp, locks, _O, stores, _load = setup(
            monkeypatch, clone_lock_objects=True)
        s1, s2, s3, s4 = stores
        span = next(sp for sp in locks.spans
                    if sp.thread.routine.name == "foo1")
        inside = {s.id for s in stores if s.id in span.member_instrs}
        # The span covers the critical section only — under the old
        # `released is lock_obj` check a cloned release never matched
        # and the span swallowed s4 too.
        assert inside == {s2.id, s3.id}

    def test_common_lock_still_recognised(self, monkeypatch):
        _m, mhp, locks, O, stores, load = setup(
            monkeypatch, clone_lock_objects=True)
        s1, s2, s3, s4 = stores
        # Figure 9: the overwritten store s2 is a non-interference pair
        # with the protected load; the span tail s3 is a real flow.
        assert locks.filters(s2, load, O, mhp)
        assert not locks.filters(s3, load, O, mhp)
        assert not locks.filters(s1, load, O, mhp)
        assert not locks.filters(s4, load, O, mhp)

    def test_commonly_protected_with_clones(self, monkeypatch):
        _m, mhp, locks, _O, stores, load = setup(
            monkeypatch, clone_lock_objects=True)
        s2 = stores[1]
        pair = next(iter(mhp.parallel_instance_pairs(s2, load)))
        assert locks.commonly_protected(*pair)


class TestClonedQueryObject:
    def test_filters_accepts_equal_but_distinct_object(self):
        _m, mhp, locks, O, stores, load = setup()
        _s1, s2, s3, _s4 = stores
        O_clone = copy.copy(O)
        assert O_clone is not O and O_clone.id == O.id
        # span_tail's store-successor scan compares the queried object
        # against DUG edge labels: with `out_obj is not obj` a cloned
        # query object saw no successors and every store became a tail.
        assert locks.filters(s2, load, O_clone, mhp)
        assert not locks.filters(s3, load, O_clone, mhp)
