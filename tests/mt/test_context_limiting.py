"""k-limited calling contexts: a scalability knob beyond the paper.

Capping the callsite stack merges deep call instances. The result
must stay sound (points-to sets can only grow) while the
context-expanded state graphs shrink.
"""

import pytest

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.ir import Load
from repro.mt import ThreadModel
from repro.workloads import get_workload

DEEP = """
int g1; int g2;
int *m1; int *m2;
void leaf() { m2 = &g2; }
void mid2() { leaf(); }
void mid1() { mid2(); }
void *w(void *arg) { mid1(); return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    mid1();
    m1 = &g1;
    join(t);
    return 0;
}
"""


def model_with_depth(src, depth):
    m = compile_source(src)
    a = run_andersen(m)
    return m, ThreadModel(m, a, max_context_depth=depth)


class TestStateGraphSize:
    def test_zero_depth_merges_all_contexts(self):
        m, full = model_with_depth(DEEP, None)
        m2, flat = model_with_depth(DEEP, 0)
        g_full = full.state_graphs[full.threads[0].id]
        g_flat = flat.state_graphs[flat.threads[0].id]
        assert len(g_flat.state_info) <= len(g_full.state_info)
        # With depth 0 every function appears under the empty context.
        ctxs = {ctx for ctx, _node in g_flat.state_info}
        assert ctxs == {()}

    def test_depth_one_keeps_one_level(self):
        m, model = model_with_depth(DEEP, 1)
        graph = model.state_graphs[model.threads[0].id]
        assert all(len(ctx) <= 1 for ctx, _node in graph.state_info)

    def test_deep_chain_state_count_shrinks(self):
        src = get_workload("raytrace").source(1)
        m1, full = model_with_depth(src, None)
        m2, limited = model_with_depth(src, 2)
        total_full = sum(len(g.state_info) for g in full.state_graphs.values())
        total_limited = sum(len(g.state_info) for g in limited.state_graphs.values())
        assert total_limited < total_full


class TestSoundness:
    def _normalised(self, objs):
        return {"tid" if o.name.startswith("tid.fork") else o.name for o in objs}

    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_limited_is_superset_at_loads(self, depth):
        for name in ("word_count", "automount"):
            src = get_workload(name).source(1)
            m1 = compile_source(src)
            full = FSAM(m1).run()
            m2 = compile_source(src)
            limited = FSAM(m2, FSAMConfig(max_context_depth=depth)).run()
            loads1 = [i for i in m1.all_instructions() if isinstance(i, Load)]
            loads2 = [i for i in m2.all_instructions() if isinstance(i, Load)]
            for l1, l2 in zip(loads1, loads2):
                assert self._normalised(full.pts(l1.dst)) <= \
                    self._normalised(limited.pts(l2.dst)), (
                        f"{name} depth={depth}: k-limiting lost facts at {l1!r}")

    def test_figure8_needs_contexts(self):
        # The paper's Figure 8 distinguishes s5's two calling contexts;
        # with depth 0 the two instances merge — still sound, just
        # coarser (the merged instance inherits both I-sets).
        from tests.mt.test_threads import FIG8
        m, flat = model_with_depth(FIG8, 0)
        from repro.mt import InterleavingAnalysis
        mhp = InterleavingAnalysis(flat)
        assert mhp is not None  # completes without error