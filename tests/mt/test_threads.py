"""Static thread model tests (paper Section 3.1, Figure 8)."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.mt import ThreadModel


def model_of(src):
    m = compile_source(src)
    a = run_andersen(m)
    return m, ThreadModel(m, a)


def thread_by_routine(model, name):
    return [t for t in model.threads if not t.is_main and t.routine.name == name]


FIG8 = """
int g1; int g2; int g3; int g4; int g5;
int *m1; int *m2; int *m3; int *m4; int *m5;
void bar_(void *arg) {
    m5 = &g5;                 // s5
    return null;
}
void foo1(void *arg) {
    thread_t t3;
    fork(&t3, bar_, null);    // fk3
    join(t3);                 // jn3
    return null;
}
void foo2(void *arg) {
    bar_(null);               // cs4
    m4 = &g4;                 // s4
    return null;
}
int main() {
    thread_t t1; thread_t t2;
    m1 = &g1;                 // s1
    fork(&t1, foo1, null);    // fk1
    m2 = &g2;                 // s2
    join(t1);                 // jn1
    fork(&t2, foo2, null);    // fk2
    m3 = &g3;                 // s3
    join(t2);                 // jn2
    return 0;
}
"""


class TestEnumeration:
    def test_figure8_thread_set(self):
        m, model = model_of(FIG8)
        routines = sorted(t.routine.name for t in model.threads if not t.is_main)
        assert routines == ["bar_", "foo1", "foo2"]
        assert model.threads[0].is_main

    def test_spawn_tree(self):
        m, model = model_of(FIG8)
        t1 = thread_by_routine(model, "foo1")[0]
        t3 = thread_by_routine(model, "bar_")[0]
        assert t3.parent is t1
        assert t1.parent is model.threads[0]

    def test_none_multi_forked(self):
        m, model = model_of(FIG8)
        assert all(not t.multi_forked for t in model.threads)

    def test_descendants(self):
        m, model = model_of(FIG8)
        t0 = model.threads[0]
        assert len(t0.descendants()) == 3


class TestMultiFork:
    def test_fork_in_loop(self):
        m, model = model_of("""
        thread_t tids[4];
        void *w(void *a) { return null; }
        int main() { int i;
            for (i = 0; i < 4; i = i + 1) { fork(&tids[i], w, null); }
            return 0; }
        """)
        t = thread_by_routine(model, "w")[0]
        assert t.multi_forked

    def test_fork_in_recursion(self):
        m, model = model_of("""
        void *w(void *a) { return null; }
        void spawn(int n) { thread_t t;
            fork(&t, w, null);
            if (n > 0) { spawn(n - 1); }
        }
        int main() { spawn(2); return 0; }
        """)
        t = thread_by_routine(model, "w")[0]
        assert t.multi_forked

    def test_fork_via_helper_called_in_loop(self):
        m, model = model_of("""
        void *w(void *a) { return null; }
        void helper() { thread_t t; fork(&t, w, null); }
        int main() { int i;
            for (i = 0; i < 3; i = i + 1) { helper(); }
            return 0; }
        """)
        t = thread_by_routine(model, "w")[0]
        assert t.multi_forked

    def test_spawnee_of_multi_forked_is_multi(self):
        m, model = model_of("""
        void *leaf(void *a) { return null; }
        void *mid(void *a) { thread_t t; fork(&t, leaf, null); join(t); return null; }
        int main() { int i; thread_t tm;
            for (i = 0; i < 2; i = i + 1) { fork(&tm, mid, null); }
            return 0; }
        """)
        leaf = thread_by_routine(model, "leaf")[0]
        assert leaf.multi_forked

    def test_straightline_fork_not_multi(self):
        m, model = model_of("""
        void *w(void *a) { return null; }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """)
        t = thread_by_routine(model, "w")[0]
        assert not t.multi_forked


class TestJoinsAndHB:
    def test_definite_join(self):
        m, model = model_of(FIG8)
        from repro.ir import Join
        t0 = model.threads[0]
        joins = [i for i in m.functions["main"].instructions() if isinstance(i, Join)]
        t1 = thread_by_routine(model, "foo1")[0]
        t2 = thread_by_routine(model, "foo2")[0]
        assert model.definite_joins(t0, joins[0]) == {t1}
        assert model.definite_joins(t0, joins[1]) == {t2}

    def test_fully_joined_transitive(self):
        m, model = model_of(FIG8)
        t0 = model.threads[0]
        t1 = thread_by_routine(model, "foo1")[0]
        t3 = thread_by_routine(model, "bar_")[0]
        # foo1 fully joins bar_ by its exit.
        assert t3.id in model.fully_joined[t1.id]
        # main's jn1 joins t1 directly and t3 indirectly.
        assert {t1.id, t3.id} <= model.fully_joined[t0.id]

    def test_figure8_happens_before(self):
        m, model = model_of(FIG8)
        t1 = thread_by_routine(model, "foo1")[0]
        t2 = thread_by_routine(model, "foo2")[0]
        t3 = thread_by_routine(model, "bar_")[0]
        assert model.siblings(t1, t2)
        assert model.siblings(t3, t2)
        assert model.happens_before(t1, t2)   # t1 > t2
        assert model.happens_before(t3, t2)   # t3 > t2 (indirect join)
        assert not model.happens_before(t2, t1)
        assert not model.happens_before(t2, t3)

    def test_partial_join_no_hb(self):
        # t1 joined only on one path: no happens-before with t2.
        m, model = model_of("""
        int cond;
        void *w1(void *a) { return null; }
        void *w2(void *a) { return null; }
        int main() { thread_t t1; thread_t t2;
            fork(&t1, w1, null);
            if (cond) { join(t1); }
            fork(&t2, w2, null);
            join(t2);
            return 0; }
        """)
        t1 = thread_by_routine(model, "w1")[0]
        t2 = thread_by_routine(model, "w2")[0]
        assert not model.happens_before(t1, t2)

    def test_multi_forked_thread_not_definitely_joined(self):
        m, model = model_of("""
        thread_t tid;
        void *w(void *a) { return null; }
        int main() { int i;
            for (i = 0; i < 3; i = i + 1) { fork(&tid, w, null); }
            join(tid);
            return 0; }
        """)
        from repro.ir import Join
        t0 = model.threads[0]
        join = next(i for i in m.functions["main"].instructions() if isinstance(i, Join))
        # No symmetric loop here: the single join cannot kill the
        # multi-forked thread.
        assert model.definite_joins(t0, join) == set()
        assert model.symmetric_join_of(t0, join) is None


class TestStateGraphs:
    def test_states_cover_called_functions(self):
        m, model = model_of(FIG8)
        t2 = thread_by_routine(model, "foo2")[0]
        graph = model.state_graphs[t2.id]
        fns = {node.function.name for _ctx, node in graph.state_info}
        assert fns == {"foo2", "bar_"}

    def test_context_distinguishes_call_instances(self):
        # bar_ is reachable as t3's body (ctx []) and via foo2's call.
        m, model = model_of(FIG8)
        t3 = thread_by_routine(model, "bar_")[0]
        g3 = model.state_graphs[t3.id]
        ctxs3 = {ctx for ctx, node in g3.state_info if node.function.name == "bar_"}
        assert ctxs3 == {()}  # thread root: empty context
        t2 = thread_by_routine(model, "foo2")[0]
        g2 = model.state_graphs[t2.id]
        ctxs2 = {ctx for ctx, node in g2.state_info if node.function.name == "bar_"}
        assert len(ctxs2) == 1 and next(iter(ctxs2)) != ()

    def test_recursive_calls_terminate(self):
        m, model = model_of("""
        int f(int n) { if (n < 1) { return 0; } return f(n - 1); }
        int main() { return f(5); }
        """)
        graph = model.state_graphs[model.threads[0].id]
        assert graph.state_info  # finite in spite of recursion
