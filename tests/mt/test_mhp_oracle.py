"""MHP oracle contract tests: cache symmetry, precision ordering,
multi-forked self-parallelism, region keys, witness caching, and
observability counters."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Load, Store
from repro.mt import CoarsePCGMhp, InterleavingAnalysis, ThreadModel
from repro.mt.mhp import MHPOracle
from repro.obs import Observer

from tests.mt.test_threads import FIG8


def setup(src):
    m = compile_source(src)
    a = run_andersen(m)
    model = ThreadModel(m, a)
    return m, model, InterleavingAnalysis(model)


def accesses(m):
    return [i for i in m.all_instructions() if isinstance(i, (Load, Store))]


MULTIFORK = """
int g; int *m1;
thread_t tids[4];
void *w(void *a) { m1 = &g; return null; }
int main() { int i;
    for (i = 0; i < 4; i = i + 1) { fork(&tids[i], w, null); }
    for (i = 0; i < 4; i = i + 1) { join(tids[i]); }
    return 0; }
"""


class TestCacheSymmetry:
    def test_query_order_never_changes_the_answer(self):
        m, _model, mhp = setup(FIG8)
        stmts = accesses(m)
        for s1 in stmts:
            for s2 in stmts:
                assert mhp.may_happen_in_parallel(s1, s2) == \
                    mhp.may_happen_in_parallel(s2, s1)

    def test_reverse_query_is_a_cache_hit(self):
        m, _model, mhp = setup(FIG8)
        s1, s2 = accesses(m)[:2]
        before_hits = mhp.pair_cache_hits
        mhp.may_happen_in_parallel(s1, s2)   # computes and seeds (s2, s1)
        mhp.may_happen_in_parallel(s2, s1)   # must hit the cache
        assert mhp.pair_cache_hits == before_hits + 1
        assert mhp.pair_queries >= 2

    def test_coarse_oracle_cache_symmetric_too(self):
        m, model, _mhp = setup(FIG8)
        coarse = CoarsePCGMhp(model)
        s1, s2 = accesses(m)[:2]
        first = coarse.may_happen_in_parallel(s1, s2)
        hits = coarse.pair_cache_hits
        assert coarse.may_happen_in_parallel(s2, s1) == first
        assert coarse.pair_cache_hits == hits + 1


class TestPrecisionOrdering:
    def test_coarse_is_a_superset_of_interleaving(self):
        """Every pair the flow-sensitive analysis deems parallel must
        also be parallel under the coarse PCG fallback — the ablation
        only loses precision, never soundness."""
        for src in (FIG8, MULTIFORK):
            m, model, mhp = setup(src)
            coarse = CoarsePCGMhp(model)
            stmts = accesses(m)
            for s1 in stmts:
                for s2 in stmts:
                    if mhp.may_happen_in_parallel(s1, s2):
                        assert coarse.may_happen_in_parallel(s1, s2), \
                            f"coarse oracle missed {s1!r} || {s2!r}"

    def test_coarse_is_strictly_coarser_somewhere(self):
        m, model, mhp = setup(FIG8)
        coarse = CoarsePCGMhp(model)
        stmts = accesses(m)
        strictly = [(s1, s2) for s1 in stmts for s2 in stmts
                    if coarse.may_happen_in_parallel(s1, s2)
                    and not mhp.may_happen_in_parallel(s1, s2)]
        assert strictly, "expected join-ordered pairs only coarse deems MHP"


class TestMultiForked:
    def test_same_thread_instance_pairs_exist(self):
        m, _model, mhp = setup(MULTIFORK)
        store = next(i for i in m.functions["w"].instructions()
                     if isinstance(i, Store))
        pairs = list(mhp.parallel_instance_pairs(store, store))
        assert pairs
        for (t1, _sid1), (t2, _sid2) in pairs:
            assert t1 is t2 and t1.multi_forked

    def test_coarse_agrees_on_multi_forked_self_pair(self):
        m, model, mhp = setup(MULTIFORK)
        coarse = CoarsePCGMhp(model)
        store = next(i for i in m.functions["w"].instructions()
                     if isinstance(i, Store))
        assert mhp.may_happen_in_parallel(store, store)
        assert coarse.may_happen_in_parallel(store, store)
        assert list(coarse.parallel_instance_pairs(store, store))


class TestRegionKeys:
    def test_base_default_is_per_statement(self):
        # The always-sound fallback: every statement its own region,
        # so batched clients degrade to per-pair querying.
        m, _model, _mhp = setup(FIG8)
        base = MHPOracle()
        s1, s2 = accesses(m)[:2]
        assert base.region_key(s1) == ("instr", s1.id)
        assert base.region_key(s1) != base.region_key(s2)

    def test_equal_keys_imply_equal_verdicts(self):
        """The region-key contract: statements with equal keys receive
        identical MHP verdicts against *any* third statement. This is
        what licenses the value-flow phase's one-representative-per-
        region-pair batching."""
        for src in (FIG8, MULTIFORK):
            m, model, mhp = setup(src)
            oracles = [mhp, CoarsePCGMhp(model)]
            stmts = accesses(m)
            for oracle in oracles:
                keys = {s.id: oracle.region_key(s) for s in stmts}
                for s1 in stmts:
                    for s2 in stmts:
                        if s1 is s2 or keys[s1.id] != keys[s2.id]:
                            continue
                        for s3 in stmts:
                            assert oracle.may_happen_in_parallel(s1, s3) == \
                                oracle.may_happen_in_parallel(s2, s3), \
                                f"{s1!r} and {s2!r} share a region but " \
                                f"disagree vs {s3!r}"

    def test_regions_actually_coalesce(self):
        # The batching only wins if real programs have fewer regions
        # than statements; both oracles must coalesce on FIG8.
        m, model, mhp = setup(FIG8)
        stmts = accesses(m)
        for oracle in (mhp, CoarsePCGMhp(model)):
            keys = {oracle.region_key(s) for s in stmts}
            assert len(keys) < len(stmts)

    def test_coarse_key_is_thread_set(self):
        m, model, _mhp = setup(FIG8)
        coarse = CoarsePCGMhp(model)
        s = accesses(m)[0]
        assert coarse.region_key(s) == frozenset(
            (t.id, t.multi_forked) for t in coarse._threads_of(s))


class TestWitnessCaching:
    def _mhp_pair(self, mhp, stmts):
        for a in stmts:
            for b in stmts:
                if a is not b and \
                        next(iter(mhp.parallel_instance_pairs(a, b)), None):
                    return a, b
        raise AssertionError("no MHP pair in program")

    def _counting(self, mhp):
        """Wrap parallel_instance_pairs with a call counter."""
        calls = []
        orig = mhp.parallel_instance_pairs

        def counted(s1, s2):
            calls.append((s1.id, s2.id))
            return orig(s1, s2)

        mhp.parallel_instance_pairs = counted
        return calls

    def test_boolean_query_seeds_the_witness(self):
        # The satellite bug: _admission_verdict used to re-enumerate
        # instance pairs after may_happen_in_parallel had already
        # found a witness. One enumeration must now serve both.
        m, _model, mhp = setup(FIG8)
        s1, s2 = self._mhp_pair(mhp, accesses(m))
        mhp._witness_cache.clear()
        mhp._pair_cache.clear()
        calls = self._counting(mhp)
        assert mhp.may_happen_in_parallel(s1, s2)
        witness = mhp.mhp_witness(s1, s2)
        assert witness is not None
        assert len(calls) == 1

    def test_reverse_witness_is_swapped_without_reenumeration(self):
        m, _model, mhp = setup(FIG8)
        s1, s2 = self._mhp_pair(mhp, accesses(m))
        calls = self._counting(mhp)
        witness = mhp.mhp_witness(s1, s2)
        reverse = mhp.mhp_witness(s2, s1)
        assert reverse == (witness[1], witness[0])
        assert len(calls) <= 1

    def test_negative_witness_cached_too(self):
        m, _model, mhp = setup(FIG8)
        stmts = accesses(m)
        pair = next(((a, b) for a in stmts for b in stmts if a is not b
                     and not next(iter(mhp.parallel_instance_pairs(a, b)),
                                  None)), None)
        assert pair is not None
        s1, s2 = pair
        mhp._witness_cache.clear()
        mhp._pair_cache.clear()
        calls = self._counting(mhp)
        assert not mhp.may_happen_in_parallel(s1, s2)
        assert mhp.mhp_witness(s1, s2) is None
        assert mhp.mhp_witness(s2, s1) is None
        assert len(calls) == 1


class TestObservability:
    def test_flush_reports_queries_and_iterations(self):
        m, _model, mhp = setup(FIG8)
        s1, s2 = accesses(m)[:2]
        mhp.may_happen_in_parallel(s1, s2)
        mhp.may_happen_in_parallel(s2, s1)
        obs = Observer()
        mhp.flush_obs(obs)
        assert obs.counter("mhp.pair_queries") == mhp.pair_queries >= 2
        assert obs.counter("mhp.pair_cache_hits") >= 1
        assert obs.counter("mhp.dataflow_iterations") > 0
        assert obs.gauges["mhp.threads"] == len(mhp.model.threads)
