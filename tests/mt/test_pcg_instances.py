"""CoarsePCGMhp instance-pair enumeration (used by lock filtering in
the No-Interleaving configuration)."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import AddrOf, Store
from repro.mt import CoarsePCGMhp, InterleavingAnalysis, ThreadModel


SRC = """
int g1; int g2;
int *m1; int *m2;
void *w(void *arg) { m2 = &g2; return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    join(t);
    m1 = &g1;
    return 0;
}
"""


def setup():
    m = compile_source(SRC)
    a = run_andersen(m)
    model = ThreadModel(m, a)
    return m, model


def store_to(m, name):
    for fn in m.functions.values():
        for instr in fn.instructions():
            if isinstance(instr, Store):
                for i2 in fn.instructions():
                    if isinstance(i2, AddrOf) and i2.dst is instr.ptr \
                            and i2.obj.name == name:
                        return instr
    raise AssertionError(name)


class TestCoarseInstances:
    def test_pairs_cover_distinct_threads(self):
        m, model = setup()
        coarse = CoarsePCGMhp(model)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        pairs = list(coarse.parallel_instance_pairs(s1, s2))
        assert pairs
        threads = {(t1.id, t2.id) for (t1, _), (t2, _) in pairs}
        assert all(a != b for a, b in threads)

    def test_same_thread_non_multi_excluded(self):
        m, model = setup()
        coarse = CoarsePCGMhp(model)
        s1 = store_to(m, "m1")
        pairs = list(coarse.parallel_instance_pairs(s1, s1))
        assert pairs == []  # main is not multi-forked

    def test_coarse_ignores_join(self):
        m, model = setup()
        precise = InterleavingAnalysis(model)
        coarse = CoarsePCGMhp(model)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        assert not precise.may_happen_in_parallel(s1, s2)
        assert coarse.may_happen_in_parallel(s1, s2)

    def test_cache_symmetry(self):
        m, model = setup()
        coarse = CoarsePCGMhp(model)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        assert coarse.may_happen_in_parallel(s1, s2) == \
            coarse.may_happen_in_parallel(s2, s1)
