"""Interleaving (MHP) analysis tests — paper Figure 8 end to end."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Store
from repro.mt import CoarsePCGMhp, InterleavingAnalysis, ThreadModel

from tests.mt.test_threads import FIG8


def setup(src):
    m = compile_source(src)
    a = run_andersen(m)
    model = ThreadModel(m, a)
    return m, model, InterleavingAnalysis(model)


def store_to(m, global_name):
    """The unique store writing into the given global pointer."""
    obj_stores = []
    for instr in m.all_instructions():
        if isinstance(instr, Store):
            # match "*a.mN = ..." by the AddrOf feeding the ptr
            pass
    for fn in m.functions.values():
        for instr in fn.instructions():
            if isinstance(instr, Store):
                from repro.ir import AddrOf
                # find the defining AddrOf of the pointer temp
                for i2 in fn.instructions():
                    if isinstance(i2, AddrOf) and i2.dst is instr.ptr \
                            and i2.obj.name == global_name:
                        obj_stores.append(instr)
    assert len(obj_stores) == 1, f"expected one store to {global_name}"
    return obj_stores[0]


class TestFigure8MHP:
    def test_expected_pairs(self):
        m, model, mhp = setup(FIG8)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        s3 = store_to(m, "m3")
        s4 = store_to(m, "m4")
        s5 = store_to(m, "m5")
        # Paper Figure 8(d): the three MHP relations.
        assert mhp.may_happen_in_parallel(s2, s5)   # (t0,s2) || (t3,s5)
        assert mhp.may_happen_in_parallel(s3, s5)   # (t0,s3) || (t2,[cs4],s5)
        assert mhp.may_happen_in_parallel(s3, s4)   # (t0,s3) || (t2,s4)

    def test_expected_non_pairs(self):
        m, model, mhp = setup(FIG8)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        s4 = store_to(m, "m4")
        s5 = store_to(m, "m5")
        # s1 runs before any fork.
        assert not mhp.may_happen_in_parallel(s1, s5)
        assert not mhp.may_happen_in_parallel(s1, s4)
        # t2 is forked only after jn1: s2 cannot interleave with s4.
        assert not mhp.may_happen_in_parallel(s2, s4)

    def test_symmetry(self):
        m, model, mhp = setup(FIG8)
        s3 = store_to(m, "m3")
        s5 = store_to(m, "m5")
        assert mhp.may_happen_in_parallel(s5, s3) == mhp.may_happen_in_parallel(s3, s5)

    def test_same_thread_not_mhp_unless_multi(self):
        m, model, mhp = setup(FIG8)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        assert not mhp.may_happen_in_parallel(s1, s2)

    def test_hb_between_sibling_descendants(self):
        # s5 executed by t3 must not pair with s4 in t2 (t3 > t2).
        m, model, mhp = setup(FIG8)
        s4 = store_to(m, "m4")
        s5 = store_to(m, "m5")
        # s5 also runs inside t2 itself (bar_ called from foo2):
        # within one non-multi-forked thread that's not parallelism,
        # and the t3 instance is ordered before t2. Hence no pair.
        assert not mhp.may_happen_in_parallel(s4, s5)


class TestMultiForkedSelfParallel:
    SRC = """
    int g; int *m1;
    thread_t tids[4];
    void *w(void *a) { m1 = &g; return null; }
    int main() { int i;
        for (i = 0; i < 4; i = i + 1) { fork(&tids[i], w, null); }
        for (i = 0; i < 4; i = i + 1) { join(tids[i]); }
        return 0; }
    """

    def test_multi_forked_statement_self_mhp(self):
        m, model, mhp = setup(self.SRC)
        s = store_to(m, "m1")
        assert mhp.may_happen_in_parallel(s, s)

    def test_post_symmetric_join_not_mhp(self):
        src = self.SRC.replace("return 0;", "m1 = &g; return 0;", 1)
        # now there are two stores to m1; pick them apart
        m = compile_source(src)
        a = run_andersen(m)
        model = ThreadModel(m, a)
        mhp = InterleavingAnalysis(model)
        from repro.ir import Store, AddrOf
        stores = []
        for fn in m.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, Store):
                    for i2 in fn.instructions():
                        if isinstance(i2, AddrOf) and i2.dst is instr.ptr and i2.obj.name == "m1":
                            stores.append(instr)
        worker_store = next(s for s in stores if s.function.name == "w")
        main_store = next(s for s in stores if s.function.name == "main")
        assert not mhp.may_happen_in_parallel(worker_store, main_store)


class TestCoarseFallback:
    def test_pcg_coarser_than_interleaving(self):
        m, model, mhp = setup(FIG8)
        coarse = CoarsePCGMhp(model)
        s2 = store_to(m, "m2")
        s4 = store_to(m, "m4")
        # Precise: ordered by join. Coarse: deemed parallel.
        assert not mhp.may_happen_in_parallel(s2, s4)
        assert coarse.may_happen_in_parallel(s2, s4)

    def test_pcg_sound_superset(self):
        m, model, mhp = setup(FIG8)
        coarse = CoarsePCGMhp(model)
        from repro.ir import Store
        stores = [i for i in m.all_instructions() if isinstance(i, Store)]
        for a_ in stores:
            for b_ in stores:
                if mhp.may_happen_in_parallel(a_, b_):
                    assert coarse.may_happen_in_parallel(a_, b_)
