"""Symmetric fork/join loop matcher tests (paper Figure 11)."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Fork, Join
from repro.mt.symmetry import find_symmetric_pairs


def pairs_of(src):
    m = compile_source(src)
    a = run_andersen(m)
    return m, find_symmetric_pairs(m, a)


WORD_COUNT_SHAPE = """
thread_t tid[8];
int num_procs;
void *wordcount_map(void *out) { return null; }
int main() {
    int i;
    num_procs = 8;
    for (i = 0; i < num_procs; i = i + 1) {
        fork(&tid[i], wordcount_map, null);
    }
    for (i = 0; i < num_procs; i = i + 1) {
        join(tid[i]);
    }
    return 0;
}
"""


class TestMatcher:
    def test_word_count_pattern_recognised(self):
        m, pairs = pairs_of(WORD_COUNT_SHAPE)
        assert len(pairs) == 1
        fork = next(i for i in m.all_instructions() if isinstance(i, Fork))
        join = next(i for i in m.all_instructions() if isinstance(i, Join))
        assert (fork.id, join.id) in pairs

    def test_kill_blocks_are_loop_exits(self):
        m, pairs = pairs_of(WORD_COUNT_SHAPE)
        pair = next(iter(pairs.values()))
        assert pair.kill_blocks
        assert all(b not in pair.join_loop.body for b in pair.kill_blocks)

    def test_join_before_fork_not_matched(self):
        m, pairs = pairs_of("""
        thread_t tid[4];
        void *w(void *a) { return null; }
        int main() { int i;
            for (i = 0; i < 4; i = i + 1) { join(tid[i]); }
            for (i = 0; i < 4; i = i + 1) { fork(&tid[i], w, null); }
            return 0; }
        """)
        assert pairs == {}

    def test_same_loop_not_matched(self):
        m, pairs = pairs_of("""
        thread_t tid[4];
        void *w(void *a) { return null; }
        int main() { int i;
            for (i = 0; i < 4; i = i + 1) {
                fork(&tid[i], w, null);
                join(tid[i]);
            }
            return 0; }
        """)
        assert pairs == {}

    def test_different_arrays_not_matched(self):
        m, pairs = pairs_of("""
        thread_t a[4]; thread_t b[4];
        void *w(void *x) { return null; }
        int main() { int i;
            for (i = 0; i < 4; i = i + 1) { fork(&a[i], w, null); }
            for (i = 0; i < 4; i = i + 1) { join(b[i]); }
            return 0; }
        """)
        assert pairs == {}

    def test_reused_array_matches_nearest_fork_loop(self):
        # Two fork loops reuse one tid array (Phoenix idiom): each join
        # loop correlates with the nearest dominating fork loop.
        m, pairs = pairs_of("""
        thread_t tid[8];
        void *map_(void *a) { return null; }
        void *reduce_(void *a) { return null; }
        int main() { int i;
            for (i = 0; i < 8; i = i + 1) { fork(&tid[i], map_, null); }
            for (i = 0; i < 8; i = i + 1) { join(tid[i]); }
            for (i = 0; i < 8; i = i + 1) { fork(&tid[i], reduce_, null); }
            for (i = 0; i < 8; i = i + 1) { join(tid[i]); }
            return 0; }
        """)
        assert len(pairs) == 2
        forks = [i for i in m.all_instructions() if isinstance(i, Fork)]
        joins = [i for i in m.all_instructions() if isinstance(i, Join)]
        assert (forks[0].id, joins[0].id) in pairs
        assert (forks[1].id, joins[1].id) in pairs
