"""Lock analysis tests (paper Section 3.3.3, Figures 9 and 13)."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.fsam import analyze_source
from repro.ir import Load, Store
from repro.memssa import build_dug
from repro.mt import InterleavingAnalysis, LockAnalysis, ThreadModel


def setup(src):
    m = compile_source(src)
    a = run_andersen(m)
    dug, builder = build_dug(m, a)
    model = ThreadModel(m, a)
    mhp = InterleavingAnalysis(model)
    locks = LockAnalysis(model, a, dug, builder)
    return m, a, dug, builder, model, mhp, locks


FIG9 = """
int o_t1; int o_t2; int O;
int *p; int *q;
mutex_t l1;
void foo1(void *arg) {
    *p = &o_t1;            // s1 (outside the span)
    lock(&l1);
    *p = &o_t1;            // s2 (overwritten before unlock)
    *p = &o_t2;            // s3 (span tail)
    unlock(&l1);
    return null;
}
void foo2(void *arg) {
    lock(&l1);
    q = *p;                // s4 (span head read of O)
    unlock(&l1);
    return null;
}
int main() {
    thread_t a; thread_t b;
    p = &O;
    fork(&a, foo1, null);
    fork(&b, foo2, null);
    join(a); join(b);
    return 0;
}
"""


def stores_on_obj(m, builder, fn, obj):
    return [i for i in m.functions[fn].instructions()
            if isinstance(i, Store) and obj in builder.chis.get(i.id, set())]


class TestSpans:
    def test_spans_built_per_lock_site(self):
        m, a, dug, builder, model, mhp, locks = setup(FIG9)
        lock_objs = {sp.lock_obj.name for sp in locks.spans}
        assert lock_objs == {"l1"}
        # foo1's span in thread a, foo2's span in thread b (and their
        # instances): at least two spans exist.
        assert len(locks.spans) >= 2

    def test_span_members_cover_critical_section(self):
        m, a, dug, builder, model, mhp, locks = setup(FIG9)
        O = m.globals["O"]
        s_all = stores_on_obj(m, builder, "foo1", O)
        span = next(sp for sp in locks.spans if sp.thread.routine.name == "foo1")
        inside = [s for s in s_all if s.id in span.member_instrs]
        assert len(inside) == 2  # s2 and s3, not s1

    def test_span_head_and_tail(self):
        m, a, dug, builder, model, mhp, locks = setup(FIG9)
        O = m.globals["O"]
        s1, s2, s3 = stores_on_obj(m, builder, "foo1", O)
        span = next(sp for sp in locks.spans if sp.thread.routine.name == "foo1")
        tail = locks.span_tail(span, O)
        assert s3.id in tail
        assert s2.id not in tail  # overwritten before release
        span2 = next(sp for sp in locks.spans if sp.thread.routine.name == "foo2")
        loads = [i for i in m.functions["foo2"].instructions()
                 if isinstance(i, Load) and O in builder.mus.get(i.id, set())]
        head = locks.span_head(span2, O)
        assert loads[0].id in head

    def test_non_tail_store_filtered(self):
        # Figure 9: s2 -> s4 is a non-interference pair; s3 -> s4 is real.
        m, a, dug, builder, model, mhp, locks = setup(FIG9)
        O = m.globals["O"]
        s1, s2, s3 = stores_on_obj(m, builder, "foo1", O)
        load = next(i for i in m.functions["foo2"].instructions()
                    if isinstance(i, Load) and O in builder.mus.get(i.id, set()))
        assert locks.filters(s2, load, O, mhp)
        assert not locks.filters(s3, load, O, mhp)

    def test_unprotected_store_not_filtered(self):
        m, a, dug, builder, model, mhp, locks = setup(FIG9)
        O = m.globals["O"]
        s1, s2, s3 = stores_on_obj(m, builder, "foo1", O)
        load = next(i for i in m.functions["foo2"].instructions()
                    if isinstance(i, Load) and O in builder.mus.get(i.id, set()))
        assert not locks.filters(s1, load, O, mhp)  # s1 is outside any span


class TestMustAlias:
    def test_non_singleton_lock_pointer_ignored(self):
        # Locks reached through a may-alias pointer give no spans.
        m, a, dug, builder, model, mhp, locks = setup("""
        int O; int *p; int g;
        mutex_t l1; mutex_t l2;
        int cond;
        void *w(void *arg) {
            mutex_t *l;
            if (cond) { l = &l1; } else { l = &l2; }
            lock(l);
            p = &O;
            unlock(l);
            return null;
        }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """)
        assert locks.spans == []

    def test_two_aliased_lock_names_match(self):
        # Figure 1(e)-style: l1 and l2 are the same lock by must-alias.
        src = """
        int x; int y; int z; int v;
        int *p; int *q; int *r; int *u;
        int *c;
        mutex_t l1;
        void foo(void *arg) {
            mutex_t *l2;
            l2 = &l1;
            lock(l2);
            *p = u;
            *p = q;
            unlock(l2);
        }
        int main() {
            thread_t t;
            p = &x; q = &y; r = &z; u = &v;
            *p = r;
            fork(&t, foo, null);
            lock(&l1);
            c = *p;
            unlock(&l1);
            return 0;
        }
        """
        r = analyze_source(src)
        # v must be filtered out (the *p=u write is not a span tail).
        assert "v" not in r.deref_pts_names_at_line(20)
