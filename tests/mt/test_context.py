"""Calling-context stack tests."""

import pytest

from repro.mt.context import Context


class TestContext:
    def test_empty_is_singleton_value(self):
        assert Context.EMPTY == Context()
        assert len(Context.EMPTY) == 0

    def test_push_pop_roundtrip(self):
        c = Context.EMPTY.push(3).push(7)
        assert c.peek() == 7
        assert c.pop() == Context.EMPTY.push(3)

    def test_immutability(self):
        c = Context.EMPTY
        c.push(1)
        assert c == Context.EMPTY

    def test_structural_equality_and_hash(self):
        a = Context.EMPTY.push(1).push(2)
        b = Context.EMPTY.push(1).push(2)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(ValueError):
            Context.EMPTY.pop()

    def test_peek_empty_raises(self):
        with pytest.raises(ValueError):
            Context.EMPTY.peek()

    def test_repr(self):
        assert repr(Context.EMPTY.push(4).push(5)) == "[4,5]"
