"""[THREAD-VF] value-flow analysis tests."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Load, Store
from repro.memssa import build_dug
from repro.mt import (
    InterleavingAnalysis, LockAnalysis, ThreadModel, add_thread_aware_edges,
)


def setup(src, locks=False, alias_filtering=True):
    m = compile_source(src)
    a = run_andersen(m)
    dug, builder = build_dug(m, a)
    model = ThreadModel(m, a)
    mhp = InterleavingAnalysis(model)
    lock_analysis = LockAnalysis(model, a, dug, builder) if locks else None
    stats = add_thread_aware_edges(dug, builder, mhp, locks=lock_analysis,
                                   alias_filtering=alias_filtering)
    return m, dug, builder, stats


# Many statements per interference region: four workers writing the
# same object plus main-side accesses, so the per-region batching has
# cross products to collapse.
BATCHY = """
int g; int A;
int *p;
thread_t tids[4];
void *w(void *a) { *p = &g; int *r; r = *p; *p = r; return null; }
int main() { int i;
    p = &A;
    for (i = 0; i < 4; i = i + 1) { fork(&tids[i], w, null); }
    *p = &g;
    int *q; q = *p;
    for (i = 0; i < 4; i = i + 1) { join(tids[i]); }
    return 0; }
"""


class TestRegionBatching:
    def _pieces(self, src, alias_filtering=True):
        m = compile_source(src)
        a = run_andersen(m)
        dug, builder = build_dug(m, a)
        mhp = InterleavingAnalysis(ThreadModel(m, a))
        stats = add_thread_aware_edges(dug, builder, mhp,
                                       alias_filtering=alias_filtering)
        return mhp, stats

    def test_one_query_per_region_pair(self):
        mhp, stats = self._pieces(BATCHY)
        assert stats.candidate_pairs > 0
        # Every candidate pair is decided, but the oracle only sees
        # one representative per region pair: the rest are cache hits.
        assert stats.mhp_cache_hits > 0
        assert mhp.pair_queries + stats.mhp_cache_hits == \
            stats.candidate_pairs
        assert mhp.pair_queries < stats.candidate_pairs

    def test_batched_counters_match_per_pair_semantics(self):
        """The reported statistics must read as if each statement pair
        had been queried individually (candidates = refuted + MHP)."""
        for af in (True, False):
            mhp, stats = self._pieces(BATCHY, alias_filtering=af)
            assert 0 <= stats.mhp_pairs <= stats.candidate_pairs
            assert stats.edges_added <= stats.mhp_pairs
            assert stats.mhp_cache_hits <= stats.candidate_pairs


PARALLEL = """
int x_t; int A; int B;
int *p; int *q;
void *writer(void *arg) {
    *p = &x_t;      // store into A
    return null;
}
int main() {
    thread_t t;
    p = &A; q = &B;
    fork(&t, writer, null);
    q = *p;          // load of A (MHP with the store)
    *q = &x_t;       // store into B
    return 0;
}
"""


class TestThreadVF:
    def test_store_load_edge_added(self):
        m, dug, builder, stats = setup(PARALLEL)
        A = m.globals["A"]
        store = next(i for i in m.functions["writer"].instructions()
                     if isinstance(i, Store) and A in builder.chis.get(i.id, set()))
        load = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Load) and A in builder.mus.get(i.id, set()))
        assert dug.is_thread_edge(dug.stmt_node(store), A, dug.stmt_node(load))
        assert stats.edges_added >= 1

    def test_non_aliased_pair_gets_no_edge(self):
        # writer touches A; the store into B in main shares no object.
        m, dug, builder, stats = setup(PARALLEL)
        B = m.globals["B"]
        writer_store = next(i for i in m.functions["writer"].instructions()
                            if isinstance(i, Store))
        b_store = next(i for i in m.functions["main"].instructions()
                       if isinstance(i, Store) and B in builder.chis.get(i.id, set()))
        assert not dug.is_thread_edge(dug.stmt_node(writer_store), B,
                                      dug.stmt_node(b_store))

    def test_interfering_store_marked(self):
        m, dug, builder, stats = setup(PARALLEL)
        A = m.globals["A"]
        store = next(i for i in m.functions["writer"].instructions()
                     if isinstance(i, Store) and A in builder.chis.get(i.id, set()))
        assert dug.is_interfering(dug.stmt_node(store), A)

    def test_sequential_program_no_edges(self):
        m, dug, builder, stats = setup("""
        int x; int *p;
        int main() { p = &x; *p = 1; return 0; }
        """)
        assert stats.edges_added == 0
        assert stats.mhp_pairs == 0

    def test_serial_fork_join_no_edges_after(self):
        # The store in the routine and a load after the join never
        # happen in parallel: no THREAD-VF edge between them.
        m, dug, builder, stats = setup("""
        int x_t; int A;
        int *p; int *q;
        void *w(void *arg) { *p = &x_t; return null; }
        int main() { thread_t t;
            p = &A;
            fork(&t, w, null);
            join(t);
            q = *p;
            return 0; }
        """)
        A = m.globals["A"]
        store = next(i for i in m.functions["w"].instructions()
                     if isinstance(i, Store) and A in builder.chis.get(i.id, set()))
        load = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Load) and A in builder.mus.get(i.id, set()))
        assert not dug.is_thread_edge(dug.stmt_node(store), A, dug.stmt_node(load))

    def test_no_alias_filtering_blowup(self):
        m1, dug1, b1, stats1 = setup(PARALLEL, alias_filtering=True)
        m2, dug2, b2, stats2 = setup(PARALLEL, alias_filtering=False)
        assert stats2.edges_added >= stats1.edges_added

    def test_store_store_edges(self):
        m, dug, builder, stats = setup("""
        int x_t; int y_t; int A;
        int *p;
        void *w(void *arg) { *p = &x_t; return null; }
        int main() { thread_t t;
            p = &A;
            fork(&t, w, null);
            *p = &y_t;
            return 0; }
        """)
        A = m.globals["A"]
        w_store = next(i for i in m.functions["w"].instructions()
                       if isinstance(i, Store) and A in builder.chis.get(i.id, set()))
        m_store = next(i for i in m.functions["main"].instructions()
                       if isinstance(i, Store) and A in builder.chis.get(i.id, set()))
        assert dug.is_thread_edge(dug.stmt_node(w_store), A, dug.stmt_node(m_store))
        assert dug.is_thread_edge(dug.stmt_node(m_store), A, dug.stmt_node(w_store))
