"""MHP correctness on deeper spawn trees: three generations, partial
joins, and mixed multi-forked subtrees."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import AddrOf, Store
from repro.mt import InterleavingAnalysis, ThreadModel


def setup(src):
    m = compile_source(src)
    a = run_andersen(m)
    model = ThreadModel(m, a)
    return m, model, InterleavingAnalysis(model)


def store_to(m, global_name):
    stores = []
    for fn in m.functions.values():
        for instr in fn.instructions():
            if isinstance(instr, Store):
                for i2 in fn.instructions():
                    if isinstance(i2, AddrOf) and i2.dst is instr.ptr \
                            and i2.obj.name == global_name:
                        stores.append(instr)
    assert len(stores) == 1
    return stores[0]


THREE_GENERATIONS = """
int g1; int g2; int g3; int g4;
int *m1; int *m2; int *m3; int *m4;
void *grandchild(void *arg) {
    m3 = &g3;                // s3
    return null;
}
void *child(void *arg) {
    thread_t gc;
    fork(&gc, grandchild, null);
    m2 = &g2;                // s2 (parallel with grandchild)
    // no join: grandchild outlives child
    return null;
}
int main() {
    thread_t c;
    fork(&c, child, null);
    join(c);
    m1 = &g1;                // s1: child joined, grandchild still alive
    return 0;
}
"""


class TestThreeGenerations:
    def test_grandchild_survives_child_join(self):
        # child is joined, but it never joined grandchild: the
        # grandchild outlives it (the paper's Figure 1(b) situation one
        # level deeper).
        m, model, mhp = setup(THREE_GENERATIONS)
        s1 = store_to(m, "m1")
        s3 = store_to(m, "m3")
        assert mhp.may_happen_in_parallel(s1, s3)

    def test_child_dead_after_join(self):
        m, model, mhp = setup(THREE_GENERATIONS)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        assert not mhp.may_happen_in_parallel(s1, s2)

    def test_child_parallel_with_grandchild(self):
        m, model, mhp = setup(THREE_GENERATIONS)
        s2 = store_to(m, "m2")
        s3 = store_to(m, "m3")
        assert mhp.may_happen_in_parallel(s2, s3)

    def test_join_closure_excludes_grandchild(self):
        m, model, mhp = setup(THREE_GENERATIONS)
        t0 = model.threads[0]
        child = next(t for t in model.threads
                     if not t.is_main and t.routine.name == "child")
        gc = next(t for t in model.threads
                  if not t.is_main and t.routine.name == "grandchild")
        assert child.id in model.fully_joined[t0.id]
        assert gc.id not in model.fully_joined[t0.id]


FULLY_JOINED_SUBTREE = THREE_GENERATIONS.replace(
    """    fork(&gc, grandchild, null);
    m2 = &g2;                // s2 (parallel with grandchild)
    // no join: grandchild outlives child""",
    """    fork(&gc, grandchild, null);
    m2 = &g2;                // s2 (parallel with grandchild)
    join(gc);""")


class TestTransitiveFullJoin:
    def test_grandchild_dead_after_transitive_join(self):
        # Now the child fully joins the grandchild; main's join of the
        # child transitively kills both ([T-JOIN] transitivity).
        m, model, mhp = setup(FULLY_JOINED_SUBTREE)
        s1 = store_to(m, "m1")
        s3 = store_to(m, "m3")
        assert not mhp.may_happen_in_parallel(s1, s3)

    def test_closure_includes_grandchild(self):
        m, model, mhp = setup(FULLY_JOINED_SUBTREE)
        t0 = model.threads[0]
        gc = next(t for t in model.threads
                  if not t.is_main and t.routine.name == "grandchild")
        assert gc.id in model.fully_joined[t0.id]


class TestMixedMultiFork:
    SRC = """
int g1; int g2;
int *m1; int *m2;
thread_t pool[4];
void *leaf(void *arg) {
    m2 = &g2;
    return null;
}
void *spawner(void *arg) {
    int i;
    thread_t inner;
    for (i = 0; i < 2; i = i + 1) { fork(&inner, leaf, null); }
    return null;
}
int main() {
    thread_t s;
    fork(&s, spawner, null);
    join(s);
    m1 = &g1;
    return 0;
}
"""

    def test_multi_forked_leaves_survive(self):
        # The leaves are multi-forked and never joined: they may run
        # after main joins the spawner.
        m, model, mhp = setup(self.SRC)
        s1 = store_to(m, "m1")
        s2 = store_to(m, "m2")
        assert mhp.may_happen_in_parallel(s1, s2)

    def test_leaf_marked_multi(self):
        m, model, mhp = setup(self.SRC)
        leaf = next(t for t in model.threads
                    if not t.is_main and t.routine.name == "leaf")
        assert leaf.multi_forked
