"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig


def analyze(source: str, config: FSAMConfig = None):
    """Compile + run FSAM (fresh module per call)."""
    module = compile_source(source)
    return FSAM(module, config).run()


@pytest.fixture
def compile_src():
    return compile_source


@pytest.fixture
def run_fsam():
    return analyze
