"""Memory-SSA / DUG construction tests (paper Figures 4 and 6)."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Load, Store, Fork, Join
from repro.memssa import build_dug
from repro.memssa.dug import (
    CallChiNode, CallMuNode, FormalInNode, FormalOutNode, MemPhiNode, StmtNode,
)


def build(src):
    m = compile_source(src)
    a = run_andersen(m)
    dug, builder = build_dug(m, a)
    return m, a, dug, builder


def the(m, fn, kind, idx=0):
    return [i for i in m.functions[fn].instructions() if isinstance(i, kind)][idx]


def stores_on(m, builder, fn, obj):
    return [i for i in m.functions[fn].instructions()
            if isinstance(i, Store) and obj in builder.chis.get(i.id, set())]


class TestSequentialSparsity:
    def test_figure4_bypass(self):
        # s1: *p = q (defines a); s2: v = *w (touches only b);
        # s3: *x = y (defines a); s4: s = *r (reads a).
        # The def-use edge for a must run s1 -> s3 and s3 -> s4, with
        # s2 bypassed entirely.
        m, a, dug, builder = build("""
        int a_t; int b_t; int A; int B;
        int *p; int *w; int *x; int *r;
        int *q; int *y; int *v; int *s;
        int main() {
            p = &A; x = &A; r = &A; w = &B;
            *p = &a_t;
            v = *w;
            *x = &b_t;
            s = *r;
            return 0; }
        """)
        A = m.globals["A"]
        s1, s3 = stores_on(m, builder, "main", A)
        n1, n3 = dug.stmt_node(s1), dug.stmt_node(s3)
        # s1 defines A, reaching s3 (weak-use) ...
        assert n1 in dug.mem_defs_of(n3, A)
        # ... and the load of A reads s3's def, not s1's (strong update).
        loads = [i for i in m.functions["main"].instructions()
                 if isinstance(i, Load) and A in builder.mus.get(i.id, set())]
        target = dug.stmt_node(loads[-1])
        defs = dug.mem_defs_of(target, A)
        assert n3 in defs

    def test_loads_annotated_with_mu(self):
        m, a, dug, builder = build("""
        int x; int *p; int *out;
        int main() { p = &x; out = p; return 0; }
        """)
        # 'p' and 'out' are globals: their reads are loads with mu(p).
        loads = [i for i in m.functions["main"].instructions() if isinstance(i, Load)]
        assert any(builder.mus.get(l.id) for l in loads)

    def test_stores_annotated_with_chi(self):
        m, a, dug, builder = build("""
        int x; int *p;
        int main() { p = &x; return 0; }
        """)
        store = the(m, "main", Store, 0)
        assert {o.name for o in builder.chis[store.id]} == {"p"}

    def test_memphi_at_join(self):
        m, a, dug, builder = build("""
        int x; int y; int *p; int *out;
        int main() {
            if (x < 1) { p = &x; } else { p = &y; }
            out = p;
            return 0; }
        """)
        phis = [n for n in dug.nodes if isinstance(n, MemPhiNode)]
        assert any(n.obj.name == "p" for n in phis)

    def test_formal_in_out_nodes(self):
        m, a, dug, builder = build("""
        int g; int *gp;
        void w() { gp = &g; }
        int main() { w(); return 0; }
        """)
        fins = [n for n in dug.nodes if isinstance(n, FormalInNode) and n.fn.name == "w"]
        fouts = [n for n in dug.nodes if isinstance(n, FormalOutNode) and n.fn.name == "w"]
        assert any(n.obj.name == "gp" for n in fins)
        assert any(n.obj.name == "gp" for n in fouts)

    def test_callsite_mu_chi_nodes(self):
        m, a, dug, builder = build("""
        int g; int *gp; int *out;
        void w() { gp = &g; }
        int main() { gp = null; w(); out = gp; return 0; }
        """)
        mus = [n for n in dug.nodes if isinstance(n, CallMuNode)]
        chis = [n for n in dug.nodes if isinstance(n, CallChiNode)]
        assert any(n.obj.name == "gp" for n in mus)
        assert any(n.obj.name == "gp" for n in chis)


class TestThreadObliviousEdges:
    FIG6 = """
    int o_t; int O;
    int *p; int *q;
    void *foo(void *arg) {
        *q = &o_t;       // s4
        p = *q;          // s5 (use of O)
        return null;
    }
    int main() {
        thread_t t;
        p = &O; q = &O;
        *p = &o_t;       // s1
        fork(&t, foo, null);
        *p = &o_t;       // s2
        join(t);
        p = *p;          // s3 (use of O after join)
        return 0;
    }
    """

    def test_fork_bypass_edge(self):
        # Figure 6(c): s1's def of O reaches s2 directly, bypassing foo.
        m, a, dug, builder = build(self.FIG6)
        O = m.globals["O"]
        s1, s2 = stores_on(m, builder, "main", O)
        assert dug.stmt_node(s1) in dug.mem_defs_of(dug.stmt_node(s2), O)

    def test_join_related_edge(self):
        # Figure 6(d): foo's exit def of O is visible at the use after
        # the join, via the join chi fed by foo's formal-out.
        m, a, dug, builder = build(self.FIG6)
        join = the(m, "main", Join, 0)
        O = m.globals["O"]
        chi = builder.site_chis.get((join.id, O.id))
        assert chi is not None
        fouts = [n for n in dug.mem_defs_of(chi, O) if isinstance(n, FormalOutNode)]
        assert any(n.fn.name == "foo" for n in fouts)

    def test_fork_acts_as_callsite(self):
        # Step 1: value flows into the routine at the fork (mu -> formal-in).
        m, a, dug, builder = build(self.FIG6)
        fork = the(m, "main", Fork, 0)
        O = m.globals["O"]
        mu = builder.site_mus.get((fork.id, O.id))
        assert mu is not None
        outs = [dst for obj, dst in dug.mem_out(mu) if obj is O]
        assert any(isinstance(n, FormalInNode) and n.fn.name == "foo" for n in outs)
