"""Mod-ref summary tests."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Join
from repro.memssa import ModRefAnalysis
from repro.memssa.builder import pointer_carrying_objects


def build(src):
    m = compile_source(src)
    a = run_andersen(m)
    relevant = pointer_carrying_objects(m, a)
    return m, a, ModRefAnalysis(m, a, relevant=relevant)


def names(objs):
    return sorted(o.name for o in objs)


class TestModRef:
    def test_local_store_in_mod(self):
        m, a, mr = build("""
        int g; int *gp;
        int main() { gp = &g; return 0; }
        """)
        assert "gp" in names(mr.mod[m.functions["main"]])

    def test_load_in_ref(self):
        m, a, mr = build("""
        int g; int *gp; int *out;
        void reader() { out = gp; }
        int main() { gp = &g; reader(); return 0; }
        """)
        assert "gp" in names(mr.ref[m.functions["reader"]])

    def test_transitive_mod_through_calls(self):
        m, a, mr = build("""
        int g; int *gp;
        void inner() { gp = &g; }
        void outer() { inner(); }
        int main() { outer(); return 0; }
        """)
        assert "gp" in names(mr.mod[m.functions["outer"]])
        assert "gp" in names(mr.mod[m.functions["main"]])

    def test_fork_counts_as_call(self):
        m, a, mr = build("""
        int g; int *gp;
        void *w(void *x) { gp = &g; return null; }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """)
        assert "gp" in names(mr.mod[m.functions["main"]])

    def test_join_imports_routine_mod(self):
        m, a, mr = build("""
        int g; int *gp;
        void *w(void *x) { gp = &g; return null; }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """)
        join = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Join))
        assert "gp" in names(mr.callsite_mod(join))
        assert mr.joined_routines[join.id] == {m.functions["w"]}

    def test_mutual_recursion_fixpoint(self):
        m, a, mr = build("""
        int g; int h; int *gp; int *hp;
        void f1(int n) { gp = &g; if (n > 0) { f2(n - 1); } }
        void f2(int n) { hp = &h; if (n > 0) { f1(n - 1); } }
        int main() { f1(3); return 0; }
        """)
        mods1 = names(mr.mod[m.functions["f1"]])
        mods2 = names(mr.mod[m.functions["f2"]])
        assert "gp" in mods1 and "hp" in mods1
        assert "gp" in mods2 and "hp" in mods2

    def test_relevance_filter_drops_int_only_objects(self):
        m, a, mr = build("""
        int counter;
        int main() { counter = counter + 1; return 0; }
        """)
        # counter holds no pointers: nothing pointer-relevant modified.
        assert names(mr.mod[m.functions["main"]]) == []

    def test_callsite_ref_includes_mod(self):
        m, a, mr = build("""
        int g; int *gp;
        void writer() { gp = &g; }
        int main() { writer(); return 0; }
        """)
        from repro.ir import Call
        call = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Call))
        # Weak chi re-reads the old contents -> mod subset of ref.
        assert set(names(mr.callsite_mod(call))) <= set(names(mr.callsite_ref(call)))
