"""DUG container unit tests."""

from repro.ir.instructions import Copy
from repro.ir.types import INT
from repro.ir.values import Constant, MemObject, ObjectKind, Temp
from repro.memssa.dug import DUG, MemPhiNode, StmtNode


def obj(name):
    return MemObject(name, INT, ObjectKind.GLOBAL)


def node():
    t = Temp("t", INT)
    return StmtNode(Copy(t, Constant(0, INT)))


class TestDUGContainer:
    def test_edge_dedup(self):
        dug = DUG()
        a, b = node(), node()
        o = obj("o")
        assert dug.add_mem_edge(a, o, b)
        assert not dug.add_mem_edge(a, o, b)
        assert dug.num_mem_edges() == 1

    def test_same_nodes_different_objects(self):
        dug = DUG()
        a, b = node(), node()
        o1, o2 = obj("o1"), obj("o2")
        assert dug.add_mem_edge(a, o1, b)
        assert dug.add_mem_edge(a, o2, b)
        assert dug.num_mem_edges() == 2
        assert dug.mem_defs_of(b, o1) == [a]
        assert dug.mem_defs_of(b, o2) == [a]

    def test_thread_edges_tracked_separately(self):
        dug = DUG()
        a, b, c = node(), node(), node()
        o = obj("o")
        dug.add_mem_edge(a, o, b)
        dug.add_mem_edge(a, o, c, thread_aware=True)
        assert len(dug.thread_edges) == 1
        assert dug.is_thread_edge(a, o, c)
        assert not dug.is_thread_edge(a, o, b)
        assert dug.thread_in_edges(c) == [(o, a)]
        assert dug.thread_in_edges(b) == []

    def test_stmt_node_lookup(self):
        dug = DUG()
        n = node()
        dug.add_node(n)
        assert dug.has_stmt(n.instr)
        assert dug.stmt_node(n.instr) is n

    def test_top_users_and_copies(self):
        dug = DUG()
        t1 = Temp("a", INT)
        t2 = Temp("b", INT)
        n = node()
        dug.add_top_user(t1, n)
        assert dug.top_users(t1) == [n]
        assert dug.top_users(t2) == []
        dug.add_top_copy(t1, t2)
        assert dug.copies_from(t1) == [(t1, t2)]
        assert dug.copies_from(t2) == []

    def test_interference_marks(self):
        dug = DUG()
        n = node()
        o = obj("o")
        assert not dug.is_interfering(n, o)
        dug.mark_interfering(n, o)
        assert dug.is_interfering(n, o)

    def test_node_identity_semantics(self):
        a, b = node(), node()
        assert a != b
        assert a == a
        assert len({a, b, a}) == 2

    def test_memphi_repr(self):
        from repro.ir.module import BasicBlock
        block = BasicBlock("bb")
        phi = MemPhiNode(block, obj("o"))
        assert "memphi" in repr(phi) and "bb" in repr(phi)
