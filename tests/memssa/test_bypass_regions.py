"""Fork bypass-region edge tests (Section 3.2 Step 2).

The pre-fork state may bypass the routine only within the spawner's
fork-join parallel region: uses after a definite join see the Pseq
chain (through the routine) alone.
"""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Load, Store
from repro.memssa import build_dug
from repro.memssa.dug import StmtNode


def build(src):
    m = compile_source(src)
    a = run_andersen(m)
    dug, builder = build_dug(m, a)
    return m, a, dug, builder


def load_on(m, builder, fn, obj):
    return [i for i in m.functions[fn].instructions()
            if isinstance(i, Load) and obj in builder.mus.get(i.id, set())]


def store_on(m, builder, fn, obj):
    return [i for i in m.functions[fn].instructions()
            if isinstance(i, Store) and obj in builder.chis.get(i.id, set())]


SRC = """
int val1; int val2; int A;
int *p = &A;
int *before_join;
int *after_join;
void *writer(void *arg) {
    *p = &val2;
    return null;
}
int main() {
    thread_t t;
    *p = &val1;
    fork(&t, writer, null);
    before_join = *p;
    join(t);
    after_join = *p;
    return 0;
}
"""


class TestBypassRegion:
    def test_bypass_reaches_use_inside_region(self):
        m, a, dug, builder = build(SRC)
        A = m.globals["A"]
        pre_store = store_on(m, builder, "main", A)[0]
        loads = load_on(m, builder, "main", A)
        inside = loads[0]   # before_join = *p
        defs = dug.mem_defs_of(dug.stmt_node(inside), A)
        assert dug.stmt_node(pre_store) in defs

    def test_bypass_stops_at_definite_join(self):
        m, a, dug, builder = build(SRC)
        A = m.globals["A"]
        pre_store = store_on(m, builder, "main", A)[0]
        loads = load_on(m, builder, "main", A)
        outside = loads[1]  # after_join = *p
        defs = dug.mem_defs_of(dug.stmt_node(outside), A)
        # The direct bypass edge must NOT cross the join; val1 can only
        # arrive via the routine's formal-in/out passthrough.
        assert dug.stmt_node(pre_store) not in defs

    def test_no_join_extends_region_to_exit(self):
        src = SRC.replace("join(t);\n    after_join = *p;", "after_join = *p;")
        m, a, dug, builder = build(src)
        A = m.globals["A"]
        pre_store = store_on(m, builder, "main", A)[0]
        loads = load_on(m, builder, "main", A)
        last = loads[-1]
        defs = dug.mem_defs_of(dug.stmt_node(last), A)
        assert dug.stmt_node(pre_store) in defs

    def test_multi_forked_unjoined_bypass_everywhere(self):
        src = """
int val1; int val2; int A;
int *p = &A;
int *out;
thread_t slot;
void *writer(void *arg) { *p = &val2; return null; }
int main() {
    int i;
    *p = &val1;
    for (i = 0; i < 3; i = i + 1) { fork(&slot, writer, null); }
    join(slot);
    out = *p;
    return 0;
}
"""
        # The single join cannot definitely join a multi-forked
        # thread (no symmetric loop): the pre-fork value must survive
        # to the final read (via the bypass edge from the def that
        # reaches the fork — here the loop-head memory phi).
        from repro.fsam import FSAM
        m = compile_source(src)
        result = FSAM(m).run()
        assert "val1" in result.global_pts_names("out")
        assert "val2" in result.global_pts_names("out")
