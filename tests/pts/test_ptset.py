"""Unit tests for the interned bitset points-to representation."""

import pytest

from repro.ir.types import INT
from repro.ir.values import MemObject, ObjectKind
from repro.pts import PTSet, PTUniverse


def obj(name):
    return MemObject(name, INT, ObjectKind.GLOBAL)


@pytest.fixture
def universe():
    return PTUniverse()


@pytest.fixture
def objs():
    return [obj(f"o{i}") for i in range(5)]


class TestInterning:
    def test_same_mask_same_instance(self, universe, objs):
        a = universe.make(objs[:3])
        b = universe.make(reversed(objs[:3]))
        assert a is b

    def test_empty_is_interned(self, universe, objs):
        assert universe.make([]) is universe.empty
        assert universe.singleton(objs[0]) - [objs[0]] is universe.empty

    def test_union_of_subset_returns_same_instance(self, universe, objs):
        big = universe.make(objs[:3])
        small = universe.make(objs[:2])
        # The solvers' O(1) delta check relies on this identity.
        assert big | small is big
        assert small | big is big
        assert big | universe.empty is big

    def test_union_cache_hot_pair(self, universe, objs):
        a = universe.make(objs[:2])
        b = universe.make(objs[2:4])
        assert (a | b) is (a | b)
        assert (a | b) is (b | a)

    def test_distinct_universes_do_not_share(self, objs):
        u1, u2 = PTUniverse(), PTUniverse()
        a = u1.make(objs[:2])
        b = u2.make(objs[:2])
        assert a is not b
        assert a == b  # still equal as plain sets of objects


class TestSetSemantics:
    def test_len_and_contains(self, universe, objs):
        s = universe.make(objs[:3])
        assert len(s) == 3
        assert objs[0] in s and objs[2] in s
        assert objs[4] not in s
        assert obj("foreign") not in s

    def test_iteration_yields_objects(self, universe, objs):
        s = universe.make([objs[2], objs[0]])
        assert set(s) == {objs[0], objs[2]}

    def test_equality_with_plain_sets(self, universe, objs):
        s = universe.make(objs[:2])
        assert s == {objs[0], objs[1]}
        assert {objs[0], objs[1]} == s
        assert s != {objs[0]}
        assert s != {objs[0], objs[2]}

    def test_operators_accept_plain_iterables(self, universe, objs):
        s = universe.make(objs[:2])
        assert s | {objs[2]} == set(objs[:3])
        assert s & {objs[1], objs[3]} == {objs[1]}
        assert s - [objs[0]] == {objs[1]}
        assert set() | s == s

    def test_subset_superset_disjoint(self, universe, objs):
        small = universe.make(objs[:2])
        big = universe.make(objs[:3])
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not big.issubset(small)
        assert small.isdisjoint(universe.make(objs[3:]))
        assert not small.isdisjoint(big)

    def test_truthiness_and_popcount(self, universe, objs):
        assert not universe.empty
        assert universe.singleton(objs[0])
        assert len(universe.empty) == 0
        assert len(universe.make(objs)) == len(objs)

    def test_hashable(self, universe, objs):
        a = universe.make(objs[:2])
        b = universe.make(objs[:2])
        assert len({a, b}) == 1


class TestStats:
    def test_dedup_ratio_counts_references_per_distinct_set(self, universe, objs):
        for _ in range(4):
            universe.make(objs[:2])
        stats = universe.stats()
        assert stats["distinct_sets"] >= 1
        assert stats["set_references"] >= 4
        assert stats["dedup_ratio"] > 1.0

    def test_objects_counted(self, universe, objs):
        universe.make(objs)
        assert universe.stats()["objects"] == len(objs)
