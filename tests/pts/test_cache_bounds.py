"""Regression tests: the PTUniverse memo caches stay bounded.

A long-lived process (the batch service's worker pool, a REPL, the
bench harness) pushes many solver runs through one universe. Before
the generation-clearing bound, the union/intersect memo caches grew
monotonically with every distinct pair of interned sets the process
ever produced; these tests pin the bound so it cannot silently
regress.
"""

import pytest

from repro.fsam.analysis import analyze_source
from repro.fsam.config import FSAMConfig
from repro.fsam.solver import SparseSolver
from repro.ir.types import INT
from repro.ir.values import MemObject, ObjectKind
from repro.pts import DEFAULT_CACHE_CAP, PTUniverse
from repro.workloads import get_workload


def objs(n):
    return [MemObject(f"o{i}", INT, ObjectKind.GLOBAL) for i in range(n)]


class TestUnitBound:
    def test_union_cache_generation_clears_at_cap(self):
        cap = 8
        universe = PTUniverse(cache_cap=cap)
        singles = [universe.singleton(o) for o in objs(40)]
        for i in range(len(singles) - 1):
            universe.union_masks(singles[i], singles[i + 1].mask)
            assert len(universe._union_cache) <= cap
        assert universe.cache_clears > 0

    def test_intersect_cache_generation_clears_at_cap(self):
        cap = 8
        universe = PTUniverse(cache_cap=cap)
        items = objs(40)
        # Overlapping windows: each intersection is a strict subset of
        # both operands, so the subset fast path cannot skip the memo.
        lefts = [universe.make(items[i:i + 3]) for i in range(36)]
        rights = [universe.make(items[i + 1:i + 4]) for i in range(36)]
        for a, b in zip(lefts, rights):
            got = universe.intersect_masks(a, b.mask)
            assert got.mask == a.mask & b.mask
            assert len(universe._intersect_cache) <= cap
        assert universe.cache_clears > 0

    def test_results_survive_a_clear(self):
        """Clearing loses only hits — operations stay correct and
        canonical (same interned instance for the same mask)."""
        cap = 4
        universe = PTUniverse(cache_cap=cap)
        singles = [universe.singleton(o) for o in objs(20)]
        first = universe.union_masks(singles[0], singles[1].mask)
        for i in range(2, len(singles) - 1):
            universe.union_masks(singles[i], singles[i + 1].mask)
        assert universe.cache_clears > 0
        again = universe.union_masks(singles[0], singles[1].mask)
        assert again is first
        assert again.mask == singles[0].mask | singles[1].mask

    def test_default_cap_applied(self):
        assert PTUniverse().cache_cap == DEFAULT_CACHE_CAP


class TestManyAnalysesOneUniverse:
    def test_repeated_solves_bounded(self):
        """Many solver runs over one shared pipeline (the batch-worker
        lifecycle) never push a memo cache past its cap."""
        source = get_workload("word_count").source(1)
        result = analyze_source(source, FSAMConfig())
        universe = result.solver.universe
        universe.cache_cap = 64
        universe._union_cache.clear()
        universe._intersect_cache.clear()
        for _ in range(5):
            solver = SparseSolver(result.module, result.dug, result.builder,
                                  result.andersen, config=FSAMConfig())
            solver.solve()
            assert len(universe._union_cache) <= 64
            assert len(universe._intersect_cache) <= 64

    def test_stats_report_cache_fields(self):
        universe = PTUniverse(cache_cap=16)
        stats = universe.stats()
        assert stats["cache_cap"] == 16
        assert stats["cache_clears"] == 0
        assert "union_cache_entries" in stats
        assert "intersect_cache_entries" in stats
