"""Unit tests for the observability layer (repro.obs)."""

import json
import tracemalloc

import pytest

from repro.obs import (
    NULL_OBS, NullObserver, Observer, PROFILE_SCHEMA, profile_to_csv,
    render_profile, validate_profile,
)


class TestCounters:
    def test_count_accumulates(self):
        obs = Observer()
        obs.count("a.x")
        obs.count("a.x", 4)
        assert obs.counter("a.x") == 5

    def test_unknown_counter_is_zero(self):
        assert Observer().counter("never.seen") == 0

    def test_gauge_keeps_latest(self):
        obs = Observer()
        obs.gauge("g", 1)
        obs.gauge("g", 7)
        assert obs.gauges["g"] == 7


class TestPhases:
    def test_nested_phases_build_a_tree(self):
        obs = Observer()
        with obs.phase("outer"):
            with obs.phase("inner"):
                pass
        assert [p.name for p in obs.phases] == ["outer"]
        assert [c.name for c in obs.phases[0].children] == ["inner"]

    def test_phase_seconds_flattens_paths(self):
        obs = Observer()
        with obs.phase("outer"):
            with obs.phase("inner"):
                pass
        seconds = obs.phase_seconds()
        assert set(seconds) == {"outer", "outer/inner"}
        assert seconds["outer"] >= seconds["outer/inner"] >= 0.0

    def test_repeated_phase_names_accumulate_in_flat_view(self):
        obs = Observer()
        with obs.phase("p"):
            pass
        with obs.phase("p"):
            pass
        assert len(obs.phases) == 2
        assert len(obs.phase_seconds()) == 1

    def test_total_seconds_sums_top_level(self):
        obs = Observer()
        with obs.phase("a"):
            pass
        with obs.phase("b"):
            pass
        assert obs.total_seconds() == pytest.approx(
            sum(p.seconds for p in obs.phases))

    def test_exceptions_propagate_out_of_phase(self):
        obs = Observer()
        with pytest.raises(ValueError):
            with obs.phase("boom"):
                raise ValueError("x")
        # The phase still closed cleanly.
        assert [p.name for p in obs.phases] == ["boom"]
        assert obs._stack == []


class TestMemoryTracking:
    def test_per_phase_peaks_with_tracemalloc(self):
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        try:
            obs = Observer()
            with obs.phase("alloc"):
                blob = ["x" * 64 for _ in range(2000)]
            assert obs.phases[0].peak_traced_bytes > 0
            assert obs.peak_traced_bytes >= obs.phases[0].peak_traced_bytes
            del blob
        finally:
            if not was_tracing:
                tracemalloc.stop()

    def test_run_peak_survives_per_phase_resets(self):
        """reset_peak between phases must not lose the run maximum."""
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        try:
            obs = Observer()
            with obs.phase("big"):
                blob = ["y" * 64 for _ in range(4000)]
                del blob
            big_peak = obs.phases[0].peak_traced_bytes
            with obs.phase("small"):
                pass
            assert obs.peak_traced_bytes >= big_peak
        finally:
            if not was_tracing:
                tracemalloc.stop()

    def test_no_tracemalloc_is_fine(self):
        assert not tracemalloc.is_tracing()
        obs = Observer()
        with obs.phase("p"):
            pass
        assert obs.phases[0].peak_traced_bytes == 0


class TestExport:
    def _sample(self):
        obs = Observer(name="sample")
        with obs.phase("solve"):
            with obs.phase("inner"):
                pass
        obs.count("stage.events", 3)
        obs.gauge("stage.size", 11)
        return obs

    def test_to_dict_matches_schema(self):
        doc = self._sample().to_dict()
        assert validate_profile(doc) is doc
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["name"] == "sample"
        assert doc["counters"] == {"stage.events": 3}
        assert doc["gauges"] == {"stage.size": 11}

    def test_to_json_round_trips(self):
        doc = json.loads(self._sample().to_json())
        validate_profile(doc)

    def test_csv_has_all_rows(self):
        csv_text = profile_to_csv(self._sample().to_dict())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "kind,name,value"
        kinds = {line.split(",")[0] for line in lines[1:]}
        assert kinds == {"phase_seconds", "phase_peak_traced_kb",
                         "counter", "gauge"}
        assert any(line.startswith("phase_seconds,solve/inner,")
                   for line in lines)

    def test_render_profile_mentions_everything(self):
        text = render_profile(self._sample().to_dict())
        assert "solve" in text
        assert "stage.events" in text
        assert "stage.size" in text


class TestValidation:
    def test_rejects_wrong_schema(self):
        doc = Observer().to_dict()
        doc["schema"] = "bogus/9"
        with pytest.raises(ValueError, match="schema"):
            validate_profile(doc)

    def test_rejects_negative_counter(self):
        doc = Observer().to_dict()
        doc["counters"] = {"x": -1}
        with pytest.raises(ValueError, match="counter"):
            validate_profile(doc)

    def test_rejects_phase_without_name(self):
        doc = Observer().to_dict()
        doc["phases"] = [{"seconds": 0.0, "peak_traced_kb": 0.0,
                          "rss_kb": None, "children": []}]
        with pytest.raises(ValueError, match="name"):
            validate_profile(doc)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_profile([])


class TestNullObserver:
    def test_is_disabled_and_free(self):
        assert NULL_OBS.enabled is False
        assert isinstance(NULL_OBS, NullObserver)
        NULL_OBS.count("anything", 5)
        NULL_OBS.gauge("anything", 5)
        with NULL_OBS.phase("p"):
            pass
        assert NULL_OBS.counters == {}
        assert NULL_OBS.gauges == {}
        assert NULL_OBS.phases == []

    def test_phase_scope_is_shared(self):
        assert NULL_OBS.phase("a") is NULL_OBS.phase("b")

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_OBS.phase("p"):
                raise RuntimeError("x")


class TestDeepNesting:
    def test_render_profile_survives_depth_20(self):
        # Regression: the shrinking name column went to a negative
        # field width at depth >= 15, which is a ValueError in
        # format(). Deep phase trees must render, just unaligned.
        obs = Observer(name="deep")
        from contextlib import ExitStack
        with ExitStack() as stack:
            for i in range(20):
                stack.enter_context(obs.phase(f"level{i}"))
        text = render_profile(obs.to_dict())
        assert "level19" in text

    def test_validate_accepts_deep_tree(self):
        obs = Observer()
        from contextlib import ExitStack
        with ExitStack() as stack:
            for i in range(20):
                stack.enter_context(obs.phase(f"level{i}"))
        validate_profile(obs.to_dict())


class TestRssKb:
    def test_platform_decides_units_not_magnitude(self, monkeypatch):
        # ru_maxrss is bytes on macOS, KiB on Linux. A >4 GiB RSS on
        # Linux must come back exact, not divided by 1024 because it
        # happens to look byte-sized.
        from repro import obs as obs_module

        class FakeUsage:
            ru_maxrss = 8 << 32  # 32 TiB-as-KiB on Linux, 32 GiB on mac

        class FakeResource:
            RUSAGE_SELF = 0

            @staticmethod
            def getrusage(_who):
                return FakeUsage()

        monkeypatch.setattr(obs_module, "_resource", FakeResource)
        monkeypatch.setattr(obs_module.sys, "platform", "linux", raising=False)
        assert obs_module._rss_kb() == 8 << 32
        monkeypatch.setattr(obs_module.sys, "platform", "darwin", raising=False)
        assert obs_module._rss_kb() == (8 << 32) // 1024

    def test_no_resource_module_is_none(self, monkeypatch):
        from repro import obs as obs_module
        monkeypatch.setattr(obs_module, "_resource", None)
        assert obs_module._rss_kb() is None


class TestNullScopeContract:
    """The phase scope yields None under NullObserver; call sites must
    not dereference the yielded record."""

    def test_null_phase_yields_none(self):
        with NULL_OBS.phase("p") as record:
            assert record is None

    def test_real_phase_yields_record(self):
        obs = Observer()
        with obs.phase("p") as record:
            assert record is not None
            assert record.name == "p"

    def test_no_call_site_binds_the_phase_record(self):
        # Instrumented code must treat the yielded record as opaque
        # (None under NULL_OBS), so no call site may bind it with
        # `with obs.phase(...) as rec`. Scan the sources.
        import pathlib
        import re
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        pattern = re.compile(r"\.phase\([^)]*\)\s+as\s+\w+")
        offenders = []
        for path in src.rglob("*.py"):
            if path.name == "obs.py":
                continue  # the implementation itself may self-test
            for i, line in enumerate(path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append(f"{path.name}:{i}: {line.strip()}")
        assert not offenders, offenders
