"""Histogram + metrics-document tests: bucket indexing, merge
algebra (merge-of-splits == whole), percentile behaviour, the
``repro.metrics/1`` validators, and Observer's observe/merge plumbing."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    HISTOGRAM_BASE, Histogram, NullObserver, Observer, validate_metrics,
    validate_metrics_stream,
)
from repro.schemas import METRICS_SCHEMA

SETTINGS = settings(max_examples=100, deadline=None)

positive_values = st.floats(min_value=1e-9, max_value=1e9,
                            allow_nan=False, allow_infinity=False)
value_lists = st.lists(positive_values, min_size=1, max_size=60)


def _filled(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


class TestBucketing:
    def test_bucket_index_consistent_with_bounds(self):
        # Every observed value must land in a bucket whose exported
        # (lower, upper] range actually contains it — the float-boundary
        # fixup in bucket_index exists exactly for this invariant.
        for exp in range(-30, 31):
            for nudge in (0.999999999, 1.0, 1.000000001):
                value = (HISTOGRAM_BASE ** exp) * nudge
                i = Histogram.bucket_index(value)
                assert HISTOGRAM_BASE ** i <= value < HISTOGRAM_BASE ** (i + 1)

    def test_nonpositive_and_nan_go_to_zeros(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-1.5)
        hist.observe(float("nan"))
        assert hist.zeros == 3
        assert hist.count == 3
        assert hist.sum == 0.0
        assert not hist.buckets

    def test_four_buckets_per_doubling(self):
        # base 2**0.25 means values 1 and 2 are exactly 4 buckets apart.
        assert Histogram.bucket_index(2.0) - Histogram.bucket_index(1.0) == 4


class TestPercentiles:
    def test_empty(self):
        hist = Histogram()
        assert hist.percentile(0.5) is None
        doc = hist.to_dict()
        assert doc["p50"] == 0.0 and doc["count"] == 0

    def test_single_value_all_percentiles(self):
        hist = _filled([0.25])
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(q) == pytest.approx(0.25)

    def test_clamped_to_min_max(self):
        hist = _filled([0.1, 0.2, 0.4, 0.8])
        assert hist.percentile(0.0) >= hist.min
        assert hist.percentile(1.0) <= hist.max

    @given(value_lists)
    @SETTINGS
    def test_monotonic_and_bounded(self, values):
        hist = _filled(values)
        qs = [i / 20.0 for i in range(21)]
        estimates = [hist.percentile(q) for q in qs]
        for lo, hi in zip(estimates, estimates[1:]):
            assert lo <= hi
        assert all(hist.min <= e <= hist.max for e in estimates)

    @given(value_lists)
    @SETTINGS
    def test_p50_within_bucket_error(self, values):
        # The cumulative walk lands in the bucket holding the sample at
        # rank ceil(n/2); linear interpolation stays inside that bucket,
        # so the estimate is within one bucket width (base - 1 ~= 19%)
        # of that sample. Small extra slack for float edges.
        hist = _filled(values)
        ordered = sorted(values)
        covering = ordered[(len(ordered) + 1) // 2 - 1]
        estimate = hist.percentile(0.5)
        assert covering / HISTOGRAM_BASE / 1.01 <= estimate \
            <= covering * HISTOGRAM_BASE * 1.01


class TestMerge:
    @given(value_lists, st.integers(min_value=1, max_value=5))
    @SETTINGS
    def test_merge_of_splits_equals_whole(self, values, pieces):
        # The core mergeability law: splitting a stream across workers
        # and merging the per-worker histograms gives exactly the
        # histogram of the whole stream (exact on counts and buckets,
        # approximate only on float sum).
        whole = _filled(values)
        merged = Histogram()
        for k in range(pieces):
            merged.merge(_filled(values[k::pieces]) if values[k::pieces]
                         else Histogram())
        assert merged.count == whole.count
        assert merged.zeros == whole.zeros
        assert merged.buckets == whole.buckets
        assert merged.min == whole.min
        assert merged.max == whole.max
        assert merged.sum == pytest.approx(whole.sum)
        for q in (0.5, 0.95, 0.99):
            assert merged.percentile(q) == pytest.approx(whole.percentile(q))

    def test_merge_empty_identity(self):
        hist = _filled([0.1, 0.3])
        before = hist.to_dict()
        hist.merge(Histogram())
        assert hist.to_dict() == before

    @given(value_lists)
    @SETTINGS
    def test_dict_round_trip_exact(self, values):
        hist = _filled(values)
        doc = json.loads(json.dumps(hist.to_dict()))
        assert Histogram.from_dict(doc).to_dict() == hist.to_dict()


class TestObserverMetrics:
    def test_observe_and_export(self):
        obs = Observer(name="unit", track_memory=False)
        obs.observe("pool.run_seconds", 0.5)
        obs.observe("pool.run_seconds", 1.0)
        obs.count("cache.hits", 2)
        obs.gauge("cache.hit_rate", 1.0)
        doc = obs.to_metrics_dict()
        validate_metrics(doc)
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["histograms"]["pool.run_seconds"]["count"] == 2
        assert doc["counters"]["cache.hits"] == 2
        assert doc["gauges"]["cache.hit_rate"] == 1.0

    def test_merge_metrics_builds_phase_histograms(self):
        worker = Observer(name="w0", track_memory=False)
        with worker.phase("sparse_solve"):
            pass
        worker.count("solver.iterations", 7)
        parent = Observer(name="batch", track_memory=False)
        parent.merge_metrics(worker.to_metrics_dict())
        parent.merge_metrics(worker.to_metrics_dict())
        doc = parent.to_metrics_dict()
        assert doc["counters"]["solver.iterations"] == 14
        assert doc["histograms"]["phase.sparse_solve"]["count"] == 2
        assert doc["phase_seconds"]["sparse_solve"] >= 0.0

    def test_remerged_rollup_does_not_double_observe(self):
        # Merging a doc that already carries phase.* histograms must
        # take the histograms, not re-derive samples from its
        # phase_seconds (that would double-count on rollup-of-rollups).
        worker = Observer(name="w0", track_memory=False)
        with worker.phase("sparse_solve"):
            pass
        mid = Observer(name="mid", track_memory=False)
        mid.merge_metrics(worker.to_metrics_dict())
        top = Observer(name="top", track_memory=False)
        top.merge_metrics(mid.to_metrics_dict())
        doc = top.to_metrics_dict()
        assert doc["histograms"]["phase.sparse_solve"]["count"] == 1

    def test_null_observer_noops(self):
        null = NullObserver()
        null.observe("x", 1.0)
        null.merge_metrics({"anything": True})
        doc = null.to_metrics_dict()
        validate_metrics(doc)
        assert doc["histograms"] == {} and doc["counters"] == {}


class TestValidators:
    def _doc(self, **overrides):
        obs = Observer(name="v", track_memory=False)
        obs.observe("latency", 0.25)
        obs.count("requests", 1)
        doc = obs.to_metrics_dict()
        doc.update(overrides)
        return doc

    def test_accepts_real_doc(self):
        validate_metrics(self._doc())

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_metrics(self._doc(schema="repro.obs/1"))

    def test_rejects_negative_bucket_count(self):
        doc = self._doc()
        doc["histograms"]["latency"]["buckets"][0][2] = -1
        with pytest.raises(ValueError, match="bucket"):
            validate_metrics(doc)

    def test_rejects_unsorted_bounds(self):
        doc = self._doc()
        hist = doc["histograms"]["latency"]
        hist["buckets"] = [[4, 2.0, 1], [2, 1.4142, 1]]
        hist["count"] = 2
        with pytest.raises(ValueError, match="sorted"):
            validate_metrics(doc)

    def test_rejects_count_mismatch(self):
        doc = self._doc()
        doc["histograms"]["latency"]["count"] = 99
        with pytest.raises(ValueError, match="count"):
            validate_metrics(doc)

    def test_stream_rejects_counter_regression(self):
        first = self._doc()
        second = self._doc()
        second["counters"]["requests"] = 0
        with pytest.raises(ValueError, match="regressed"):
            validate_metrics_stream([first, second])

    def test_stream_accepts_monotonic(self):
        first = self._doc()
        second = self._doc()
        second["counters"]["requests"] = 5
        validate_metrics_stream([first, second])

    def test_histogram_sum_must_be_finite(self):
        doc = self._doc()
        doc["histograms"]["latency"]["sum"] = math.inf
        with pytest.raises(ValueError):
            validate_metrics(doc)
