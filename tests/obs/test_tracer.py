"""Unit tests for the event-tracing layer (repro.trace)."""

import io
import json

import pytest

from repro.trace import (
    NULL_TRACER, Derivation, NullTracer, TRACE_SCHEMA, Tracer, mem_fact,
    profile_to_chrome, top_fact, validate_trace, validate_trace_jsonl,
)


class TestFactKeys:
    def test_keys_are_hashable_and_distinct(self):
        assert top_fact(1, 2) == ("top", 1, 2)
        assert mem_fact(1, 2, 3) == ("mem", 1, 2, 3)
        assert len({top_fact(1, 2), mem_fact(1, 2, 3)}) == 2

    def test_derivation_root(self):
        assert Derivation("addr", None, None).is_root
        assert not Derivation("load", None, top_fact(1, 2)).is_root


class TestTracer:
    def test_emit_assigns_kind_and_seq(self):
        tracer = Tracer(name="t")
        tracer.emit("a", x=1)
        tracer.emit("b", y=2)
        events = list(tracer.events)
        assert [e["ev"] for e in events] == ["a", "b"]
        assert [e["seq"] for e in events] == [1, 2]

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit("e", i=i)
        assert tracer.emitted == 5
        assert tracer.dropped == 2
        assert [e["i"] for e in tracer.events] == [2, 3, 4]

    def test_kinds_summary(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.emit("a")
        tracer.emit("b")
        assert tracer.kinds() == {"a": 2, "b": 1}

    def test_streaming_sink_never_drops(self):
        sink = io.StringIO()
        tracer = Tracer(capacity=2, sink=sink)
        for i in range(5):
            tracer.emit("e", i=i)
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [e["i"] for e in lines] == [0, 1, 2, 3, 4]

    def test_jsonl_round_trip_validates(self):
        tracer = Tracer(name="t")
        tracer.emit("a", x=1)
        tracer.emit("b")
        text = tracer.to_jsonl()
        assert validate_trace_jsonl(text) == 2
        header = json.loads(text.splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["name"] == "t"


class TestNullTracer:
    def test_disabled_and_free(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        NULL_TRACER.emit("anything", huge=list(range(3)))
        assert NULL_TRACER.emitted == 0
        assert len(NULL_TRACER.events) == 0

    def test_real_tracer_is_enabled(self):
        assert Tracer().enabled is True


class TestValidation:
    def _doc(self, **overrides):
        header = {"schema": TRACE_SCHEMA, "name": "", "events": 1,
                  "emitted": 1, "dropped": 0}
        header.update(overrides)
        return [header, {"ev": "a", "seq": 1}]

    def test_accepts_valid(self):
        assert validate_trace(self._doc()) == 1

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_trace(self._doc(schema="nope/9"))

    def test_rejects_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            validate_trace([])

    def test_rejects_event_count_mismatch(self):
        with pytest.raises(ValueError, match="events"):
            validate_trace(self._doc(events=7))

    def test_rejects_non_increasing_seq(self):
        doc = [{"schema": TRACE_SCHEMA, "name": "", "events": 2,
                "emitted": 2, "dropped": 0},
               {"ev": "a", "seq": 2}, {"ev": "b", "seq": 2}]
        with pytest.raises(ValueError, match="increasing"):
            validate_trace(doc)

    def test_rejects_event_without_kind(self):
        doc = [{"schema": TRACE_SCHEMA, "name": "", "events": 1,
                "emitted": 1, "dropped": 0}, {"seq": 1}]
        with pytest.raises(ValueError, match="ev kind"):
            validate_trace(doc)

    def test_rejects_broken_json_line(self):
        with pytest.raises(ValueError, match="not JSON"):
            validate_trace_jsonl('{"schema": "x"}\n{oops\n')


class TestChromeExport:
    def _profile(self):
        from repro.obs import Observer
        obs = Observer(name="x")
        with obs.phase("outer"):
            with obs.phase("inner"):
                pass
        with obs.phase("second"):
            pass
        return obs.to_dict()

    def test_layout_is_sequential_and_nested(self):
        doc = self._profile()
        chrome = profile_to_chrome(doc)
        events = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
        by_name = {e["name"]: e for e in events}
        assert set(by_name) == {"outer", "inner", "second"}
        # Children start at the parent's start; siblings are serial.
        assert by_name["inner"]["ts"] == by_name["outer"]["ts"]
        assert by_name["second"]["ts"] >= \
            by_name["outer"]["ts"] + by_name["outer"]["dur"] - 1e-6
        assert all(e["dur"] >= 0 for e in events)

    def test_has_process_metadata_and_serialises(self):
        chrome = profile_to_chrome(self._profile())
        meta = [e for e in chrome["traceEvents"] if e.get("ph") == "M"]
        assert meta and meta[0]["args"]["name"] == "x"
        json.dumps(chrome)  # must be plain JSON-able
