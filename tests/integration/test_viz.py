"""DOT exporter tests."""

from repro import viz
from repro.cfg import ICFG
from repro.frontend import compile_source
from repro.fsam import FSAM

SRC = """
int g; int *p;
void *w(void *arg) { p = &g; return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    p = &g;
    join(t);
    return 0;
}
"""


class TestViz:
    def test_dug_dot(self):
        m = compile_source(SRC)
        r = FSAM(m).run()
        dot = viz.dug_to_dot(r.dug)
        assert dot.startswith("digraph DUG")
        assert dot.rstrip().endswith("}")
        assert "->" in dot

    def test_dug_dot_thread_edges_highlighted(self):
        m = compile_source(SRC)
        r = FSAM(m).run()
        dot = viz.dug_to_dot(r.dug)
        if r.dug.thread_edges:
            assert "color=red" in dot

    def test_dug_dot_max_nodes(self):
        m = compile_source(SRC)
        r = FSAM(m).run()
        dot = viz.dug_to_dot(r.dug, max_nodes=3)
        assert dot.count("[label=") <= 3 + dot.count("->")

    def test_icfg_dot_filtered(self):
        m = compile_source(SRC)
        r = FSAM(m).run()
        icfg = ICFG(m, r.andersen.callgraph)
        dot = viz.icfg_to_dot(icfg, function_names=["w"])
        assert "digraph ICFG" in dot
        assert "main" not in dot.split("digraph")[1].split("\n")[3] if True else True

    def test_thread_tree_dot(self):
        m = compile_source(SRC)
        r = FSAM(m).run()
        dot = viz.thread_tree_to_dot(r.thread_model)
        assert "t0" in dot and "t1" in dot
        assert "t0 -> t1" in dot
