"""CLI smoke tests (driving repro.cli.main directly)."""

import json

import pytest

from repro.cli import main

SAMPLE = """
mutex_t mu;
int g;
int *shared;
int *c;
void *w(void *arg) { shared = &g; return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    c = shared;
    join(t);
    return 0;
}
"""

ABBA = """
mutex_t la; mutex_t lb;
int g; int *p;
void *t1_fn(void *arg) { lock(&la); lock(&lb); p = &g; unlock(&lb); unlock(&la); return null; }
void *t2_fn(void *arg) { lock(&lb); lock(&la); p = &g; unlock(&la); unlock(&lb); return null; }
int main() {
    thread_t a; thread_t b;
    fork(&a, t1_fn, null); fork(&b, t2_fn, null);
    join(a); join(b);
    return 0;
}
"""


@pytest.fixture
def sample(tmp_path):
    path = tmp_path / "sample.mc"
    path.write_text(SAMPLE)
    return str(path)


@pytest.fixture
def abba(tmp_path):
    path = tmp_path / "abba.mc"
    path.write_text(ABBA)
    return str(path)


class TestCLI:
    def test_analyze_text(self, sample, capsys):
        assert main(["analyze", sample]) == 0
        out = capsys.readouterr().out
        assert "points-to at loads" in out
        assert "shared" in out

    def test_analyze_json(self, sample, capsys):
        assert main(["analyze", sample, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "stats" in payload and "loads" in payload
        assert any("g" in l["pts"] for l in payload["loads"])

    def test_races_exit_code(self, sample, capsys):
        assert main(["races", sample]) == 2  # the unprotected pair
        assert "race" in capsys.readouterr().out

    def test_deadlocks(self, abba, capsys):
        assert main(["deadlocks", abba]) == 2
        assert "lock-order cycle" in capsys.readouterr().out

    def test_deadlocks_json(self, abba, capsys):
        assert main(["deadlocks", abba, "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["first"] in ("la", "lb")

    def test_tsan(self, sample, capsys):
        assert main(["tsan", sample]) == 0
        assert "instrumentation avoided" in capsys.readouterr().out

    def test_escape(self, sample, capsys):
        assert main(["escape", sample]) == 0
        out = capsys.readouterr().out
        assert "shared: shared" in out

    def test_threads(self, sample, capsys):
        assert main(["threads", sample]) == 0
        assert "abstract thread" in capsys.readouterr().out

    def test_ir_dump(self, sample, capsys):
        assert main(["ir", sample]) == 0
        assert "define main" in capsys.readouterr().out

    def test_dot_outputs(self, sample, capsys):
        for what in ("dug", "icfg", "threads"):
            assert main(["dot", sample, "--what", what]) == 0
            assert "digraph" in capsys.readouterr().out

    def test_compare(self, sample, capsys):
        assert main(["compare", sample]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_ablation_flags(self, sample, capsys):
        assert main(["analyze", sample, "--no-lock", "--no-interleaving"]) == 0


FIG1A = """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
"""


@pytest.fixture
def fig1a(tmp_path):
    path = tmp_path / "fig1a.mc"
    path.write_text(FIG1A)
    return str(path)


class TestTracingCLI:
    def test_explain_variable(self, fig1a, capsys):
        assert main(["explain", fig1a, "c"]) == 0
        out = capsys.readouterr().out
        assert "THREAD-VF" in out
        assert "MHP" in out
        assert "P-ADDR" in out

    def test_explain_variable_restricted_to_object(self, fig1a, capsys):
        assert main(["explain", fig1a, "c", "--obj", "z"]) == 0
        out = capsys.readouterr().out
        assert "z in" in out
        assert "THREAD-VF" not in out

    def test_explain_unknown_fact_fails(self, fig1a, capsys):
        assert main(["explain", fig1a, "c", "--obj", "nothing"]) == 1
        assert "no recorded fact" in capsys.readouterr().out

    def test_explain_legacy_line_mode(self, fig1a, capsys):
        assert main(["explain", fig1a, "--line", "14", "--target", "y"]) == 0
        assert "read y" in capsys.readouterr().out

    def test_explain_without_var_or_line_errors(self, fig1a, capsys):
        assert main(["explain", fig1a]) == 2

    def test_trace_stdout_validates(self, fig1a, capsys):
        from repro.trace import validate_trace_jsonl
        assert main(["trace", fig1a]) == 0
        out = capsys.readouterr().out
        assert validate_trace_jsonl(out) > 0

    def test_trace_to_file(self, fig1a, tmp_path, capsys):
        from repro.trace import validate_trace_jsonl
        out_path = tmp_path / "out.jsonl"
        assert main(["trace", fig1a, "--out", str(out_path)]) == 0
        assert validate_trace_jsonl(out_path.read_text()) > 0
        assert "derive" in capsys.readouterr().out

    def test_trace_flag_on_analyze(self, fig1a, tmp_path):
        from repro.trace import validate_trace_jsonl
        out_path = tmp_path / "t.jsonl"
        assert main(["analyze", fig1a, "--trace", str(out_path)]) == 0
        assert validate_trace_jsonl(out_path.read_text()) > 0

    def test_diff_profile(self, fig1a, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["stats", fig1a, "--profile", str(a)]) == 0
        assert main(["stats", fig1a, "--profile", str(b)]) == 0
        capsys.readouterr()
        assert main(["diff-profile", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "profile diff" in out
        assert "sparse_solve" in out

    def test_diff_profile_json(self, fig1a, tmp_path, capsys):
        a = tmp_path / "a.json"
        assert main(["stats", fig1a, "--profile", str(a)]) == 0
        capsys.readouterr()
        assert main(["diff-profile", str(a), str(a), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counter_drift"] == {}
        assert {p["status"] for p in payload["phases"]} == {"common"}

    def test_stats_chrome(self, fig1a, capsys):
        assert main(["stats", fig1a, "--chrome"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "sparse_solve" in names


class TestSubcommandSmoke:
    """One exit-code + stdout-shape check per ``repro`` subcommand.

    The deeper behaviour of each command is pinned by the classes
    above (and tests/service/); this class exists so that *every*
    ``cmd_*`` handler has at least one direct test and a new
    subcommand without one is conspicuous."""

    def test_analyze(self, sample, capsys):
        assert main(["analyze", sample]) == 0
        assert "points-to at loads" in capsys.readouterr().out

    def test_races(self, sample, capsys):
        assert main(["races", sample]) == 2
        assert "race candidate" in capsys.readouterr().out

    def test_deadlocks(self, abba, capsys):
        assert main(["deadlocks", abba]) == 2
        assert "deadlock" in capsys.readouterr().out

    def test_tsan(self, sample, capsys):
        assert main(["tsan", sample]) == 0
        assert "accesses" in capsys.readouterr().out

    def test_escape(self, sample, capsys):
        assert main(["escape", sample]) == 0
        assert "thread-local" in capsys.readouterr().out

    def test_threads(self, sample, capsys):
        assert main(["threads", sample]) == 0
        assert "abstract thread" in capsys.readouterr().out

    def test_ir(self, sample, capsys):
        assert main(["ir", sample]) == 0
        assert "define" in capsys.readouterr().out

    def test_dot(self, sample, capsys):
        assert main(["dot", sample]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_explain(self, fig1a, capsys):
        assert main(["explain", fig1a, "c"]) == 0
        assert "P-ADDR" in capsys.readouterr().out

    def test_trace(self, fig1a, capsys):
        assert main(["trace", fig1a]) == 0
        assert '"schema"' in capsys.readouterr().out

    def test_diff_profile(self, fig1a, tmp_path, capsys):
        a = tmp_path / "a.json"
        assert main(["stats", fig1a, "--profile", str(a)]) == 0
        capsys.readouterr()
        assert main(["diff-profile", str(a), str(a)]) == 0
        assert "profile diff" in capsys.readouterr().out

    def test_compare(self, sample, capsys):
        assert main(["compare", sample]) == 0
        assert "NONSPARSE" in capsys.readouterr().out

    def test_stats(self, sample, capsys):
        assert main(["stats", sample]) == 0
        assert "sparse_solve" in capsys.readouterr().out

    def test_bench(self, capsys):
        assert main(["bench", "--table", "1"]) == 0
        assert "word_count" in capsys.readouterr().out

    def test_batch(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            {"requests": [{"workload": "word_count"}]}))
        assert main(["batch", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "batch spec.json" in out
        assert "word_count" in out

    def test_serve(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"workload": "word_count"}\n'))
        assert main(["serve"]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["status"] == "ok"

    def test_report(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            {"requests": [{"workload": "word_count",
                           "config": {"profile": True}}]}))
        out_path = tmp_path / "batch.json"
        assert main(["batch", str(spec), "--out", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["report", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "pool.run_seconds" in out


class TestBatchServeCLI:
    """Deeper ``repro batch`` / ``repro serve`` behaviour."""

    @pytest.fixture
    def spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "cache": str(tmp_path / "cache"),
            "requests": [{"workload": "word_count"},
                         {"workload": "kmeans"}],
        }))
        return str(path)

    def test_cold_then_warm_json(self, spec, capsys):
        assert main(["batch", spec, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["aggregate"]["solver_iterations"] > 0
        assert main(["batch", spec, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["aggregate"]["solver_iterations"] == 0
        assert warm["counters"]["batch.cache_hits"] == 2

    def test_workers_flag_overrides_spec(self, spec, capsys):
        assert main(["batch", spec, "--workers", "2"]) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_csv_output(self, spec, capsys):
        assert main(["batch", spec, "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("name,digest,status")
        assert "word_count" in out

    def test_report_written_to_file(self, spec, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["batch", spec, "--out", str(out_path)]) == 0
        from repro.service import validate_batch_report
        validate_batch_report(json.loads(out_path.read_text()))

    def test_degraded_batch_exits_3(self, tmp_path, capsys):
        spec = tmp_path / "doomed.json"
        spec.write_text(json.dumps({"requests": [
            {"workload": "raytrace",
             "config": {"time_budget": 1e-9}}]}))
        assert main(["batch", str(spec)]) == 3
        assert "degraded" in capsys.readouterr().out

    def test_file_entry_relative_to_spec(self, tmp_path, capsys):
        (tmp_path / "tiny.mc").write_text("int main() { return 0; }")
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"requests": [{"file": "tiny.mc"}]}))
        assert main(["batch", str(spec)]) == 0
        assert "tiny.mc" in capsys.readouterr().out

    def test_serve_with_cache(self, tmp_path, monkeypatch, capsys):
        import io
        lines = '{"workload": "word_count", "id": 1}\n' \
                '{"workload": "word_count", "id": 2}\n'
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", "--cache", str(tmp_path / "c")]) == 0
        responses = [json.loads(line)
                     for line in capsys.readouterr().out.splitlines()]
        assert [r["cache"] for r in responses] == ["miss", "hit"]

    def test_batch_slow_ms_captures_exemplars(self, spec, capsys):
        assert main(["batch", spec, "--slow-ms", "0"]) == 0
        out = capsys.readouterr().out
        assert "slow-request exemplars" in out
        assert "r0000" in out

    def test_serve_metrics_stream(self, tmp_path, monkeypatch, capsys):
        import io
        from repro.obs import validate_metrics_stream
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"workload": "word_count"}\n'
                        '{"workload": "word_count"}\n'))
        metrics_path = tmp_path / "metrics.jsonl"
        assert main(["serve", "--cache", str(tmp_path / "c"),
                     "--metrics-interval", "0",
                     "--metrics-out", str(metrics_path)]) == 0
        docs = [json.loads(line)
                for line in metrics_path.read_text().splitlines()]
        validate_metrics_stream(docs)
        assert len(docs) >= 2
        assert docs[-1]["counters"]["serve.requests"] == 2
        capsys.readouterr()
        assert main(["report", str(metrics_path)]) == 0
        assert "telemetry report" in capsys.readouterr().out
