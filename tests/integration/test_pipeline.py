"""Whole-pipeline integration tests."""

import pytest

from repro.baseline import NonSparseAnalysis
from repro.clients import detect_races
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig, analyze_source
from repro.interp import Interpreter
from repro.workloads import get_workload


class TestEndToEnd:
    def test_analyze_source_helper(self):
        r = analyze_source("int x; int *p; int main() { p = &x; return 0; }")
        assert r.global_pts_names("p") == {"x"}

    def test_all_phases_appear_in_stats(self):
        r = analyze_source("""
        mutex_t mu;
        int g; int *p;
        void *w(void *a) { lock(&mu); p = &g; unlock(&mu); return null; }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """)
        stats = r.stats()
        times = stats["phase_times"]
        for phase in ("pre_analysis", "icfg", "thread_oblivious_dug",
                      "thread_model", "interleaving", "lock_analysis",
                      "value_flow", "sparse_solve"):
            assert phase in times

    def test_ablations_drop_their_phase(self):
        src = "int main() { return 0; }"
        r = analyze_source(src, FSAMConfig(lock_analysis=False))
        assert "lock_analysis" not in r.phase_times

    def test_workload_through_everything(self):
        src = get_workload("word_count").source(1)
        module = compile_source(src)
        fsam = FSAM(module).run()
        module2 = compile_source(src)
        baseline = NonSparseAnalysis(module2).run()
        assert fsam.points_to_entries() < baseline.points_to_entries()

    def test_interpreter_agrees_with_fsam_on_workload(self):
        src = get_workload("kmeans").source(1)
        module = compile_source(src)
        fsam = FSAM(module).run()
        interp = Interpreter(module, seed=0, max_steps=200000)
        from repro.interp import ExecutionLimit
        try:
            interp.run()
        except ExecutionLimit:
            pass
        for obs in interp.observations:
            static = {o.name for o in fsam.pts(obs.load.dst)}
            assert obs.target.name in static

    def test_race_detector_on_workload(self):
        src = get_workload("automount").source(1)
        races = detect_races(compile_source(src))
        # automount guards tables but shares now-running state through
        # unlocked globals in expire path? At minimum: no crash and a
        # deterministic list.
        assert isinstance(races, list)

    def test_timeout_applies_to_fsam(self):
        from repro.fsam.config import AnalysisTimeout
        src = get_workload("raytrace").source(2)
        module = compile_source(src)
        with pytest.raises(AnalysisTimeout):
            FSAM(module, FSAMConfig(time_budget=0.0001)).run()

    def test_determinism(self):
        src = get_workload("ferret").source(1)
        r1 = FSAM(compile_source(src)).run()
        r2 = FSAM(compile_source(src)).run()
        assert r1.points_to_entries() == r2.points_to_entries()
        assert len(r1.dug.thread_edges) == len(r2.dug.thread_edges)
