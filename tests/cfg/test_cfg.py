"""Per-function CFG tests."""

from repro.cfg import CFG
from repro.frontend import compile_source


def cfg_of(src, fn="main"):
    m = compile_source(src)
    return CFG(m.functions[fn])


class TestCFG:
    def test_single_block(self):
        cfg = cfg_of("int main() { return 0; }")
        assert len(list(cfg.graph.nodes())) == 1
        assert cfg.exits == [cfg.entry]

    def test_if_diamond(self):
        cfg = cfg_of("int main() { int x; if (1) { x = 1; } else { x = 2; } return x; }")
        assert len(cfg.successors(cfg.entry)) == 2

    def test_loop_has_back_edge(self):
        cfg = cfg_of("int main() { int i; while (i < 3) { i = i + 1; } return i; }")
        assert cfg.loop_blocks, "a while loop must produce loop blocks"

    def test_multiple_exits(self):
        cfg = cfg_of("int main() { if (1) { return 1; } return 2; }")
        assert len(cfg.exits) == 2

    def test_domtree_entry(self):
        cfg = cfg_of("int main() { int x; if (1) { x = 1; } return x; }")
        assert cfg.domtree.entry is cfg.entry

    def test_frontiers_nonempty_for_diamond(self):
        cfg = cfg_of("int main() { int x; if (1) { x = 1; } else { x = 2; } return x; }")
        assert any(cfg.frontiers[b] for b in cfg.frontiers)

    def test_reachable_blocks_covers_all(self):
        cfg = cfg_of("int main() { int i; for (i = 0; i < 2; i = i + 1) { } return 0; }")
        assert cfg.reachable_blocks() == set(cfg.graph.nodes())
