"""Call-graph tests (on-the-fly construction by the pre-analysis)."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Call, Fork


def analyze(src):
    m = compile_source(src)
    return m, run_andersen(m)


class TestCallGraph:
    def test_direct_edges(self):
        m, a = analyze("""
        void f() { }
        int main() { f(); return 0; }
        """)
        call = next(i for i in m.functions["main"].instructions() if isinstance(i, Call))
        assert a.callgraph.callees(call) == {m.functions["f"]}
        assert call in a.callgraph.callsites_of(m.functions["f"])

    def test_indirect_resolution_through_memory(self):
        m, a = analyze("""
        int g;
        void h1(int *p) { *p = 1; }
        void h2(int *p) { *p = 2; }
        int *table[2];
        int main() {
            int *fp;
            table[0] = h1;
            table[1] = h2;
            fp = table[0];
            fp(&g);
            return 0;
        }
        """)
        call = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Call) and i.args)
        callees = {f.name for f in a.callgraph.callees(call)}
        assert callees == {"h1", "h2"}  # monolithic array: both

    def test_fork_edges(self):
        m, a = analyze("""
        void *w(void *x) { return null; }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """)
        fork = next(i for i in m.functions["main"].instructions() if isinstance(i, Fork))
        assert {f.name for f in a.callgraph.callees(fork)} == {"w"}

    def test_recursion_detected(self):
        m, a = analyze("""
        int f(int n) { if (n < 1) { return 0; } return f(n - 1); }
        int main() { return f(3); }
        """)
        assert a.callgraph.in_cycle(m.functions["f"])
        assert not a.callgraph.in_cycle(m.functions["main"])

    def test_mutual_recursion_same_scc(self):
        m, a = analyze("""
        int g(int n);
        """ .replace("int g(int n);", "") + """
        int f(int n) { if (n < 1) { return 0; } return g(n - 1); }
        int g(int n) { return f(n); }
        int main() { return f(3); }
        """)
        cg = a.callgraph
        assert cg.in_cycle(m.functions["f"])
        assert cg.in_cycle(m.functions["g"])
        assert cg.scc_id(m.functions["f"]) == cg.scc_id(m.functions["g"])

    def test_site_in_cycle(self):
        m, a = analyze("""
        int f(int n) { if (n < 1) { return 0; } return f(n - 1); }
        int main() { return f(3); }
        """)
        rec_call = next(i for i in m.functions["f"].instructions() if isinstance(i, Call))
        outer_call = next(i for i in m.functions["main"].instructions() if isinstance(i, Call))
        assert a.callgraph.site_in_cycle(rec_call)
        assert not a.callgraph.site_in_cycle(outer_call)

    def test_reachable_functions(self):
        m, a = analyze("""
        void leaf() { }
        void mid() { leaf(); }
        void orphan() { }
        int main() { mid(); return 0; }
        """)
        reach = a.callgraph.reachable_functions([m.functions["main"]])
        names = {f.name for f in reach}
        assert "leaf" in names and "mid" in names
        assert "orphan" not in names
