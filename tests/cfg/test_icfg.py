"""ICFG construction tests."""

from repro.andersen import run_andersen
from repro.cfg import ICFG, NodeKind
from repro.cfg.icfg import EdgeKind
from repro.frontend import compile_source
from repro.ir import Call, Fork, Join


def build(src):
    m = compile_source(src)
    andersen = run_andersen(m)
    return m, ICFG(m, andersen.callgraph)


SRC = """
int g;
void callee(int *p) { *p = 1; }
void *worker(void *a) { g = 2; return null; }
int main() {
    thread_t t;
    callee(&g);
    fork(&t, worker, null);
    join(t);
    return g;
}
"""


class TestICFG:
    def test_entry_exit_per_function(self):
        m, icfg = build(SRC)
        for name in ("main", "callee", "worker"):
            fn = m.functions[name]
            assert icfg.entry_of(fn).kind is NodeKind.ENTRY
            assert icfg.exit_of(fn).kind is NodeKind.EXIT

    def test_call_split_into_call_and_retsite(self):
        m, icfg = build(SRC)
        call = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Call))
        cnode = icfg.node_of(call)
        rnode = icfg.retsite_of(call)
        assert cnode.kind is NodeKind.CALL
        assert rnode.kind is NodeKind.RETSITE
        # Fallthrough intra edge always present.
        assert rnode in icfg.successors(cnode)

    def test_call_and_ret_edges_to_callee(self):
        m, icfg = build(SRC)
        call = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Call))
        callee = m.functions["callee"]
        cnode = icfg.node_of(call)
        assert icfg.entry_of(callee) in icfg.successors(cnode)
        assert icfg.edge_kind(cnode, icfg.entry_of(callee)) is EdgeKind.CALL
        rnode = icfg.retsite_of(call)
        assert rnode in icfg.successors(icfg.exit_of(callee))
        assert icfg.edge_kind(icfg.exit_of(callee), rnode) is EdgeKind.RET

    def test_fork_has_no_interprocedural_edges(self):
        m, icfg = build(SRC)
        fork = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Fork))
        fnode = icfg.node_of(fork)
        worker = m.functions["worker"]
        # Paper Section 3.1: no outgoing edges for a fork site beyond
        # the intra fall-through.
        assert icfg.entry_of(worker) not in icfg.successors(fnode)
        assert all(icfg.edge_kind(fnode, s) is EdgeKind.INTRA
                   for s in icfg.successors(fnode))

    def test_join_is_plain_statement_node(self):
        m, icfg = build(SRC)
        join = next(i for i in m.functions["main"].instructions()
                    if isinstance(i, Join))
        jnode = icfg.node_of(join)
        assert jnode.kind is NodeKind.STMT
        assert len(icfg.successors(jnode)) == 1

    def test_indirect_call_edges_added_after_resolution(self):
        src = """
        int g;
        void h(int *p) { *p = 1; }
        int main() { int *fp; fp = h; fp(&g); return 0; }
        """
        m = compile_source(src)
        andersen = run_andersen(m)
        icfg = ICFG(m, andersen.callgraph)
        # The call may have been direct-resolved by mem2reg; either way
        # the callee entry must be reachable from main's entry.
        entry = icfg.entry_of(m.functions["main"])
        reach = icfg.graph.reachable_from(entry)
        assert icfg.entry_of(m.functions["h"]) in reach
