"""The measurement window must close when the analysis returns.

Regression tests for a harness bug where the clock (and tracemalloc
snapshot) were taken *after* stats extraction, billing the post-run
walk over every points-to set to the analysis itself.
"""

import time

from repro.fsam.config import AnalysisTimeout
from repro.harness.measure import Measurement, _measured, measure_fsam
from repro.obs import Observer

EXTRACTION_DELAY = 0.25


class SlowStatsResult:
    """A fake analysis result whose stats extraction is slow."""

    def __init__(self):
        self.phase_times = {"sparse_solve": 0.001}
        self.dug = None

    def points_to_entries(self):
        time.sleep(EXTRACTION_DELAY)
        return 42


class TestWindow:
    def test_stats_extraction_not_billed(self):
        m = _measured("w", "fsam", SlowStatsResult)
        assert m.points_to_entries == 42
        assert m.seconds < EXTRACTION_DELAY / 2

    def test_oot_still_reports_time(self):
        def thunk():
            raise AnalysisTimeout("budget")
        m = _measured("w", "fsam", thunk)
        assert m.oot
        assert m.seconds >= 0
        assert m.points_to_entries == 0

    def test_observer_peak_folded_into_memory(self):
        obs = Observer(name="w")
        # Simulate per-phase tracking having reset tracemalloc's peak:
        # the observer's folded maximum must win over the raw snapshot.
        obs.peak_traced_bytes = 64 * 1024 * 1024
        m = _measured("w", "fsam", SlowStatsResult, obs=obs)
        assert m.peak_memory_mb >= 64.0
        assert m.profile is not None
        assert m.profile["schema"] == "repro.obs/1"

    def test_measure_fsam_attaches_profile(self):
        src = "int A; int *p; int main() { p = &A; return 0; }"
        m = measure_fsam("tiny", src)
        assert isinstance(m, Measurement)
        assert m.profile is not None
        names = [p["name"] for p in m.profile["phases"]]
        assert "sparse_solve" in names
        assert m.profile["counters"]["solver.iterations"] > 0
