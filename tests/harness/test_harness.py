"""Measurement and table-rendering tests (small scales)."""

from repro.harness import (
    BASELINE_BUDGET, BENCH_SCALES, measure_fsam, measure_nonsparse,
    render_figure12, render_table1, render_table2, run_figure12, run_table1,
    run_table2,
)
from repro.harness.scales import SMOKE_SCALES
from repro.workloads import get_workload

SMALL = {"word_count": 1, "kmeans": 1}


class TestMeasure:
    def test_fsam_measurement_fields(self):
        src = get_workload("kmeans").source(1)
        m = measure_fsam("kmeans", src)
        assert m.analysis == "fsam"
        assert m.seconds > 0
        assert m.points_to_entries > 0
        assert not m.oot
        assert m.phase_times and "sparse_solve" in m.phase_times

    def test_nonsparse_measurement(self):
        src = get_workload("kmeans").source(1)
        m = measure_nonsparse("kmeans", src, budget=60)
        assert m.analysis == "nonsparse"
        assert m.points_to_entries > 0

    def test_oot_flagged(self):
        src = get_workload("radiosity").source(2)
        m = measure_nonsparse("radiosity", src, budget=0.001)
        assert m.oot
        assert m.display_time() == "OOT"


class TestTables:
    def test_table1_rows(self):
        rows = run_table1(scales=SMOKE_SCALES)
        assert len(rows) == 10
        text = render_table1(rows)
        assert "word_count" in text and "x264" in text
        assert "380659" in text  # the paper total

    def test_table2_small(self):
        rows = run_table2(scales=SMALL, budget=120, names=list(SMALL))
        text = render_table2(rows)
        assert "word_count" in text and "speedup" in text
        for row in rows:
            assert not row["fsam"].oot

    def test_figure12_small(self):
        rows = run_figure12(scales=SMALL, names=["word_count"])
        text = render_figure12(rows)
        assert "No-Interleaving" in text
        assert "No-Value-Flow" in text
        assert "No-Lock" in text

    def test_bench_scales_cover_all(self):
        assert set(BENCH_SCALES) == set(
            ["word_count", "kmeans", "radiosity", "automount", "ferret",
             "bodytrack", "httpd_server", "mt_daapd", "raytrace", "x264"])
        assert BASELINE_BUDGET > 0
