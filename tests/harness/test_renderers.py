"""Renderer unit tests with synthetic measurements (no analysis runs)."""

from repro.harness.measure import Measurement
from repro.harness.tables import render_figure12, render_table2


def m(name, analysis, seconds, entries, oot=False, solve=0.01, edges=0):
    return Measurement(name=name, analysis=analysis, seconds=seconds,
                       peak_memory_mb=seconds * 10.0,
                       points_to_entries=entries, oot=oot,
                       phase_times={"sparse_solve": solve, "value_flow": 0.0},
                       thread_edges=edges)


class TestTable2Renderer:
    def test_normal_rows_and_average(self):
        rows = [
            {"benchmark": "a", "fsam": m("a", "fsam", 1.0, 100),
             "nonsparse": m("a", "nonsparse", 10.0, 1000)},
            {"benchmark": "b", "fsam": m("b", "fsam", 2.0, 200),
             "nonsparse": m("b", "nonsparse", 8.0, 2000)},
        ]
        text = render_table2(rows)
        assert "10.0x" in text          # per-row speedup
        assert "speedup 7.0x" in text   # average of 10x and 4x
        assert "OOT" not in text

    def test_oot_rows_excluded_from_average(self):
        rows = [
            {"benchmark": "big", "fsam": m("big", "fsam", 5.0, 100),
             "nonsparse": m("big", "nonsparse", 30.0, 0, oot=True)},
        ]
        text = render_table2(rows)
        assert "OOT" in text
        assert "NONSPARSE OOT on: big" in text

    def test_display_helpers(self):
        fine = m("x", "fsam", 1.5, 10)
        dead = m("x", "nonsparse", 30.0, 0, oot=True)
        assert fine.display_time() == "1.50"
        assert dead.display_time() == "OOT"
        assert dead.display_memory() == "OOT"


class TestFigure12Renderer:
    def test_slowdowns_and_edges(self):
        base = m("prog", "fsam", 1.0, 10, solve=0.1, edges=10)
        rows = [{
            "benchmark": "prog",
            "base": base,
            "No-Interleaving": m("prog", "fsam", 1.2, 10, solve=0.12, edges=20),
            "No-Value-Flow": m("prog", "fsam", 3.0, 10, solve=0.50, edges=500),
            "No-Lock": m("prog", "fsam", 1.0, 10, solve=0.11, edges=12),
        }]
        text = render_figure12(rows)
        assert "5.00x" in text        # 0.50 / 0.10 solve slowdown
        assert "No-Value-Flow 500(50.0x)" in text
        assert "Average slowdowns" in text
