"""Profile regression comparison (repro diff-profile)."""

import pytest

from repro.harness import diff_profiles, render_profile_diff
from repro.obs import Observer


def make_profile(name="run", counters=None, gauges=None, phases=("a", "b")):
    obs = Observer(name=name)
    for phase in phases:
        with obs.phase(phase):
            pass
    for key, value in (counters or {}).items():
        obs.count(key, value)
    for key, value in (gauges or {}).items():
        obs.gauge(key, value)
    return obs.to_dict()


def make_metrics(name="run", counters=None, observations=(0.5, 1.0),
                 phases=("a", "b")):
    obs = Observer(name=name, track_memory=False)
    for phase in phases:
        with obs.phase(phase):
            pass
    for key, value in (counters or {}).items():
        obs.count(key, value)
    for value in observations:
        obs.observe("pool.run_seconds", value)
    return obs.to_metrics_dict()


class TestDiff:
    def test_common_phases_get_ratios(self):
        diff = diff_profiles(make_profile(), make_profile())
        assert {d.path for d in diff.phases} == {"a", "b"}
        for delta in diff.phases:
            assert delta.status == "common"
            assert delta.seconds_ratio is None or delta.seconds_ratio > 0

    def test_added_and_removed_phases(self):
        diff = diff_profiles(make_profile(phases=("a", "old")),
                             make_profile(phases=("a", "new")))
        by_path = {d.path: d for d in diff.phases}
        assert by_path["old"].status == "removed"
        assert by_path["new"].status == "added"
        assert by_path["a"].status == "common"

    def test_counter_drift(self):
        diff = diff_profiles(
            make_profile(counters={"x": 1, "same": 5, "gone": 2}),
            make_profile(counters={"x": 3, "same": 5, "fresh": 7}))
        drift = diff.changed_counters()
        assert drift == {"x": (1, 3), "gone": (2, None), "fresh": (None, 7)}
        assert "same" not in drift

    def test_gauge_drift(self):
        diff = diff_profiles(make_profile(gauges={"g": 1.0}),
                             make_profile(gauges={"g": 2.5}))
        assert diff.changed_gauges() == {"g": (1.0, 2.5)}

    def test_rejects_malformed_document(self):
        with pytest.raises(ValueError):
            diff_profiles({"schema": "bogus"}, make_profile())

    def test_nested_phases_flatten_to_paths(self):
        obs = Observer(name="n")
        with obs.phase("outer"):
            with obs.phase("inner"):
                pass
        diff = diff_profiles(obs.to_dict(), obs.to_dict())
        assert {d.path for d in diff.phases} == {"outer", "outer/inner"}


class TestMetricsDocs:
    def test_metrics_doc_on_both_sides(self):
        diff = diff_profiles(make_metrics(), make_metrics())
        assert {d.path for d in diff.phases} == {"a", "b"}
        # Metrics snapshots carry no per-phase memory: peaks read 0.
        assert all(d.peak_kb_a == 0.0 and d.peak_kb_b == 0.0
                   for d in diff.phases)

    def test_metrics_doc_against_profile(self):
        diff = diff_profiles(make_profile(phases=("a",)),
                             make_metrics(phases=("a", "extra")))
        by_path = {d.path: d for d in diff.phases}
        assert by_path["a"].status == "common"
        assert by_path["extra"].status == "added"

    def test_histogram_drift(self):
        diff = diff_profiles(make_metrics(observations=(0.5,)),
                             make_metrics(observations=(0.5, 4.0, 4.0)))
        drift = diff.changed_histograms()
        assert "pool.run_seconds" in drift
        before, after = drift["pool.run_seconds"]
        assert before[0] == 1 and after[0] == 3
        assert after[2] >= before[2]     # p99 grew

    def test_identical_histograms_not_drift(self):
        diff = diff_profiles(make_metrics(), make_metrics())
        assert diff.changed_histograms() == {}

    def test_rejects_malformed_metrics(self):
        bad = make_metrics()
        bad["histograms"]["pool.run_seconds"]["count"] = -1
        with pytest.raises(ValueError):
            diff_profiles(bad, make_metrics())

    def test_render_includes_histogram_drift(self):
        text = render_profile_diff(
            diff_profiles(make_metrics(observations=(0.5,)),
                          make_metrics(observations=(0.5, 4.0))))
        assert "histogram drift" in text
        assert "pool.run_seconds" in text
        assert "n=1" in text and "n=2" in text


class TestRender:
    def test_mentions_everything(self):
        diff = diff_profiles(
            make_profile(name="old", counters={"c": 1}, phases=("a", "gone")),
            make_profile(name="new", counters={"c": 2}, phases=("a", "born")))
        text = render_profile_diff(diff)
        assert "old" in text and "new" in text
        assert "(removed)" in text and "(added)" in text
        assert "c" in text and "1 -> 2" in text

    def test_no_drift_is_stated(self):
        text = render_profile_diff(diff_profiles(make_profile(),
                                                 make_profile()))
        assert "no drift" in text


class TestQueryZeroDefaults:
    """Profiles predating the demand-query engine have no query.*
    section; diffing them against a current profile must read 0 -> N,
    not refuse or report an unknown baseline."""

    def make_query_metrics(self):
        obs = Observer(name="with-queries", track_memory=False)
        obs.count("query.requests", 3)
        obs.count("query.cache_hits", 2)
        obs.observe("query.seconds", 0.002)
        obs.observe("pool.run_seconds", 0.5)
        return obs.to_metrics_dict()

    def test_missing_query_counters_diff_as_zero(self):
        diff = diff_profiles(make_metrics(), self.make_query_metrics())
        drift = diff.changed_counters()
        assert drift["query.requests"] == (0, 3)
        assert drift["query.cache_hits"] == (0, 2)

    def test_missing_query_histogram_diffs_as_empty(self):
        diff = diff_profiles(make_metrics(), self.make_query_metrics())
        before, after = diff.changed_histograms()["query.seconds"]
        assert before == (0, 0.0, 0.0)
        assert after[0] == 1

    def test_non_query_counters_keep_none_baseline(self):
        new = make_metrics(counters={"serve.errors": 1})
        diff = diff_profiles(make_metrics(), new)
        assert diff.changed_counters()["serve.errors"] == (None, 1)

    def test_render_survives_query_only_drift(self):
        text = render_profile_diff(
            diff_profiles(make_metrics(), self.make_query_metrics()))
        assert "query.requests" in text
        assert "0 -> 3" in text
