"""Telemetry loading + rendering (repro report)."""

import json

import pytest

from repro.fsam.config import FSAMConfig
from repro.harness import load_telemetry, render_telemetry_report
from repro.obs import Observer
from repro.service.batch import run_batch
from repro.service.cache import ArtifactCache
from repro.service.requests import AnalysisRequest
from repro.workloads import get_workload


def _batch_report(**kwargs):
    request = AnalysisRequest(name="word_count",
                              source=get_workload("word_count").source(1),
                              config=FSAMConfig(profile=True))
    return run_batch([request], workers=1, slow_ms=0, **kwargs)


def _metrics_doc(name="m"):
    obs = Observer(name=name, track_memory=False)
    obs.observe("pool.run_seconds", 0.5)
    obs.count("batch.requests", 1)
    with obs.phase("sparse_solve"):
        pass
    return obs.to_metrics_dict()


class TestLoad:
    def test_batch_report(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(_batch_report().to_dict()))
        source = load_telemetry(str(path))
        assert source.kind == "batch"
        assert source.rows and source.exemplars
        assert source.metrics["histograms"]["pool.run_seconds"]["count"] == 1

    def test_batch_report_without_metrics_rejected(self, tmp_path):
        doc = _batch_report().to_dict()
        del doc["metrics"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="metrics"):
            load_telemetry(str(path))

    def test_single_metrics_doc(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(_metrics_doc()))
        source = load_telemetry(str(path))
        assert source.kind == "metrics"
        assert source.snapshots == 1

    def test_jsonl_stream_takes_final_snapshot(self, tmp_path):
        obs = Observer(name="serve", track_memory=False)
        lines = []
        for _ in range(3):
            obs.count("serve.requests")
            lines.append(json.dumps(obs.to_metrics_dict()))
        path = tmp_path / "metrics.jsonl"
        path.write_text("\n".join(lines) + "\n")
        source = load_telemetry(str(path))
        assert source.snapshots == 3
        assert source.metrics["counters"]["serve.requests"] == 3

    def test_jsonl_stream_counter_regression_rejected(self, tmp_path):
        first = _metrics_doc()
        second = _metrics_doc()
        second["counters"]["batch.requests"] = 0
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(first) + "\n" + json.dumps(second) + "\n")
        with pytest.raises(ValueError, match="regressed"):
            load_telemetry(str(path))

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "repro.table2/1"}))
        with pytest.raises(ValueError, match="unsupported schema"):
            load_telemetry(str(path))

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(json.dumps(_metrics_doc()) + "\nnot json\n")
        with pytest.raises(ValueError, match="line 2"):
            load_telemetry(str(path))


class TestRender:
    def test_batch_source_renders_everything(self, tmp_path):
        report = _batch_report(cache=ArtifactCache(tmp_path))
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(report.to_dict()))
        text = render_telemetry_report(load_telemetry(str(path)))
        assert "1 request(s)" in text
        assert "cache hit rate" in text
        assert "pool.run_seconds" in text
        assert "sparse_solve" in text
        assert "slowest requests" in text
        assert "r0000" in text

    def test_metrics_stream_source(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps(_metrics_doc()) + "\n"
                        + json.dumps(_metrics_doc()) + "\n")
        text = render_telemetry_report(load_telemetry(str(path)))
        assert "final of 2 snapshots" in text
        assert "pool.run_seconds" in text

    def test_top_limits_slowest_rows(self, tmp_path):
        report = _batch_report()
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(report.to_dict()))
        text = render_telemetry_report(load_telemetry(str(path)), top=0)
        assert "slowest requests (top 0)" in text


class TestQuerySummary:
    def _query_metrics(self):
        obs = Observer(name="q", track_memory=False)
        obs.count("serve.requests", 3)
        obs.count("query.requests", 2)
        obs.count("query.cache_hits", 1)
        obs.count("query.cache_misses", 1)
        obs.count("query.solve_iterations", 4)
        obs.observe("query.request_seconds", 0.003)
        return obs.to_metrics_dict()

    def test_query_counters_render_summary_line(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(self._query_metrics()))
        text = render_telemetry_report(load_telemetry(str(path)))
        assert "demand queries: 2" in text
        assert "1 hit / 1 miss" in text
        assert "4 solver iteration(s)" in text
        # The latency histogram joins the generic histogram table.
        assert "query.request_seconds" in text

    def test_no_queries_no_summary_line(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_metrics_doc()))
        text = render_telemetry_report(load_telemetry(str(path)))
        assert "demand queries" not in text
