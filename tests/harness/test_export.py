"""CSV/JSON export tests (synthetic measurements)."""

import csv
import io
import json

from repro.harness.export import figure12_to_csv, table2_to_csv, table2_to_json
from repro.harness.measure import Measurement


def m(analysis, seconds, entries, oot=False, edges=3):
    return Measurement(name="p", analysis=analysis, seconds=seconds,
                       peak_memory_mb=1.0, points_to_entries=entries,
                       oot=oot, phase_times={"sparse_solve": seconds / 2},
                       thread_edges=edges)


ROWS = [
    {"benchmark": "alpha", "fsam": m("fsam", 1.0, 10),
     "nonsparse": m("nonsparse", 5.0, 100)},
    {"benchmark": "beta", "fsam": m("fsam", 2.0, 20),
     "nonsparse": m("nonsparse", 30.0, 0, oot=True)},
]


class TestTable2Export:
    def test_json_roundtrip(self):
        payload = json.loads(table2_to_json(ROWS))
        assert payload[0]["benchmark"] == "alpha"
        assert payload[0]["nonsparse"]["seconds"] == 5.0
        assert payload[1]["nonsparse"]["oot"] is True
        assert payload[1]["nonsparse"]["seconds"] is None

    def test_csv_shape(self):
        text = table2_to_csv(ROWS)
        records = list(csv.reader(io.StringIO(text)))
        assert records[0][0] == "benchmark"
        assert records[1][0] == "alpha"
        assert records[2][5] == "1"    # oot flag
        assert records[2][2] == ""     # no nonsparse time on OOT


class TestFigure12Export:
    def test_csv_columns(self):
        rows = [{
            "benchmark": "alpha",
            "base": m("fsam", 1.0, 10, edges=7),
            "No-Interleaving": m("fsam", 1.2, 10, edges=9),
            "No-Value-Flow": m("fsam", 3.0, 10, edges=90),
            "No-Lock": m("fsam", 1.1, 10, edges=8),
        }]
        text = figure12_to_csv(rows)
        records = list(csv.reader(io.StringIO(text)))
        assert "no_value_flow_edges" in records[0]
        row = dict(zip(records[0], records[1]))
        assert row["base_edges"] == "7"
        assert row["no_value_flow_edges"] == "90"
