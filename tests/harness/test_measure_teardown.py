"""Regression tests: measurement teardown must not leak tracemalloc."""

import tracemalloc

import pytest

from repro.fsam.config import AnalysisTimeout
from repro.harness.measure import _measured


def test_crashing_thunk_stops_tracemalloc():
    # A thunk failure other than AnalysisTimeout used to skip the
    # tracemalloc.stop() call, leaving tracing on (and every later
    # allocation in the process taxed) for the rest of the run.
    def boom():
        raise ValueError("analysis crashed")

    assert not tracemalloc.is_tracing()
    with pytest.raises(ValueError):
        _measured("crash", "fsam", boom)
    assert not tracemalloc.is_tracing()


def test_timeout_thunk_stops_tracemalloc_and_reports_oot():
    def timeout():
        raise AnalysisTimeout("budget exceeded")

    m = _measured("slow", "fsam", timeout)
    assert m.oot
    assert not tracemalloc.is_tracing()


def test_successful_thunk_stops_tracemalloc():
    class FakeResult:
        def points_to_entries(self):
            return 7

    m = _measured("ok", "fsam", FakeResult)
    assert not tracemalloc.is_tracing()
    assert m.points_to_entries == 7
    assert not m.oot
