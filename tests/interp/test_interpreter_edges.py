"""Interpreter edge-case tests: faults, unresolved calls, phis."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, SegmentationFault, run_program
from repro.interp.interpreter import Cell, Pointer


class TestSegfaults:
    def test_null_load_halts_execution(self):
        m = compile_source("""
int *p;
int g; int after;
int main() {
    g = *p;        // segfault: p is null
    after = 1;     // never executes
    return 0;
}
""")
        interp = Interpreter(m, seed=0)
        interp.run()  # returns the (empty) observations, like a crash
        after = interp.globals[m.globals["after"].id]
        assert after.scalar is None  # the write never happened

    def test_null_store_halts_execution(self):
        m = compile_source("""
int *p;
int after;
int main() {
    *p = 3;
    after = 1;
    return 0;
}
""")
        interp = Interpreter(m, seed=0)
        interp.run()
        assert interp.globals[m.globals["after"].id].scalar is None

    def test_internal_exception_type(self):
        m = compile_source("int *p; int g; int main() { g = *p; return 0; }")
        interp = Interpreter(m, seed=0)
        with pytest.raises(SegmentationFault):
            interp._run_loop()


class TestRuntimeModel:
    def test_pointer_abstract_object_for_fields(self):
        from repro.ir.types import StructType, INT
        from repro.ir.values import MemObject, ObjectKind
        s = StructType("s", [("a", INT), ("b", INT)])
        obj = MemObject("o", s, ObjectKind.GLOBAL)
        cell = Cell(obj)
        ptr = Pointer(cell, 1)
        assert ptr.abstract_object() is obj.field(1, INT)
        assert Pointer(cell).abstract_object() is obj

    def test_phi_uses_predecessor_block(self):
        m = compile_source("""
int r;
int main() {
    int x;
    if (r) { x = 1; } else { x = 2; }
    r = x;
    return r;
}
""")
        interp = Interpreter(m, seed=0)
        interp.run()
        # r starts 0 -> else branch -> x = 2.
        assert interp.globals[m.globals["r"].id].scalar == 2

    def test_unresolved_function_pointer_call_is_noop(self):
        m = compile_source("""
int g;
int main() {
    int *fp;
    int r;
    fp = null;
    r = fp(3);
    g = 1;
    return 0;
}
""")
        interp = Interpreter(m, seed=0)
        interp.run()
        # Calling through null is treated as an external no-op call.
        assert interp.globals[m.globals["g"].id].scalar == 1

    def test_division_by_zero_yields_zero(self):
        m = compile_source("""
int r;
int main() { int a; a = 3; r = a / 0 + a % 0; return r; }
""")
        interp = Interpreter(m, seed=0)
        interp.run()
        assert interp.globals[m.globals["r"].id].scalar == 0

    def test_deterministic_given_seed(self):
        src = """
int g; int x; int y;
int *p; int *c;
void *w(void *arg) { p = &y; return null; }
int main() {
    thread_t t;
    p = &x;
    fork(&t, w, null);
    c = p;
    join(t);
    return 0;
}
"""
        runs = []
        for _ in range(3):
            m = compile_source(src)
            obs = run_program(m, seed=11)
            runs.append(tuple(o.target.name for o in obs))
        assert runs[0] == runs[1] == runs[2]
