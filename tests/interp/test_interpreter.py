"""Concrete interpreter tests."""

import pytest

from repro.frontend import compile_source
from repro.interp import ExecutionLimit, Interpreter, run_program


def observed_names(obs):
    return {o.target.name for o in obs}


class TestSequentialExecution:
    def test_simple_pointer_chain(self):
        m = compile_source("""
int x; int *p; int *q;
int main() { p = &x; q = p; return 0; }
""")
        obs = run_program(m)
        assert "x" in observed_names(obs)

    def test_arithmetic_and_branching(self):
        m = compile_source("""
int r;
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 5; i = i + 1) {
        if (i % 2 == 0) { s = s + i; }
    }
    r = s;
    return r;
}
""")
        run_program(m)  # terminates without error

    def test_struct_fields_runtime(self):
        m = compile_source("""
struct pair { int *a; int *b; };
int x; int y;
struct pair g;
int *out;
int main() {
    g.a = &x;
    g.b = &y;
    out = g.b;
    return 0;
}
""")
        obs = run_program(m)
        # The load of g.b observes the field object of y's pointer? No:
        # it observes the *target* y.
        assert "y" in observed_names(obs)

    def test_function_calls_and_returns(self):
        m = compile_source("""
int x;
int *give() { return &x; }
int *out; int *readback;
int main() { out = give(); readback = out; return 0; }
""")
        obs = run_program(m)
        assert "x" in observed_names(obs)

    def test_recursion_executes(self):
        m = compile_source("""
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main() { return fact(5); }
""")
        run_program(m)

    def test_malloc_linked_list(self):
        m = compile_source("""
struct n { int v; struct n *next; };
struct n *head;
int main() {
    struct n *a; struct n *b;
    a = malloc(struct n);
    b = malloc(struct n);
    a->next = b;
    head = a;
    head = head->next;
    return 0;
}
""")
        obs = run_program(m)
        assert any(name.startswith("malloc") for name in observed_names(obs))

    def test_step_budget(self):
        m = compile_source("int main() { while (1) { } return 0; }")
        with pytest.raises(ExecutionLimit):
            run_program(m, max_steps=500)


class TestThreads:
    FORKJOIN = """
int g; int *p;
void *w(void *arg) { p = &g; return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    join(t);
    return 0;
}
"""

    def test_fork_runs_routine(self):
        m = compile_source(self.FORKJOIN)
        interp = Interpreter(m, seed=1)
        interp.run()
        assert len(interp.threads) == 2
        assert all(t.done for t in interp.threads)

    def test_join_blocks_until_done(self):
        # Under every schedule, the routine finishes before main exits.
        for seed in range(5):
            m = compile_source(self.FORKJOIN)
            interp = Interpreter(m, seed=seed)
            interp.run()
            assert all(t.done for t in interp.threads)

    def test_fork_loop_spawns_many(self):
        m = compile_source("""
thread_t tids[4];
void *w(void *arg) { return null; }
int main() { int i;
    for (i = 0; i < 4; i = i + 1) { fork(&tids[i], w, null); }
    for (i = 0; i < 4; i = i + 1) { join(tids[i]); }
    return 0; }
""")
        interp = Interpreter(m, seed=3)
        interp.run()
        assert len(interp.threads) == 5

    def test_schedules_differ(self):
        src = """
int g; int x; int y;
int *p;
int *c;
void *w(void *arg) { p = &y; return null; }
int main() {
    thread_t t;
    p = &x;
    fork(&t, w, null);
    c = p;
    join(t);
    return 0;
}
"""
        seen = set()
        for seed in range(20):
            m = compile_source(src)
            obs = run_program(m, seed=seed)
            # the final read of p (c = p) sees x or y depending on order
            seen |= observed_names(obs)
        assert {"x", "y"} <= seen

    def test_locks_mutually_exclude(self):
        m = compile_source("""
mutex_t mu;
int counter;
void *w(void *arg) {
    lock(&mu);
    counter = counter + 1;
    unlock(&mu);
    return null;
}
int main() {
    thread_t a; thread_t b;
    fork(&a, w, null);
    fork(&b, w, null);
    join(a); join(b);
    return counter;
}
""")
        interp = Interpreter(m, seed=7)
        interp.run()
        assert all(t.done for t in interp.threads)
        assert not interp.locks_held

    def test_deadlock_detected(self):
        m = compile_source("""
mutex_t mu;
int main() {
    lock(&mu);
    lock(&mu);
    return 0;
}
""")
        with pytest.raises(ExecutionLimit, match="deadlock"):
            run_program(m)

    def test_fork_arg_passed(self):
        m = compile_source("""
int x;
int *keep; int *readback;
void *w(void *arg) { keep = arg; return null; }
int main() {
    thread_t t;
    fork(&t, w, &x);
    join(t);
    readback = keep;
    return 0;
}
""")
        obs = run_program(m, seed=2)
        assert "x" in observed_names(obs)
