"""Exhaustive schedule exploration: FSAM's Figure 1 results are not
just sound but *tight* — the union of observations over every
interleaving equals the analysis answer."""

import pytest

from repro.frontend import compile_source
from repro.fsam import analyze_source
from repro.interp import explore_schedules, observed_names_for_line

FIG1A = """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
"""

FIG1C = """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
    return null;
}
int main() {
    thread_t t;
    *p = r;
    fork(&t, foo, null);
    join(t);
    c = *p;
    return 0;
}
"""


class TestExploration:
    def test_sequential_single_schedule(self):
        result = explore_schedules(
            lambda: compile_source("int x; int *p; int *q; "
                                   "int main() { p = &x; q = p; return 0; }"))
        assert result.schedules_run == 1
        assert result.exhausted

    def test_two_thread_program_enumerates_many(self):
        result = explore_schedules(lambda: compile_source(FIG1A))
        assert result.schedules_run > 1
        assert result.exhausted
        assert result.truncated == 0

    def test_schedule_cap_respected(self):
        result = explore_schedules(lambda: compile_source(FIG1A),
                                   max_schedules=3)
        assert result.schedules_run <= 3
        assert not result.exhausted


class TestTightness:
    def test_figure1a_exact(self):
        static = analyze_source(FIG1A)
        dynamic = explore_schedules(lambda: compile_source(FIG1A))
        assert dynamic.exhausted
        module = compile_source(FIG1A)
        observed = observed_names_for_line(module, dynamic, 14)
        assert observed == {"y", "z"}
        assert static.deref_pts_names_at_line(14) == observed  # tight!

    def test_figure1c_exact(self):
        static = analyze_source(FIG1C)
        dynamic = explore_schedules(lambda: compile_source(FIG1C))
        assert dynamic.exhausted
        module = compile_source(FIG1C)
        observed = observed_names_for_line(module, dynamic, 16)
        assert observed == {"y"}
        assert static.deref_pts_names_at_line(16) == observed  # tight!

    def test_every_load_sound(self):
        static = analyze_source(FIG1A)
        dynamic = explore_schedules(lambda: compile_source(FIG1A))
        from repro.ir import Load
        module = static.module
        loads = [i for i in module.all_instructions() if isinstance(i, Load)]
        for index, load in enumerate(loads):
            observed = dynamic.observed_at(index)
            covered = {o.name for o in static.pts(load.dst)}
            normalised = {"tid" if n.startswith("tid.fork") else n
                          for n in observed}
            covered_norm = {"tid" if n.startswith("tid.fork") else n
                            for n in covered}
            assert normalised <= covered_norm, (
                f"load #{index} {load!r}: observed {sorted(observed)} "
                f"not covered by {sorted(covered)}")
