"""End-to-end gateway tests: transports, streaming, hardening,
admission, routing/rebalance, degradation, metrics, shutdown."""

import asyncio
import json

import pytest

from repro.gateway.admission import TenantPolicy
from repro.gateway.protocol import validate_gwframe_stream
from repro.gateway.server import Gateway, GatewayOptions
from repro.obs import validate_metrics
from repro.service.requests import request_from_entry
from repro.service.runner import run_request_inline


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


async def _jsonl(port, entries):
    """Send entries over one connection; returns all response frames."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for entry in entries:
        payload = entry if isinstance(entry, (bytes, str)) \
            else json.dumps(entry)
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        writer.write(payload + b"\n")
    await writer.drain()
    writer.write_eof()
    frames = []
    while True:
        line = await reader.readline()
        if not line:
            break
        frames.append(json.loads(line))
    writer.close()
    return frames


async def _http(port, raw):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response


def _frames_for(frames, request_id):
    return sorted((f for f in frames if f.get("id") == request_id),
                  key=lambda f: f["seq"])


class TestTransports:
    def test_jsonl_cold_then_hot(self, tmp_path):
        _run(self._cold_then_hot(tmp_path))

    async def _cold_then_hot(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            cold = await _jsonl(gateway.port,
                                [{"workload": "word_count", "id": 1}])
            assert cold[0]["body"]["status"] == "ok"
            assert cold[0]["body"]["cache"] == "miss"
            validate_gwframe_stream(cold)
            hot = await _jsonl(gateway.port,
                               [{"workload": "word_count", "id": 2}])
            assert hot[0]["body"]["cache"] == "hot"
            assert hot[0]["body"]["payload_digest"] \
                == cold[0]["body"]["payload_digest"]
        finally:
            await gateway.shutdown()

    def test_bit_identity_with_inline_oracle(self, tmp_path):
        _run(self._bit_identity(tmp_path))

    async def _bit_identity(self, tmp_path):
        # The acceptance criterion: gateway responses are bit-identical
        # to what the batch/inline runner computes for the same entry.
        request = request_from_entry({"workload": "word_count"})
        oracle = run_request_inline(request)
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            frames = await _jsonl(gateway.port,
                                  [{"workload": "word_count"}])
            body = frames[0]["body"]
            assert body["digest"] == oracle.digest
            assert body["payload_digest"] \
                == oracle.artifact.payload_digest()
        finally:
            await gateway.shutdown()

    def test_streaming_andersen_before_result(self, tmp_path):
        _run(self._streaming(tmp_path))

    async def _streaming(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            frames = await _jsonl(
                gateway.port,
                [{"workload": "word_count", "id": 9, "stream": True}])
            validate_gwframe_stream(_frames_for(frames, 9))
            kinds = [frame["kind"] for frame in frames]
            assert kinds == ["andersen", "result"]
            preview, result = frames[0]["body"], frames[1]["body"]
            assert preview["status"] == "preview"
            assert result["status"] == "ok"
            # The preview is the Andersen artifact: flow-insensitive
            # facts only, so its payload differs from the full result.
            assert preview["payload_digest"] != result["payload_digest"]
        finally:
            await gateway.shutdown()

    def test_http_analyze_and_endpoints(self, tmp_path):
        _run(self._http_endpoints(tmp_path))

    async def _http_endpoints(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            body = json.dumps({"workload": "word_count"}).encode()
            raw = await _http(
                gateway.port,
                b"POST /analyze HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body)
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 OK")
            frame = json.loads(payload)
            assert frame["body"]["status"] == "ok"

            raw = await _http(gateway.port, b"GET /healthz HTTP/1.1\r\n\r\n")
            assert b'"status": "ok"' in raw

            raw = await _http(gateway.port, b"GET /metrics HTTP/1.1\r\n\r\n")
            metrics = json.loads(raw.partition(b"\r\n\r\n")[2])
            validate_metrics(metrics)
            assert metrics["counters"]["gateway.requests"] >= 1

            raw = await _http(gateway.port, b"GET /nope HTTP/1.1\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 404")
            raw = await _http(gateway.port, b"PUT /analyze HTTP/1.1\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 405")
        finally:
            await gateway.shutdown()

    def test_http_chunked_streaming(self, tmp_path):
        _run(self._http_streaming(tmp_path))

    async def _http_streaming(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            body = json.dumps({"workload": "word_count"}).encode()
            raw = await _http(
                gateway.port,
                b"POST /analyze?stream=1 HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body)
            head, _, stream = raw.partition(b"\r\n\r\n")
            assert b"Transfer-Encoding: chunked" in head
            # De-chunk and parse the frames.
            frames = []
            rest = stream
            while rest:
                size_line, _, rest = rest.partition(b"\r\n")
                size = int(size_line, 16)
                if size == 0:
                    break
                frames.append(json.loads(rest[:size]))
                rest = rest[size + 2:]
            kinds = [frame["kind"] for frame in frames]
            assert kinds == ["andersen", "result"]
        finally:
            await gateway.shutdown()


class TestHardening:
    def test_refusals(self, tmp_path):
        _run(self._refusals(tmp_path))

    async def _refusals(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, max_request_bytes=512))
        await gateway.start()
        try:
            frames = await _jsonl(gateway.port, [b"{nope"])
            assert frames[0]["body"]["error"]["type"] == "BadRequest"

            deep = b"[" * 80 + b"]" * 80
            frames = await _jsonl(gateway.port, [deep])
            assert frames[0]["body"]["error"]["type"] == "RequestTooDeep"

            big = json.dumps({"source": "x" * 2048, "name": "big"})
            frames = await _jsonl(gateway.port, [big])
            assert frames[0]["body"]["error"]["type"] == "RequestTooLarge"
            assert frames[0]["body"]["error"]["code"] == 413

            frames = await _jsonl(gateway.port,
                                  [{"workload": "no_such_workload"}])
            assert frames[0]["body"]["error"]["type"] == "BadRequest"

            frames = await _jsonl(gateway.port,
                                  [{"workload": "word_count",
                                    "op": "transmogrify"}])
            assert frames[0]["body"]["error"]["type"] == "BadRequest"

            # HTTP: an oversized Content-Length is refused up front.
            raw = await _http(
                gateway.port,
                b"POST /analyze HTTP/1.1\r\nContent-Length: 99999\r\n"
                b"\r\n")
            assert raw.startswith(b"HTTP/1.1 413")
        finally:
            await gateway.shutdown()


class TestAdmission:
    def test_rate_limited_tenant_gets_429(self, tmp_path):
        _run(self._rate_limit(tmp_path))

    async def _rate_limit(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache"),
            tenants={"slow": TenantPolicy("slow", rate=0.001, burst=1)}))
        await gateway.start()
        try:
            ok = await _jsonl(gateway.port,
                              [{"workload": "word_count",
                                "tenant": "slow", "id": 1}])
            assert ok[0]["body"].get("status") in ("ok", "degraded")
            refused = await _jsonl(gateway.port,
                                   [{"workload": "word_count",
                                     "tenant": "slow", "id": 2}])
            error = refused[0]["body"]["error"]
            assert error["type"] == "RateLimited"
            assert error["code"] == 429
            metrics = gateway.metrics()
            assert metrics["counters"]["gateway.rate_limited"] == 1
        finally:
            await gateway.shutdown()

    def test_queue_overflow_sheds_lowest_priority(self, tmp_path):
        _run(self._shed(tmp_path))

    async def _shed(self, tmp_path):
        import os
        import signal
        gateway = Gateway(GatewayOptions(
            workers=1, max_queue=1,
            cache_root=str(tmp_path / "cache"),
            tenants={
                "vip": TenantPolicy("vip", priority=5),
                "bulk": TenantPolicy("bulk", priority=1),
            }))
        await gateway.start()
        paused = None
        try:
            async def one(name, tenant, rid):
                return await _jsonl(gateway.port,
                                    [{"workload": name, "tenant": tenant,
                                      "id": rid}])

            async def until(predicate, timeout=20.0):
                loop = asyncio.get_event_loop()
                deadline = loop.time() + timeout
                while not predicate():
                    assert loop.time() < deadline, "condition never held"
                    await asyncio.sleep(0.02)

            # Occupy the single shard, freeze the worker so the job
            # cannot finish, fill the 1-slot queue with bulk work, then
            # push vip work past the high-water mark: the queued bulk
            # request must be shed with a 429 record.
            first = asyncio.ensure_future(one("word_count", "bulk", 1))
            await until(lambda: any(
                handle.inflight is not None
                for handle in gateway.pool.handles.values()))
            paused = next(handle.proc.pid
                          for handle in gateway.pool.handles.values()
                          if handle.inflight is not None)
            os.kill(paused, signal.SIGSTOP)
            second = asyncio.ensure_future(one("kmeans", "bulk", 2))
            await until(lambda: sum(
                len(q) for q in gateway.queues.values()) == 1)
            third = asyncio.ensure_future(one("automount", "vip", 3))
            await until(lambda: gateway.metrics()["counters"]
                        .get("gateway.shed", 0) == 1)
            os.kill(paused, signal.SIGCONT)
            paused = None
            results = await asyncio.gather(first, second, third)
            by_id = {frames[0]["id"]: frames[0] for frames in results}
            assert by_id[1]["body"]["status"] in ("ok", "degraded")
            assert by_id[3]["body"]["status"] in ("ok", "degraded")
            error = by_id[2]["body"]["error"]
            assert error["type"] == "QueueFull"
            assert error["code"] == 429
            assert gateway.metrics()["counters"]["gateway.shed"] == 1
        finally:
            if paused is not None:
                import os
                import signal
                os.kill(paused, signal.SIGCONT)
            await gateway.shutdown()


class TestResilience:
    def test_worker_death_respawns_and_retries(self, tmp_path):
        _run(self._death(tmp_path))

    async def _death(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=2, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            # scale 3 keeps the job in flight for ~1s — a wide window
            # to terminate the shard mid-computation.
            task = asyncio.ensure_future(_jsonl(
                gateway.port,
                [{"workload": "raytrace", "scale": 3, "id": 1}]))
            loop = asyncio.get_event_loop()
            deadline = loop.time() + 20.0
            victims = []
            while not victims:
                assert loop.time() < deadline, "job never dispatched"
                victims = [handle
                           for handle in gateway.pool.handles.values()
                           if handle.inflight is not None]
                if not victims:
                    await asyncio.sleep(0.005)
            victims[0].proc.terminate()
            frames = await asyncio.wait_for(task, timeout=60)
            body = frames[0]["body"]
            # Crash -> retried once on a surviving/respawned shard.
            assert body["status"] == "ok"
            assert gateway.pool.respawns >= 1
            metrics = gateway.metrics()
            assert metrics["counters"]["gateway.shard_deaths"] >= 1
            assert metrics["counters"]["gateway.retries"] >= 1
            assert len(gateway.ring) == 2  # respawn re-added the arc
        finally:
            await gateway.shutdown()

    def test_wall_clock_deadline_degrades_with_preview(self, tmp_path):
        _run(self._deadline(tmp_path))

    async def _deadline(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            # raytrace@6 runs ~3.4s with its Andersen preview ready at
            # ~0.6s, so a 1.5s deadline lands squarely between the two.
            frames = await asyncio.wait_for(_jsonl(
                gateway.port,
                [{"workload": "raytrace", "scale": 6, "id": 5,
                  "stream": True, "timeout": 1.5}]), timeout=120)
            mine = _frames_for(frames, 5)
            validate_gwframe_stream(mine)
            final = mine[-1]["body"]
            assert final["status"] == "degraded"
            assert final["degraded_reason"] == "wall-clock-timeout"
            # The degraded answer reuses the streamed Andersen preview
            # when one arrived before the kill.
            if len(mine) > 1:
                assert mine[0]["kind"] == "andersen"
                assert final["payload_digest"] \
                    == mine[0]["body"]["payload_digest"]
        finally:
            await gateway.shutdown()


class TestShutdown:
    def test_graceful_drain(self, tmp_path):
        _run(self._drain(tmp_path))

    async def _drain(self, tmp_path):
        import io
        metrics_stream = io.StringIO()
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache"),
            metrics_stream=metrics_stream))
        await gateway.start()
        serve = asyncio.ensure_future(gateway.serve_forever())
        task = asyncio.ensure_future(_jsonl(
            gateway.port, [{"workload": "word_count", "id": 1}]))
        await asyncio.sleep(0.1)  # in flight
        gateway.begin_shutdown()
        frames = await asyncio.wait_for(task, timeout=60)
        # In-flight work drains to a real response, not an error.
        assert frames[0]["body"]["status"] == "ok"
        await asyncio.wait_for(serve, timeout=30)
        # New work is refused while draining/closed.
        with pytest.raises(Exception):
            await asyncio.wait_for(_jsonl(
                gateway.port, [{"workload": "word_count"}]), timeout=5)
        # The final metrics snapshot was flushed on the way out.
        final = json.loads(metrics_stream.getvalue().strip()
                           .splitlines()[-1])
        validate_metrics(final)
        assert final["counters"]["gateway.requests"] == 1
