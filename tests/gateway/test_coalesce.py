"""Coalescing: unit tests for the in-flight table, plus the
satellite's end-to-end check — N concurrent identical requests make
exactly one pool submission and N identical responses."""

import asyncio
import json

import pytest

from repro.gateway.coalesce import CoalesceTable
from repro.gateway.server import Gateway, GatewayOptions


def _run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


class TestCoalesceTable:
    def test_leader_then_followers(self):
        _run(self._leader_then_followers())

    async def _leader_then_followers(self):
        table = CoalesceTable()
        job, leader = table.join("k", "analyze")
        assert leader
        same, again = table.join("k", "analyze")
        assert same is job and not again
        assert table.coalesced == 1 and table.started == 1

    def test_replay_to_late_subscriber(self):
        _run(self._replay())

    async def _replay(self):
        table = CoalesceTable()
        job, _ = table.join("k", "analyze")
        early = job.subscribe()
        job.publish("andersen", {"status": "preview"})
        late = job.subscribe()  # attaches after the preview
        job.publish("result", {"status": "ok"}, final=True)
        for queue in (early, late):
            kind, body, final = queue.get_nowait()
            assert (kind, final) == ("andersen", False)
            kind, body, final = queue.get_nowait()
            assert (kind, final) == ("result", True)

    def test_publish_after_final_refused(self):
        _run(self._publish_after_final())

    async def _publish_after_final(self):
        table = CoalesceTable()
        job, _ = table.join("k", "analyze")
        job.publish("result", {}, final=True)
        with pytest.raises(RuntimeError):
            job.publish("result", {}, final=True)

    def test_finish_clears_inflight(self):
        _run(self._finish())

    async def _finish(self):
        table = CoalesceTable()
        table.join("k", "analyze")
        assert len(table) == 1
        table.finish("k")
        table.finish("k")  # idempotent
        assert len(table) == 0
        _, leader = table.join("k", "analyze")
        assert leader  # a fresh job, not the dead one


class TestGatewayCoalescing:
    """The satellite's end-to-end requirement."""

    def test_n_identical_requests_one_submission(self, tmp_path):
        _run(self._coalesce_e2e(tmp_path))

    async def _coalesce_e2e(self, tmp_path):
        gateway = Gateway(GatewayOptions(
            workers=1, cache_root=str(tmp_path / "cache")))
        await gateway.start()
        try:
            async def request(i):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port)
                entry = {"workload": "word_count", "id": i}
                writer.write((json.dumps(entry) + "\n").encode())
                await writer.drain()
                writer.write_eof()
                line = await reader.readline()
                writer.close()
                return json.loads(line)

            n = 5
            frames = await asyncio.gather(*[request(i) for i in range(n)])
            # N identical responses: same digest, same payload bits.
            bodies = [frame["body"] for frame in frames]
            assert len({body["payload_digest"] for body in bodies}) == 1
            assert len({body["digest"] for body in bodies}) == 1
            assert all(body["status"] == "ok" for body in bodies)
            # Each response still carries its own request id.
            assert sorted(frame["id"] for frame in frames) == list(range(n))
            # Exactly one computation: one pool dispatch, N-1 coalesced.
            metrics = gateway.metrics()
            assert metrics["counters"]["gateway.dispatched"] == 1
            assert metrics["counters"]["gateway.coalesced"] == n - 1
            assert gateway.coalesce.started == 1
        finally:
            await gateway.shutdown()
