"""Consistent-hash ring units (repro.gateway.routing)."""

from repro.gateway.routing import HashRing


def _keys(n=500):
    return [f"digest-{i:04d}" for i in range(n)]


class TestHashRing:
    def test_routing_is_deterministic(self):
        a = HashRing([0, 1, 2])
        b = HashRing([2, 0, 1])  # insertion order must not matter
        for key in _keys(100):
            assert a.route(key) == b.route(key)

    def test_empty_ring_routes_none(self):
        assert HashRing().route("anything") is None

    def test_membership_and_len(self):
        ring = HashRing([0, 1])
        assert 0 in ring and 1 in ring and 2 not in ring
        assert len(ring) == 2
        assert ring.shards == [0, 1]

    def test_all_shards_get_some_keys(self):
        ring = HashRing(range(4))
        spread = ring.spread(_keys())
        assert set(spread) == {0, 1, 2, 3}
        assert all(count > 0 for count in spread.values())

    def test_remove_moves_only_dead_shards_keys(self):
        ring = HashRing(range(4))
        before = {key: ring.route(key) for key in _keys()}
        ring.remove(2)
        after = {key: ring.route(key) for key in _keys()}
        for key, owner in before.items():
            if owner != 2:
                # The surviving shards' keys must not move at all —
                # that is the whole point of consistent hashing.
                assert after[key] == owner
            else:
                assert after[key] != 2

    def test_add_back_restores_exact_placement(self):
        ring = HashRing(range(4))
        before = {key: ring.route(key) for key in _keys()}
        ring.remove(1)
        ring.add(1)
        assert {key: ring.route(key) for key in _keys()} == before

    def test_double_add_is_idempotent(self):
        ring = HashRing([0])
        ring.add(0)
        before = {key: ring.route(key) for key in _keys(50)}
        assert len(ring) == 1
        ring.remove(0)
        assert len(ring) == 0
        ring.add(0)
        assert {key: ring.route(key) for key in _keys(50)} == before
