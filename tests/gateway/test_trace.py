"""Zipfian trace generator tests (repro.gateway.trace).

The satellite requirements: byte-identical traces under a fixed seed,
and observed skew within tolerance of the ideal zipf weights.
"""

import pytest

from repro.gateway.trace import (
    TraceGenerator, catalogue_from_workloads, skew_error, zipf_weights,
)

CATALOGUE = [{"workload": f"w{i}", "scale": 1, "query_vars": ["p"]}
             for i in range(10)]


class TestZipfWeights:
    def test_normalized_and_monotonic(self):
        weights = zipf_weights(10, 1.1)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert weights == sorted(weights, reverse=True)

    def test_skew_steepens_head(self):
        assert zipf_weights(10, 2.0)[0] > zipf_weights(10, 0.5)[0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = TraceGenerator(CATALOGUE, seed=42, tenants=("t1", "t2"),
                           query_fraction=0.2).generate(2000)
        b = TraceGenerator(CATALOGUE, seed=42, tenants=("t1", "t2"),
                           query_fraction=0.2).generate(2000)
        assert a == b

    def test_different_seed_different_trace(self):
        a = TraceGenerator(CATALOGUE, seed=1).generate(500)
        b = TraceGenerator(CATALOGUE, seed=2).generate(500)
        assert a != b

    def test_generate_is_repeatable_on_one_instance(self):
        gen = TraceGenerator(CATALOGUE, seed=7)
        assert gen.generate(300) == gen.generate(300)

    def test_ids_are_sequential(self):
        entries = TraceGenerator(CATALOGUE, seed=0).generate(50)
        assert [entry["id"] for entry in entries] == list(range(50))

    def test_tenants_cycle_deterministically(self):
        entries = TraceGenerator(CATALOGUE, seed=0,
                                 tenants=("a", "b")).generate(6)
        assert [entry["tenant"] for entry in entries] == [
            "a", "b", "a", "b", "a", "b"]


class TestSkew:
    def test_skew_within_tolerance(self):
        gen = TraceGenerator(CATALOGUE, seed=0, s=1.1)
        entries = gen.generate(20000)
        counts = gen.rank_counts(entries)
        # Head ranks of a 20k-draw sample track the ideal weights
        # closely; 10% relative error is generous for this n.
        assert skew_error(counts, s=1.1) < 0.10

    def test_rank_one_is_hottest(self):
        gen = TraceGenerator(CATALOGUE, seed=3)
        counts = gen.rank_counts(gen.generate(5000))
        assert counts[0] == max(counts)
        assert counts[0] > 2 * counts[-1]

    def test_skew_error_flags_uniform_sample(self):
        # A flat distribution is far from zipf(1.1): the tolerance
        # check must fail it, or the test above proves nothing.
        assert skew_error([100] * 10, s=1.1) > 0.5

    def test_skew_error_rejects_empty(self):
        with pytest.raises(ValueError):
            skew_error([0, 0, 0])


class TestEntries:
    def test_entries_resolve_programs_and_queries(self):
        gen = TraceGenerator(CATALOGUE, seed=11, query_fraction=0.5)
        entries = gen.generate(400)
        ops = {entry.get("op", "analyze") for entry in entries}
        assert ops == {"analyze", "query"}
        for entry in entries:
            assert "workload" in entry
            assert "query_vars" not in entry
            if entry.get("op") == "query":
                assert entry["var"] == "p"

    def test_query_fraction_zero_means_no_queries(self):
        entries = TraceGenerator(CATALOGUE, seed=11).generate(200)
        assert all("op" not in entry for entry in entries)

    def test_catalogue_from_workloads(self):
        catalogue = catalogue_from_workloads(["a", "b"], scale=2)
        assert catalogue == [{"workload": "a", "scale": 2},
                             {"workload": "b", "scale": 2}]

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceGenerator([])
        with pytest.raises(ValueError):
            TraceGenerator(CATALOGUE, tenants=())
        with pytest.raises(ValueError):
            TraceGenerator(CATALOGUE, query_fraction=1.5)
