"""Wire-format and input-hardening units (repro.gateway.protocol)."""

import json

import pytest

from repro.gateway.protocol import (
    BadRequest, DEFAULT_MAX_JSON_DEPTH, RateLimited, RequestTooDeep,
    RequestTooLarge, error_body, error_frame, http_chunk, http_response,
    http_stream_head, http_stream_tail, json_depth, looks_like_http,
    make_frame, parse_http_head, parse_request_text, validate_gwframe,
    validate_gwframe_stream,
)
from repro.schemas import GWFRAME_SCHEMA


class TestJsonDepth:
    def test_flat(self):
        assert json_depth('{"a": 1}') == 1

    def test_nested(self):
        assert json_depth('{"a": [{"b": [1]}]}') == 4

    def test_brackets_inside_strings_ignored(self):
        assert json_depth('{"a": "[[[[{{{{"}') == 1

    def test_escaped_quote_does_not_end_string(self):
        assert json_depth('{"a": "x\\"[[", "b": []}') == 2

    def test_hostile_nesting_counted_linearly(self):
        assert json_depth("[" * 100000) == 100000


class TestParseRequestText:
    def test_valid(self):
        assert parse_request_text('{"workload": "w"}') == {"workload": "w"}

    def test_oversized(self):
        with pytest.raises(RequestTooLarge):
            parse_request_text('{"s": "' + "x" * 64 + '"}',
                               max_request_bytes=32)

    def test_too_deep_never_reaches_json_loads(self):
        # 100k-deep brackets would blow the recursive parser's stack;
        # the pre-scan must refuse first.
        hostile = "[" * 100000 + "]" * 100000
        with pytest.raises(RequestTooDeep):
            parse_request_text(hostile)

    def test_depth_default_is_sane(self):
        depth_ok = "[" * DEFAULT_MAX_JSON_DEPTH + "]" * DEFAULT_MAX_JSON_DEPTH
        with pytest.raises(BadRequest):
            # within depth, but a list, not an object
            parse_request_text(depth_ok)

    def test_invalid_json(self):
        with pytest.raises(BadRequest):
            parse_request_text("{nope")

    def test_non_object(self):
        with pytest.raises(BadRequest):
            parse_request_text('"just a string"')


class TestFrames:
    def test_make_frame_shape(self):
        frame = make_frame("result", {"status": "ok"}, seq=0, final=True,
                           request_id=7)
        assert frame == {"schema": GWFRAME_SCHEMA, "seq": 0,
                         "kind": "result", "final": True,
                         "body": {"status": "ok"}, "id": 7}
        validate_gwframe(frame)

    def test_error_frame_carries_code(self):
        frame = error_frame(RateLimited("slow down"), request_id="r1")
        assert frame["body"]["error"]["code"] == 429
        assert frame["body"]["error"]["type"] == "RateLimited"
        validate_gwframe(frame)

    def test_error_body_plain_exception_is_500(self):
        body = error_body(RuntimeError("boom"))
        assert body["error"]["code"] == 500
        assert body["error"]["type"] == "RuntimeError"

    def test_validate_rejects_bad_schema(self):
        frame = make_frame("result", {}, seq=0, final=True)
        frame["schema"] = "repro.nope/1"
        with pytest.raises(ValueError):
            validate_gwframe(frame)

    def test_validate_rejects_unknown_kind(self):
        frame = make_frame("result", {}, seq=0, final=True)
        frame["kind"] = "surprise"
        with pytest.raises(ValueError):
            validate_gwframe(frame)

    def test_stream_happy_path(self):
        frames = [
            make_frame("andersen", {"status": "preview"}, seq=0,
                       final=False),
            make_frame("result", {"status": "ok"}, seq=1, final=True),
        ]
        validate_gwframe_stream(frames)

    def test_stream_rejects_sparse_seq(self):
        frames = [make_frame("result", {"status": "ok"}, seq=1,
                             final=True)]
        with pytest.raises(ValueError):
            validate_gwframe_stream(frames)

    def test_stream_rejects_non_final_tail(self):
        frames = [make_frame("andersen", {}, seq=0, final=False)]
        with pytest.raises(ValueError):
            validate_gwframe_stream(frames)

    def test_stream_rejects_preview_after_result(self):
        frames = [
            make_frame("result", {"status": "ok"}, seq=0, final=False),
            make_frame("andersen", {}, seq=1, final=True),
        ]
        with pytest.raises(ValueError):
            validate_gwframe_stream(frames)


class TestHttp:
    def test_transport_detection(self):
        assert looks_like_http(b"POST /analyze HTTP/1.1\r\n")
        assert looks_like_http(b"GET /metrics HTTP/1.1\r\n")
        assert not looks_like_http(b'{"workload": "w"}\n')
        assert not looks_like_http(b"\xff\xfe binary")

    def test_parse_head(self):
        method, path, query, headers = parse_http_head(
            b"POST /analyze?stream=1 HTTP/1.1\r\n",
            [b"Content-Length: 12\r\n", b"X-Thing: a b\r\n"])
        assert (method, path) == ("POST", "/analyze")
        assert query == {"stream": "1"}
        assert headers == {"content-length": "12", "x-thing": "a b"}

    def test_parse_head_rejects_garbage(self):
        with pytest.raises(BadRequest):
            parse_http_head(b"NONSENSE\r\n", [])
        with pytest.raises(BadRequest):
            parse_http_head(b"GET / HTTP/2\r\n", [])
        with pytest.raises(BadRequest):
            parse_http_head(b"GET / HTTP/1.1\r\n", [b"no-colon-here\r\n"])

    def test_response_roundtrip(self):
        raw = http_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Length: 12" in head
        assert json.loads(body) == {"ok": True}

    def test_chunked_stream_parts(self):
        head = http_stream_head()
        assert b"Transfer-Encoding: chunked" in head
        chunk = http_chunk(b"abc")
        assert chunk == b"3\r\nabc\r\n"
        assert http_stream_tail() == b"0\r\n\r\n"
