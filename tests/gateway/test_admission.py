"""Admission-control units (repro.gateway.admission)."""

import pytest

from repro.gateway.admission import (
    AdmissionController, PendingQueue, TenantPolicy, TokenBucket,
    policies_from_config, shed_lowest,
)
from repro.gateway.protocol import BadRequest, RateLimited


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPolicies:
    def test_from_config(self):
        policies = policies_from_config({
            "ide": {"rate": 200, "burst": 400, "priority": 5},
            "batch": {"rate": None, "priority": 0},
        })
        assert policies["ide"] == TenantPolicy("ide", 200.0, 400, 5)
        assert policies["batch"].rate is None
        assert policies["batch"].burst == 64

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            policies_from_config({"t": {"rate": 1, "color": "red"}})

    def test_rejects_non_objects(self):
        with pytest.raises(ValueError):
            policies_from_config(["not", "a", "dict"])
        with pytest.raises(ValueError):
            policies_from_config({"t": 7})

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy("t", rate=-1.0)
        with pytest.raises(ValueError):
            TenantPolicy("t", burst=0)


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        bucket.try_take(), bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # 1 token back at 2/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3, clock=clock)
        clock.advance(60.0)
        taken = sum(1 for _ in range(10) if bucket.try_take())
        assert taken == 3

    def test_unlimited(self):
        bucket = TokenBucket(rate=None, burst=1, clock=FakeClock())
        assert all(bucket.try_take() for _ in range(100))


class TestAdmissionController:
    def test_rate_limit_raises_with_count(self):
        clock = FakeClock()
        controller = AdmissionController(
            {"t": TenantPolicy("t", rate=1.0, burst=1)}, clock=clock)
        assert controller.admit("t").priority == 1
        with pytest.raises(RateLimited):
            controller.admit("t")
        assert controller.rate_limited == 1
        clock.advance(1.0)
        controller.admit("t")

    def test_unknown_tenant_inherits_default_limits(self):
        clock = FakeClock()
        controller = AdmissionController(
            {"default": TenantPolicy("default", rate=1.0, burst=1,
                                     priority=3)}, clock=clock)
        policy = controller.admit("stranger")
        assert policy.priority == 3
        with pytest.raises(RateLimited):
            controller.admit("stranger")
        # Buckets are still per-tenant: another stranger has its own.
        controller.admit("other-stranger")

    def test_none_tenant_is_default(self):
        controller = AdmissionController(clock=FakeClock())
        assert controller.admit(None).name == "default"

    def test_non_string_tenant_refused(self):
        controller = AdmissionController(clock=FakeClock())
        with pytest.raises(BadRequest):
            controller.admit(7)
        with pytest.raises(BadRequest):
            controller.admit("")


class TestPendingQueue:
    def test_pops_highest_priority_oldest_first(self):
        queue = PendingQueue()
        queue.push(1, 0, "low-old")
        queue.push(5, 1, "high-a")
        queue.push(5, 2, "high-b")
        queue.push(1, 3, "low-new")
        assert [queue.pop() for _ in range(4)] == [
            "high-a", "high-b", "low-old", "low-new"]

    def test_shed_tail_takes_lowest_newest(self):
        queue = PendingQueue()
        queue.push(1, 0, "low-old")
        queue.push(1, 1, "low-new")
        queue.push(5, 2, "high")
        assert queue.tail_priority() == 1
        assert queue.shed_tail() == "low-new"
        assert len(queue) == 2

    def test_remove(self):
        queue = PendingQueue()
        queue.push(1, 0, "a")
        queue.push(2, 1, "b")
        assert queue.remove("a")
        assert not queue.remove("ghost")
        assert queue.pop() == "b"


class TestShedLowest:
    def test_picks_queue_with_lowest_tail(self):
        q1, q2 = PendingQueue(), PendingQueue()
        q1.push(5, 0, "hi")
        q2.push(1, 1, "lo")
        victim, admit = shed_lowest([q1, q2], incoming_priority=3)
        assert victim is q2 and admit

    def test_incoming_loses_ties(self):
        queue = PendingQueue()
        queue.push(3, 0, "queued")
        victim, admit = shed_lowest([queue], incoming_priority=3)
        assert victim is None and not admit

    def test_incoming_below_everything_is_refused(self):
        queue = PendingQueue()
        queue.push(5, 0, "queued")
        victim, admit = shed_lowest([queue], incoming_priority=1)
        assert victim is None and not admit

    def test_empty_queues(self):
        victim, admit = shed_lowest([PendingQueue()], incoming_priority=1)
        assert victim is None and not admit
