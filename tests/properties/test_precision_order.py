"""Properties relating the analyses' precision.

- Flow-sensitive FSAM refines the flow-insensitive pre-analysis:
  for every load, FSAM's pt(dst) is a subset of Andersen's.
- The sparse analysis is as precise as the traditional data-flow
  analysis (paper Section 3.4): on call-free programs they agree
  exactly; with calls/threads FSAM is never coarser at loads.
"""

from hypothesis import HealthCheck, given, settings

from repro.andersen import run_andersen
from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.ir import Load

from tests.properties.program_gen import (
    multithreaded_programs, sequential_programs, single_function_programs,
)

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def loads_of(module):
    return [i for i in module.all_instructions() if isinstance(i, Load)]


class TestRefinesPreAnalysis:
    @SETTINGS
    @given(multithreaded_programs())
    def test_fsam_subset_of_andersen(self, src):
        module = compile_source(src)
        fsam = FSAM(module).run()
        andersen = run_andersen(module)
        for load in loads_of(module):
            sparse = {o.name for o in fsam.pts(load.dst)}
            flowins = {o.name for o in andersen.pts(load.dst)}
            assert sparse <= flowins, (
                f"{load!r}: FSAM {sorted(sparse)} !<= Andersen {sorted(flowins)}"
                f"\nprogram:\n{src}")


class TestSparseMatchesDataflow:
    @SETTINGS
    @given(single_function_programs())
    def test_exact_agreement_without_calls(self, src):
        module = compile_source(src)
        fsam = FSAM(module).run()
        module2 = compile_source(src)
        nonsparse = NonSparseAnalysis(module2).run()
        loads1 = loads_of(module)
        loads2 = loads_of(module2)
        assert len(loads1) == len(loads2)
        for l1, l2 in zip(loads1, loads2):
            a = {o.name for o in fsam.pts(l1.dst)}
            b = {o.name for o in nonsparse.pts(l2.dst)}
            assert a == b, (f"sparse {sorted(a)} != dataflow {sorted(b)} at "
                            f"{l1!r}\nprogram:\n{src}")

    @SETTINGS
    @given(sequential_programs())
    def test_fsam_never_coarser_sequential(self, src):
        module = compile_source(src)
        fsam = FSAM(module).run()
        module2 = compile_source(src)
        nonsparse = NonSparseAnalysis(module2).run()
        for l1, l2 in zip(loads_of(module), loads_of(module2)):
            a = {o.name for o in fsam.pts(l1.dst)}
            b = {o.name for o in nonsparse.pts(l2.dst)}
            assert a <= b, (f"FSAM {sorted(a)} !<= NONSPARSE {sorted(b)} at "
                            f"{l1!r}\nprogram:\n{src}")
