"""Cross-validate graph algorithms against networkx on random graphs."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graphs import DiGraph, DominatorTree, tarjan_scc

SETTINGS = settings(max_examples=50, deadline=None)


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=30))
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for a, b in edges:
        g.add_edge(a, b)
    return g


def to_nx(g: DiGraph) -> nx.DiGraph:
    h = nx.DiGraph()
    h.add_nodes_from(g.nodes())
    h.add_edges_from(g.edges())
    return h


class TestSCCAgainstNetworkx:
    @SETTINGS
    @given(random_digraphs())
    def test_same_components(self, g):
        ours = {frozenset(c) for c in tarjan_scc(g)}
        theirs = {frozenset(c) for c in nx.strongly_connected_components(to_nx(g))}
        assert ours == theirs


class TestDominatorsAgainstNetworkx:
    @SETTINGS
    @given(random_digraphs())
    def test_same_idoms(self, g):
        entry = 0
        reachable = g.reachable_from(entry)
        ours = DominatorTree(g, entry)
        theirs = nx.immediate_dominators(to_nx(g), entry)
        for node in reachable:
            if node == entry:
                continue
            assert ours.immediate_dominator(node) == theirs[node], (
                f"idom({node}) mismatch on edges {sorted(g.edges())}")


class TestReachabilityAgainstNetworkx:
    @SETTINGS
    @given(random_digraphs())
    def test_descendants(self, g):
        h = to_nx(g)
        ours = g.reachable_from(0)
        theirs = nx.descendants(h, 0) | {0}
        assert ours == theirs
