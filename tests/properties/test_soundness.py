"""Property: the static analyses over-approximate concrete execution.

For random programs and random schedules, every abstract object a
load dynamically observes must be in the analysis' points-to set of
the load's destination — for FSAM and for NONSPARSE.
"""

from hypothesis import HealthCheck, given, settings

from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.interp import ExecutionLimit, Interpreter

from tests.properties.program_gen import multithreaded_programs, sequential_programs

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def observations_for(module, seeds=(0, 1, 2)):
    result = []
    for seed in seeds:
        interp = Interpreter(module, seed=seed, max_steps=20000)
        try:
            interp.run()
        except ExecutionLimit:
            pass  # truncated runs still yield valid observations
        result.extend(interp.observations)
    return result


def check_soundness(src, analysis_pts):
    module = compile_source(src)
    obs = observations_for(module)
    pts_fn = analysis_pts(module)
    for o in obs:
        static = {t.name for t in pts_fn(o.load.dst)}
        assert o.target.name in static, (
            f"unsound: load {o.load!r} observed {o.target.name}, "
            f"static pts = {sorted(static)}\nprogram:\n{src}")


def fsam_pts(module):
    result = FSAM(module).run()
    return result.pts


def nonsparse_pts(module):
    result = NonSparseAnalysis(module).run()
    return result.pts


class TestFSAMSoundness:
    @SETTINGS
    @given(sequential_programs())
    def test_sequential(self, src):
        check_soundness(src, fsam_pts)

    @SETTINGS
    @given(multithreaded_programs())
    def test_multithreaded(self, src):
        check_soundness(src, fsam_pts)


class TestNonSparseSoundness:
    @SETTINGS
    @given(sequential_programs())
    def test_sequential(self, src):
        check_soundness(src, nonsparse_pts)

    @SETTINGS
    @given(multithreaded_programs())
    def test_multithreaded(self, src):
        check_soundness(src, nonsparse_pts)
