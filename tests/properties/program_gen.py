"""Random MiniC program generation for property-based tests.

Programs are valid-by-construction: statements draw from typed pools
(int globals, int* globals, int** globals), loops are bounded, and
locks are emitted in balanced pairs — so the concrete interpreter
always terminates and the frontend always accepts the source.
"""

from __future__ import annotations

from typing import List

from hypothesis import strategies as st

N_INTS = 4      # g0..g3 : int
N_PTRS = 4      # p0..p3 : int*
N_PPTRS = 2     # pp0..pp1 : int**
N_NODES = 2     # h0..h1 : struct node*  (node: {int *f; struct node *n;})


@st.composite
def statements(draw, depth: int = 0, allow_loops: bool = True,
               counter: List[int] = None) -> List[str]:
    """A list of statement strings for one block. ``counter`` makes
    loop variable names unique within a function (MiniC has no block
    scoping)."""
    if counter is None:
        counter = [0]
    count = draw(st.integers(min_value=1, max_value=5))
    stmts: List[str] = []
    for _ in range(count):
        kind = draw(st.sampled_from(
            ["addr", "copy", "store_pp", "load_pp", "deref_write",
             "deref_read", "null", "branch", "loop", "lockblock",
             "heap_new", "field_write", "field_read", "link", "walk",
             "waitblock", "signal"]))
        if kind == "addr":
            p = draw(st.integers(0, N_PTRS - 1))
            g = draw(st.integers(0, N_INTS - 1))
            stmts.append(f"p{p} = &g{g};")
        elif kind == "copy":
            a = draw(st.integers(0, N_PTRS - 1))
            b = draw(st.integers(0, N_PTRS - 1))
            stmts.append(f"p{a} = p{b};")
        elif kind == "store_pp":
            pp = draw(st.integers(0, N_PPTRS - 1))
            p = draw(st.integers(0, N_PTRS - 1))
            stmts.append(f"pp{pp} = &p{p};")
        elif kind == "load_pp":
            a = draw(st.integers(0, N_PTRS - 1))
            pp = draw(st.integers(0, N_PPTRS - 1))
            stmts.append(f"p{a} = *pp{pp};")
        elif kind == "deref_write":
            pp = draw(st.integers(0, N_PPTRS - 1))
            p = draw(st.integers(0, N_PTRS - 1))
            stmts.append(f"*pp{pp} = p{p};")
        elif kind == "deref_read":
            p = draw(st.integers(0, N_PTRS - 1))
            g = draw(st.integers(0, N_INTS - 1))
            stmts.append(f"if (p{p} != null) {{ g{g} = *p{p}; }}")
        elif kind == "null":
            p = draw(st.integers(0, N_PTRS - 1))
            stmts.append(f"p{p} = null;")
        elif kind == "heap_new":
            h = draw(st.integers(0, N_NODES - 1))
            stmts.append(f"h{h} = malloc(struct node);")
        elif kind == "field_write":
            h = draw(st.integers(0, N_NODES - 1))
            p = draw(st.integers(0, N_PTRS - 1))
            stmts.append(f"if (h{h} != null) {{ h{h}->f = p{p}; }}")
        elif kind == "field_read":
            h = draw(st.integers(0, N_NODES - 1))
            p = draw(st.integers(0, N_PTRS - 1))
            stmts.append(f"if (h{h} != null) {{ p{p} = h{h}->f; }}")
        elif kind == "link":
            a = draw(st.integers(0, N_NODES - 1))
            b = draw(st.integers(0, N_NODES - 1))
            stmts.append(f"if (h{a} != null) {{ h{a}->n = h{b}; }}")
        elif kind == "walk":
            a = draw(st.integers(0, N_NODES - 1))
            b = draw(st.integers(0, N_NODES - 1))
            stmts.append(f"if (h{a} != null) {{ h{b} = h{a}->n; }}")
        elif kind == "branch" and depth < 2:
            then_body = draw(statements(depth=depth + 1, allow_loops=allow_loops,
                                        counter=counter))
            else_body = draw(statements(depth=depth + 1, allow_loops=allow_loops,
                                        counter=counter))
            g = draw(st.integers(0, N_INTS - 1))
            stmts.append("if (g%d < 2) { %s } else { %s }"
                         % (g, " ".join(then_body), " ".join(else_body)))
        elif kind == "loop" and allow_loops and depth < 2:
            body = draw(statements(depth=depth + 1, allow_loops=False,
                                   counter=counter))
            var = f"i{counter[0]}"
            counter[0] += 1
            stmts.append("for (int %s = 0; %s < 2; %s = %s + 1) { %s }"
                         % (var, var, var, var, " ".join(body)))
        elif kind == "lockblock" and depth < 2:
            body = draw(statements(depth=depth + 1, allow_loops=False,
                                   counter=counter))
            stmts.append("lock(&mu); %s unlock(&mu);" % " ".join(body))
        elif kind == "waitblock" and depth < 2:
            # cond_wait under the spurious-wakeup model: release +
            # re-acquire inside a critical section.
            before = draw(statements(depth=depth + 1, allow_loops=False,
                                     counter=counter))
            after = draw(statements(depth=depth + 1, allow_loops=False,
                                    counter=counter))
            stmts.append("lock(&mu); %s wait(&cv, &mu); %s unlock(&mu);"
                         % (" ".join(before), " ".join(after)))
        elif kind == "signal":
            stmts.append(draw(st.sampled_from(
                ["signal(&cv);", "broadcast(&cv);"])))
    return stmts


def _globals_header() -> str:
    lines = ["struct node { int *f; struct node *n; };", "mutex_t mu;",
             "cond_t cv;"]
    for i in range(N_INTS):
        lines.append(f"int g{i};")
    for i in range(N_PTRS):
        lines.append(f"int *p{i};")
    for i in range(N_PPTRS):
        lines.append(f"int **pp{i};")
    for i in range(N_NODES):
        lines.append(f"struct node *h{i};")
    return "\n".join(lines)


@st.composite
def sequential_programs(draw) -> str:
    """A single-threaded random program."""
    helper_body = draw(statements(counter=[0]))
    main_body = draw(statements(counter=[100]))
    call_helper = draw(st.booleans())
    parts = [_globals_header()]
    parts.append("void helper() { %s }" % " ".join(helper_body))
    body = " ".join(main_body)
    if call_helper:
        body += " helper();"
    parts.append("int main() { %s return 0; }" % body)
    return "\n".join(parts)


@st.composite
def single_function_programs(draw) -> str:
    """No calls at all — the ground for exact sparse == data-flow
    equivalence checks."""
    main_body = draw(statements(counter=[0]))
    return "%s\nint main() { %s return 0; }" % (_globals_header(),
                                                " ".join(main_body))


@st.composite
def multithreaded_programs(draw) -> str:
    """Main plus up to two worker threads, optional joins."""
    parts = [_globals_header()]
    n_workers = draw(st.integers(min_value=1, max_value=2))
    for w in range(n_workers):
        body = draw(statements(counter=[0]))
        parts.append("void *worker%d(void *arg) { %s return null; }"
                     % (w, " ".join(body)))
    main_counter = [0]
    pre = draw(statements(counter=main_counter))
    mid = draw(statements(counter=main_counter))
    post = draw(statements(counter=main_counter))
    join_style = draw(st.sampled_from(["all", "none", "partial"]))
    body_lines = [" ".join(pre)]
    for w in range(n_workers):
        body_lines.append(f"fork(&t{w}, worker{w}, null);")
    body_lines.append(" ".join(mid))
    if join_style == "all":
        for w in range(n_workers):
            body_lines.append(f"join(t{w});")
    elif join_style == "partial":
        body_lines.append("join(t0);")
    body_lines.append(" ".join(post))
    decls = " ".join(f"thread_t t{w};" for w in range(n_workers))
    parts.append("int main() { %s %s return 0; }" % (decls, " ".join(body_lines)))
    return "\n".join(parts)
