"""Workload generator tests: every benchmark compiles and analyses."""

import pytest

from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.ir import Fork, Join, Lock, verify_module
from repro.workloads import WORKLOADS, get_workload, source_loc, workload_names


class TestRegistry:
    def test_ten_programs_in_table1_order(self):
        assert workload_names() == [
            "word_count", "kmeans", "radiosity", "automount", "ferret",
            "bodytrack", "httpd_server", "mt_daapd", "raytrace", "x264",
        ]

    def test_paper_loc_totals(self):
        assert sum(w.paper_loc for w in WORKLOADS.values()) == 380659

    def test_descriptions_match_table1(self):
        assert get_workload("kmeans").description == "Iterative clustering of 3-D points"
        assert get_workload("x264").description == "Media processing"


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkload:
    def test_compiles_and_verifies(self, name):
        src = get_workload(name).source(1)
        module = compile_source(src, name=name)
        verify_module(module)

    def test_loc_grows_with_scale(self, name):
        w = get_workload(name)
        assert source_loc(w.source(2)) > source_loc(w.source(1))

    def test_uses_threads(self, name):
        src = get_workload(name).source(1)
        module = compile_source(src, name=name)
        assert any(isinstance(i, Fork) for i in module.all_instructions())

    def test_fsam_analyzes(self, name):
        src = get_workload(name).source(1)
        module = compile_source(src, name=name)
        result = FSAM(module).run()
        assert result.points_to_entries() > 0
        assert len(result.thread_model.threads) >= 2


class TestIdioms:
    def test_word_count_symmetric_loops(self):
        module = compile_source(get_workload("word_count").source(1))
        result = FSAM(module).run()
        assert result.thread_model.symmetric_pairs

    def test_radiosity_lock_heavy(self):
        src = get_workload("radiosity").source(1)
        module = compile_source(src)
        locks = [i for i in module.all_instructions() if isinstance(i, Lock)]
        assert len(locks) >= 8

    def test_httpd_has_detached_workers(self):
        module = compile_source(get_workload("httpd_server").source(1))
        result = FSAM(module).run()
        workers = [t for t in result.thread_model.threads
                   if not t.is_main and t.routine.name == "connection_worker"]
        assert workers and workers[0].multi_forked

    def test_x264_lagged_joins_not_symmetric(self):
        module = compile_source(get_workload("x264").source(1))
        result = FSAM(module).run()
        frame_threads = [t for t in result.thread_model.threads
                         if not t.is_main and t.routine.name == "frame_encode"]
        assert frame_threads and frame_threads[0].multi_forked

    def test_ferret_pipeline_stage_threads(self):
        module = compile_source(get_workload("ferret").source(1))
        result = FSAM(module).run()
        stages = {t.routine.name for t in result.thread_model.threads if not t.is_main}
        assert len(stages) == 5
        assert all(not t.multi_forked for t in result.thread_model.threads)
