"""Workload generators must be pure functions of their scale."""

import pytest

from repro.workloads import get_workload, workload_names


@pytest.mark.parametrize("name", workload_names())
def test_generation_deterministic(name):
    w = get_workload(name)
    assert w.source(1) == w.source(1)
    assert w.source(2) == w.source(2)


@pytest.mark.parametrize("name", workload_names())
def test_default_scale_positive(name):
    w = get_workload(name)
    assert w.default_scale >= 1
    assert w.source()  # default scale generates non-empty source
