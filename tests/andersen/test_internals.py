"""Andersen solver internals: cycles, watchers, field chains."""

from repro.andersen import AndersenSolver, run_andersen
from repro.frontend import compile_source
from repro.ir import Call


def analyze(src):
    m = compile_source(src)
    return m, run_andersen(m)


def names(objs):
    return sorted(o.name for o in objs)


class TestCycleCollapsing:
    def test_pointer_cycle_through_memory(self):
        # p -> *pp -> p: a load/store cycle must converge.
        m, a = analyze("""
int x;
int *p; int **pp;
int main() {
    p = &x;
    pp = &p;
    *pp = *pp;
    p = *pp;
    return 0;
}
""")
        assert names(a.pts(m.globals["p"])) == ["x"]

    def test_large_copy_chain_converges(self):
        decls = "\n".join(f"int *v{i};" for i in range(50))
        copies = "\n".join(f"v{i + 1} = v{i};" for i in range(49))
        m, a = analyze(f"""
int x;
{decls}
int main() {{
    v0 = &x;
    {copies}
    v0 = v49;
    return 0;
}}
""")
        for i in range(50):
            assert names(a.pts(m.globals[f"v{i}"])) == ["x"]

    def test_solver_idempotent(self):
        m = compile_source("""
int x; int *p; int *q;
int main() { p = &x; q = p; return 0; }
""")
        solver = AndersenSolver(m)
        solver.generate()
        solver.solve()
        first = {id(v): set(solver.pts_of(v)) for v in m.globals.values()}
        solver.solve()  # re-solving must change nothing
        for v in m.globals.values():
            assert solver.pts_of(v) == first[id(v)]


class TestCallWatchers:
    def test_indirect_callee_found_late(self):
        # The function pointer is populated through two hops of memory,
        # so the callsite's watcher fires only after propagation.
        m, a = analyze("""
int g;
void target(int *p) { *p = 1; }
int *slot;
int **cell;
int main() {
    int *fp;
    cell = &slot;
    *cell = target;
    fp = *cell;
    fp(&g);
    return 0;
}
""")
        calls = [i for i in m.all_instructions()
                 if isinstance(i, Call) and i.args]
        resolved = set()
        for c in calls:
            resolved |= {f.name for f in a.callgraph.callees(c)}
        assert "target" in resolved

    def test_fork_routine_via_pointer(self):
        m, a = analyze("""
int g;
int *routine_slot;
void *w(void *arg) { g = 1; return null; }
int main() {
    thread_t t;
    int *r;
    routine_slot = w;
    r = routine_slot;
    fork(&t, r, null);
    join(t);
    return 0;
}
""")
        from repro.ir import Fork
        fork = next(i for i in m.all_instructions() if isinstance(i, Fork))
        assert {f.name for f in a.callgraph.callees(fork)} == {"w"}


class TestContentSets:
    def test_object_content_queries(self):
        m, a = analyze("""
int x; int y;
int *p;
int **pp;
int main() {
    p = &x;
    pp = &p;
    *pp = &y;
    return 0;
}
""")
        p_obj = m.globals["p"]
        assert set(names(a.pts(p_obj))) >= {"y"}

    def test_unknown_value_empty(self):
        m, a = analyze("int main() { return 0; }")
        from repro.ir.values import Temp
        from repro.ir.types import INT
        ghost = Temp("ghost", INT)
        assert a.pts(ghost) == set()
