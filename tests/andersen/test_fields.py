"""Field-sensitivity tests for the pre-analysis."""

from repro.andersen import run_andersen
from repro.andersen.fields import MAX_FIELD_DEPTH, derive_field
from repro.frontend import compile_source
from repro.ir.types import StructType, INT
from repro.ir.values import MemObject, ObjectKind


def analyze(src):
    m = compile_source(src)
    return m, run_andersen(m)


def names(objs):
    return sorted(o.name for o in objs)


class TestFieldSensitivity:
    def test_distinct_fields_distinct_targets(self):
        m, a = analyze("""
        struct pair { int *fst; int *snd; };
        int x; int y;
        struct pair g;
        int *out1; int *out2;
        int main() {
            g.fst = &x;
            g.snd = &y;
            out1 = g.fst;
            out2 = g.snd;
            return 0; }
        """)
        assert names(a.pts(m.globals["out1"])) == ["x"]
        assert names(a.pts(m.globals["out2"])) == ["y"]

    def test_heap_fields(self):
        m, a = analyze("""
        struct node { int v; struct node *next; };
        struct node *head;
        int main() {
            struct node *n;
            n = malloc(struct node);
            n->next = n;
            head = n;
            return 0; }
        """)
        heap = next(o for o in m.objects if o.name.startswith("malloc"))
        next_field = heap.fields()[1]
        assert heap in a.pts(next_field)

    def test_arrays_monolithic(self):
        m, a = analyze("""
        int x; int y;
        int *arr[4];
        int *out;
        int main() {
            arr[0] = &x;
            arr[3] = &y;
            out = arr[1];
            return 0; }
        """)
        # One abstract object for the whole array: both targets seen.
        assert names(a.pts(m.globals["out"])) == ["x", "y"]

    def test_array_of_structs_shares_fields(self):
        m, a = analyze("""
        struct cell { int *p; };
        int x;
        struct cell cells[4];
        int *out;
        int main() {
            cells[0].p = &x;
            out = cells[2].p;
            return 0; }
        """)
        assert names(a.pts(m.globals["out"])) == ["x"]


class TestPWCDefence:
    def test_derive_field_caps_depth(self):
        s = StructType("s")
        s.fields = [("self", s)]
        obj = MemObject("o", s, ObjectKind.GLOBAL)
        walk = obj
        for _ in range(MAX_FIELD_DEPTH + 5):
            walk = derive_field(walk, 0)
        # The chain must terminate on a fixed object.
        assert derive_field(walk, 0) is walk

    def test_derive_field_non_struct_identity(self):
        obj = MemObject("o", INT, ObjectKind.GLOBAL)
        assert derive_field(obj, 0) is obj

    def test_derive_field_array_index_identity(self):
        obj = MemObject("o", INT, ObjectKind.GLOBAL)
        assert derive_field(obj, None) is obj

    def test_out_of_range_field_identity(self):
        s = StructType("s", [("a", INT)])
        obj = MemObject("o", s, ObjectKind.GLOBAL)
        assert derive_field(obj, 5) is obj

    def test_recursive_struct_program_terminates(self):
        m, a = analyze("""
        struct n { struct n *next; };
        struct n *head;
        int main() {
            struct n *cur; int i;
            head = malloc(struct n);
            cur = head;
            for (i = 0; i < 4; i = i + 1) {
                cur->next = malloc(struct n);
                cur = cur->next;
            }
            return 0; }
        """)
        assert a.pts(m.globals["head"])
