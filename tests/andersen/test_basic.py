"""Andersen pre-analysis: core inclusion constraints."""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.ir import Load, Store


def analyze(src):
    m = compile_source(src)
    return m, run_andersen(m)


def names(objs):
    return sorted(o.name for o in objs)


class TestCoreConstraints:
    def test_addr_of(self):
        m, a = analyze("int x; int *p; int main() { p = &x; return 0; }")
        assert names(a.pts(m.globals["p"])) == ["x"]

    def test_copy_through_globals(self):
        m, a = analyze("""
        int x; int *p; int *q;
        int main() { p = &x; q = p; return 0; }
        """)
        assert names(a.pts(m.globals["q"])) == ["x"]

    def test_flow_insensitive_union(self):
        m, a = analyze("""
        int x; int y; int *p;
        int main() { p = &x; p = &y; return 0; }
        """)
        assert names(a.pts(m.globals["p"])) == ["x", "y"]

    def test_load_store_indirection(self):
        m, a = analyze("""
        int x; int *p; int **pp; int *q;
        int main() { p = &x; pp = &p; q = *pp; return 0; }
        """)
        assert names(a.pts(m.globals["q"])) == ["x"]

    def test_store_through_pointer(self):
        m, a = analyze("""
        int x; int y; int *p; int **pp;
        int main() { pp = &p; *pp = &y; return 0; }
        """)
        assert "y" in names(a.pts(m.globals["p"]))

    def test_null_points_nowhere(self):
        m, a = analyze("int *p; int main() { p = null; return 0; }")
        assert a.pts(m.globals["p"]) == set()

    def test_copy_cycle_collapses(self):
        m, a = analyze("""
        int x; int *p; int *q; int *r;
        int main() { int i;
            p = &x;
            for (i = 0; i < 3; i = i + 1) { q = p; r = q; p = r; }
            return 0; }
        """)
        assert names(a.pts(m.globals["p"])) == ["x"]
        assert names(a.pts(m.globals["q"])) == ["x"]
        assert names(a.pts(m.globals["r"])) == ["x"]

    def test_may_alias(self):
        m, a = analyze("""
        int x; int y; int *p; int *q; int *r;
        int main() { p = &x; q = &x; r = &y; return 0; }
        """)
        p, q, r = m.globals["p"], m.globals["q"], m.globals["r"]
        assert a.may_alias(p, q)
        assert not a.may_alias(p, r)
        assert names(a.alias_set(p, q)) == ["x"]

    def test_heap_contents(self):
        m, a = analyze("""
        int g;
        int **pp;
        int main() { pp = malloc(sizeof(int)); *pp = &g; return 0; }
        """)
        heap = next(o for o in m.objects if o.name.startswith("malloc"))
        assert names(a.pts(heap)) == ["g"]


class TestInterprocedural:
    def test_param_passing(self):
        m, a = analyze("""
        int x; int *keep;
        void f(int *p) { keep = p; }
        int main() { f(&x); return 0; }
        """)
        assert names(a.pts(m.globals["keep"])) == ["x"]

    def test_return_values(self):
        m, a = analyze("""
        int x; int *got;
        int *mk() { return &x; }
        int main() { got = mk(); return 0; }
        """)
        assert names(a.pts(m.globals["got"])) == ["x"]

    def test_multi_callsite_merging(self):
        m, a = analyze("""
        int x; int y; int *keep;
        void f(int *p) { keep = p; }
        int main() { f(&x); f(&y); return 0; }
        """)
        assert names(a.pts(m.globals["keep"])) == ["x", "y"]

    def test_recursive_flow(self):
        m, a = analyze("""
        int x; int *keep;
        void walk(int *p, int n) {
            keep = p;
            if (n > 0) { walk(p, n - 1); }
        }
        int main() { walk(&x, 3); return 0; }
        """)
        assert names(a.pts(m.globals["keep"])) == ["x"]

    def test_fork_arg_flows_to_routine_param(self):
        m, a = analyze("""
        int x; int *keep;
        void *w(void *arg) { keep = arg; return null; }
        int main() { thread_t t; fork(&t, w, &x); join(t); return 0; }
        """)
        assert names(a.pts(m.globals["keep"])) == ["x"]

    def test_thread_id_objects_per_fork(self):
        m, a = analyze("""
        void *w(void *arg) { return null; }
        int main() { thread_t t1; thread_t t2;
            fork(&t1, w, null); fork(&t2, w, null);
            join(t1); join(t2); return 0; }
        """)
        assert len(a.thread_objects) == 2
        tids = list(a.thread_objects.values())
        assert tids[0] is not tids[1]
