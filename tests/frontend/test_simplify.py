"""IR simplification pass tests."""

import pytest

from repro.frontend import compile_source, simplify_module
from repro.fsam import FSAM
from repro.ir import Branch, Copy, Jump, Load, Phi, verify_module
from repro.workloads import get_workload


def count(module, kind):
    return sum(1 for i in module.all_instructions() if isinstance(i, kind))


def instr_count(module):
    return sum(1 for _ in module.all_instructions())


class TestPasses:
    def test_copies_removed(self):
        m = compile_source("""
int x;
int *out;
int main() { int *a; int *b; a = &x; b = a; out = b; return 0; }
""", simplify=True)
        assert count(m, Copy) == 0
        verify_module(m)

    def test_constant_branch_folded(self):
        m = compile_source("""
int g;
int main() { if (1) { g = 1; } else { g = 2; } return g; }
""", simplify=True)
        assert count(m, Branch) == 0
        verify_module(m)
        # The dead else-branch store vanished with its block.
        from repro.ir import Store
        stores = [i for i in m.all_instructions() if isinstance(i, Store)]
        assert len(stores) == 1

    def test_blocks_merged(self):
        raw = compile_source("""
int g;
int main() { if (1) { g = 1; } else { g = 2; } return g; }
""")
        simplified = compile_source("""
int g;
int main() { if (1) { g = 1; } else { g = 2; } return g; }
""", simplify=True)
        assert len(simplified.functions["main"].blocks) < len(raw.functions["main"].blocks)

    def test_dead_loads_removed(self):
        m = compile_source("""
int g; int *p;
int main() {
    int *unused;
    unused = p;
    return 0;
}
""", simplify=True)
        assert count(m, Load) == 0

    def test_single_source_phi_folded(self):
        m = compile_source("""
int g;
int main() {
    int x;
    x = 5;
    if (g) { } else { }
    return x;
}
""", simplify=True)
        assert count(m, Phi) == 0

    def test_stats_reported(self):
        m = compile_source("""
int x; int *out;
int main() { int *a; a = &x; out = a; if (1) { } return 0; }
""")
        stats = simplify_module(m)
        assert stats["copies_propagated"] >= 0
        assert stats["branches_folded"] >= 1
        verify_module(m)


class TestSemanticPreservation:
    @pytest.mark.parametrize("name", ["word_count", "radiosity", "ferret"])
    def test_fsam_results_identical(self, name):
        src = get_workload(name).source(1)
        plain = FSAM(compile_source(src)).run()
        slim = FSAM(compile_source(src, simplify=True)).run()

        def norm(objs):
            return {"tid" if o.name.startswith("tid.fork") else o.name
                    for o in objs}

        m1 = plain.module
        m2 = slim.module
        loads1 = [i for i in m1.all_instructions() if isinstance(i, Load)]
        loads2 = [i for i in m2.all_instructions() if isinstance(i, Load)]
        # Simplification may delete dead loads; compare by line+order
        # of the survivors.
        by_pos2 = {}
        for l2 in loads2:
            by_pos2.setdefault((l2.function.name, l2.line), []).append(l2)
        for l1 in loads1:
            bucket = by_pos2.get((l1.function.name, l1.line))
            if not bucket:
                continue
            l2 = bucket[0]
            assert norm(plain.pts(l1.dst)) == norm(slim.pts(l2.dst)), (
                f"{name}: simplification changed pt() at {l1!r}")

    @pytest.mark.parametrize("name", ["word_count", "radiosity", "ferret"])
    def test_ir_shrinks(self, name):
        src = get_workload(name).source(1)
        plain = compile_source(src)
        slim = compile_source(src, simplify=True)
        assert instr_count(slim) < instr_count(plain)

    def test_interpreter_agrees(self):
        src = """
int g; int x; int y;
int *p; int *c;
void *w(void *arg) { p = &y; return null; }
int main() {
    thread_t t;
    p = &x;
    fork(&t, w, null);
    join(t);
    c = p;
    return 0;
}
"""
        from repro.interp import run_program
        m = compile_source(src, simplify=True)
        verify_module(m)
        obs = run_program(m, seed=3)
        assert {o.target.name for o in obs} <= {"x", "y"}
