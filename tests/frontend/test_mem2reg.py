"""SSA-construction (mem2reg) tests."""

from repro.frontend import compile_source
from repro.ir import AddrOf, Load, Phi, Store, verify_module
from repro.ir.values import ObjectKind


def main_instrs(m, kind):
    return [i for i in m.functions["main"].instructions() if isinstance(i, kind)]


class TestPromotion:
    def test_straightline_promotion_removes_memory_ops(self):
        m = compile_source("int main() { int a; int b; a = 1; b = a; return b; }")
        assert not main_instrs(m, Load)
        assert not main_instrs(m, Store)
        assert not main_instrs(m, Phi)

    def test_if_join_gets_phi(self):
        m = compile_source("""
        int main() { int x; if (1) { x = 1; } else { x = 2; } return x; }
        """)
        phis = main_instrs(m, Phi)
        assert len(phis) == 1
        incoming = {repr(v) for v, _ in phis[0].incomings}
        assert incoming == {"1", "2"}

    def test_loop_header_phi(self):
        m = compile_source("""
        int main() { int i; i = 0; while (i < 3) { i = i + 1; } return i; }
        """)
        phis = main_instrs(m, Phi)
        assert len(phis) == 1
        assert len(phis[0].incomings) == 2

    def test_uninitialised_use_gets_zero(self):
        m = compile_source("int main() { int x; return x; }")
        ret = [i for i in m.functions["main"].instructions()][-1]
        assert repr(ret.value) == "0"

    def test_pointer_local_promoted_with_null_undef(self):
        m = compile_source("""
        int g;
        int main() { int *p; if (1) { p = &g; } return 0; }
        """)
        phis = main_instrs(m, Phi)
        # p is live-out of the if; one incoming is null (undef).
        if phis:
            values = {repr(v) for v, _ in phis[0].incomings}
            assert "null" in values

    def test_escaping_local_not_promoted(self):
        m = compile_source("""
        void taker(int *p) { *p = 1; }
        int main() { int x; taker(&x); return x; }
        """)
        stack_addrs = [i for i in main_instrs(m, AddrOf)
                       if i.obj.kind is ObjectKind.STACK]
        assert stack_addrs

    def test_struct_local_not_promoted(self):
        m = compile_source("""
        struct s { int a; };
        int main() { struct s v; v.a = 1; return v.a; }
        """)
        assert main_instrs(m, Store)

    def test_array_local_not_promoted(self):
        m = compile_source("int main() { int a[3]; a[0] = 1; return a[0]; }")
        assert main_instrs(m, Store)

    def test_params_promoted(self):
        m = compile_source("int f(int a) { return a + 1; } int main() { return f(1); }")
        f_loads = [i for i in m.functions["f"].instructions() if isinstance(i, Load)]
        assert not f_loads

    def test_param_address_taken_not_promoted(self):
        m = compile_source("""
        int f(int a) { int *p; p = &a; *p = 2; return a; }
        int main() { return f(1); }
        """)
        f_loads = [i for i in m.functions["f"].instructions() if isinstance(i, Load)]
        assert f_loads

    def test_nested_loops_verify(self):
        m = compile_source("""
        int main() { int i; int j; int s;
            s = 0;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) { s = s + i * j; }
            }
            return s; }
        """)
        verify_module(m)
        assert len(main_instrs(m, Phi)) >= 3  # i, j, s

    def test_deep_if_chain_no_recursion_error(self):
        body = "x = 0;\n" + "\n".join(
            f"if (x == {i}) {{ x = x + 1; }}" for i in range(300))
        m = compile_source("int main() { int x; " + body + " return x; }")
        verify_module(m)

    def test_value_chain_resolution(self):
        # b = a; c = b; d = c — replacement chains must resolve fully.
        m = compile_source("""
        int g;
        int main() { int *a; int *b; int *c;
            a = &g; b = a; c = b; *c = 1; return 0; }
        """)
        stores = main_instrs(m, Store)
        assert len(stores) == 1
        # The store pointer must resolve to the AddrOf temp directly.
        addr = main_instrs(m, AddrOf)[0]
        assert stores[0].ptr is addr.dst
