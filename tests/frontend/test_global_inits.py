"""Global initialiser tests (C-style, as the paper's figures write
them: ``p = &x; q = &y;`` at the top level)."""

import pytest

from repro.frontend import compile_source
from repro.fsam import analyze_source
from repro.interp import run_program
from repro.minic.errors import SemanticError


class TestGlobalInits:
    def test_address_initialiser(self):
        r = analyze_source("""
int x;
int *p = &x;
int *out;
int main() { out = p; return 0; }
""")
        assert r.global_pts_names("out") == {"x"}

    def test_number_and_null(self):
        m = compile_source("""
int n = 42;
int *p = null;
int main() { return n; }
""")
        obs = run_program(m)
        assert obs == []  # no pointer loads observed; just executes

    def test_function_pointer_initialiser(self):
        r = analyze_source("""
int g;
void setter() { g = 1; }
int *handler = setter;
int main() {
    int *fp;
    fp = handler;
    fp();
    return 0;
}
""")
        # The indirect call resolves through the initialiser.
        callees = set()
        for site in r.andersen.callgraph.call_sites():
            for callee in r.andersen.callgraph.callees(site):
                callees.add(callee.name)
        assert "setter" in callees

    def test_paper_figure1a_with_top_level_inits(self):
        # The paper writes the figure exactly like this.
        r = analyze_source("""
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(14) == {"y", "z"}

    def test_interpreter_sees_initialisers(self):
        m = compile_source("""
int x;
int *p = &x;
int *out;
int main() { out = p; out = out; return 0; }
""")
        obs = run_program(m)
        assert any(o.target.name == "x" for o in obs)

    def test_non_constant_initialiser_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("""
int a;
int b = a;
int main() { return 0; }
""")

    def test_arbitrary_expression_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("""
int x;
int *p = &x + 1;
int main() { return 0; }
""")
