"""AST -> IR lowering tests (pre- and post-mem2reg)."""

import pytest

from repro.frontend import compile_source, lower_program
from repro.ir import (
    AddrOf, Call, Fork, Gep, Join, Load, Lock, Phi, Ret, Store, Unlock,
    verify_module,
)
from repro.ir.types import ArrayType, PointerType, StructType
from repro.ir.values import ObjectKind
from repro.minic import parse
from repro.minic.errors import SemanticError


def instrs_of(module, fn, kind):
    return [i for i in module.functions[fn].instructions() if isinstance(i, kind)]


class TestBasics:
    def test_simple_program_verifies(self):
        m = compile_source("int main() { return 0; }")
        verify_module(m)
        assert "main" in m.functions

    def test_globals_registered(self):
        m = compile_source("int g; int *p; int main() { return 0; }")
        assert set(m.globals) == {"g", "p"}
        assert m.globals["g"].kind is ObjectKind.GLOBAL

    def test_global_array_monolithic(self):
        m = compile_source("int a[4]; int main() { a[2] = 1; return 0; }")
        assert m.globals["a"].is_array
        assert isinstance(m.globals["a"].type, ArrayType)

    def test_address_taken_local_stays_in_memory(self):
        m = compile_source("""
        int main() { int x; int *p; p = &x; *p = 1; return x; }
        """)
        # x is address-taken: an AddrOf of a stack object must survive.
        addrs = [i for i in instrs_of(m, "main", AddrOf)
                 if i.obj.kind is ObjectKind.STACK]
        assert addrs, "address-taken local must remain a stack object"

    def test_promotable_local_vanishes(self):
        m = compile_source("int main() { int x; x = 1; x = x + 1; return x; }")
        # x never has its address taken: mem2reg removes all loads/stores.
        assert not instrs_of(m, "main", Load)
        assert not instrs_of(m, "main", Store)

    def test_malloc_creates_heap_object(self):
        m = compile_source("""
        struct s { int v; };
        int main() { struct s *p; p = malloc(struct s); return 0; }
        """)
        heaps = [o for o in m.objects if o.kind is ObjectKind.HEAP]
        assert len(heaps) == 1
        assert isinstance(heaps[0].type, StructType)

    def test_distinct_malloc_sites_distinct_objects(self):
        m = compile_source("""
        int main() { int *p; int *q;
            p = malloc(int);
            q = malloc(int);
            return 0; }
        """)
        heaps = [o for o in m.objects if o.kind is ObjectKind.HEAP]
        assert len(heaps) == 2

    def test_field_access_lowers_to_gep(self):
        m = compile_source("""
        struct s { int a; int b; };
        struct s g;
        int main() { g.b = 1; return 0; }
        """)
        geps = instrs_of(m, "main", Gep)
        assert any(g.field_index == 1 for g in geps)

    def test_array_index_lowers_to_monolithic_gep(self):
        m = compile_source("int a[4]; int main() { a[1] = 2; return 0; }")
        geps = instrs_of(m, "main", Gep)
        assert any(g.field_index is None for g in geps)

    def test_struct_array_field_indexing(self):
        m = compile_source("""
        struct mb { int q; };
        struct fr { struct mb mbs[4]; };
        struct fr g;
        int main() { g.mbs[1].q = 3; return 0; }
        """)
        verify_module(m)


class TestControlFlow:
    def test_if_produces_branch_blocks(self):
        m = compile_source("int main() { int x; if (1) { x = 1; } else { x = 2; } return x; }")
        assert len(m.functions["main"].blocks) >= 4

    def test_loop_var_gets_phi(self):
        m = compile_source("int main() { int i; for (i = 0; i < 3; i = i + 1) { } return i; }")
        assert instrs_of(m, "main", Phi)

    def test_break_and_continue(self):
        m = compile_source("""
        int main() { int i;
            for (i = 0; i < 9; i = i + 1) {
                if (i == 2) { continue; }
                if (i == 5) { break; }
            }
            return i; }
        """)
        verify_module(m)

    def test_code_after_return_pruned(self):
        m = compile_source("int g; int main() { return 0; g = 1; }")
        stores = instrs_of(m, "main", Store)
        assert not stores  # the dead store was unreachable

    def test_multiple_returns(self):
        m = compile_source("int main() { if (1) { return 1; } return 2; }")
        rets = instrs_of(m, "main", Ret)
        assert len(rets) == 2

    def test_implicit_return_added(self):
        m = compile_source("void f() { } int main() { f(); return 0; }")
        assert instrs_of(m, "f", Ret)


class TestCallsAndThreads:
    def test_direct_call(self):
        m = compile_source("int f(int a) { return a; } int main() { return f(1); }")
        calls = instrs_of(m, "main", Call)
        assert len(calls) == 1 and not calls[0].is_indirect

    def test_fork_join_lock_unlock_lowered(self):
        m = compile_source("""
        mutex_t mu;
        void *w(void *a) { return null; }
        int main() { thread_t t;
            lock(&mu);
            fork(&t, w, null);
            unlock(&mu);
            join(t);
            return 0; }
        """)
        assert instrs_of(m, "main", Fork)
        assert instrs_of(m, "main", Join)
        assert instrs_of(m, "main", Lock)
        assert instrs_of(m, "main", Unlock)

    def test_thread_handle_not_promoted(self):
        m = compile_source("""
        void *w(void *a) { return null; }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """)
        # The fork takes &t: t must stay a stack object.
        fork = instrs_of(m, "main", Fork)[0]
        assert fork.handle_ptr is not None

    def test_function_pointer_value(self):
        m = compile_source("""
        int f(int a) { return a; }
        int main() { int *fp; fp = f; return fp(2); }
        """)
        verify_module(m)

    def test_recursion_marks_locals(self):
        m = compile_source("""
        int fact(int n) { int tmp; int *p; p = &tmp; if (n < 2) { return 1; } return n * fact(n - 1); }
        int main() { return fact(3); }
        """)
        rec_objs = [o for o in m.objects if o.in_recursion and o.alloc_fn == "fact"]
        assert rec_objs, "locals of recursive functions must be flagged"
        assert all(not o.is_singleton for o in rec_objs)


class TestSemanticErrors:
    def test_unknown_variable(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { x = 1; return 0; }")

    def test_unknown_struct(self):
        with pytest.raises(SemanticError):
            compile_source("struct nope *p; int main() { return 0; }")

    def test_unknown_field(self):
        with pytest.raises(SemanticError):
            compile_source("""
            struct s { int a; };
            struct s g;
            int main() { g.b = 1; return 0; }
            """)

    def test_duplicate_local(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { int x; int x; return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { break; return 0; }")

    def test_member_on_non_struct(self):
        with pytest.raises(SemanticError):
            compile_source("int g; int main() { g.a = 1; return 0; }")

    def test_assign_to_literal(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { 3 = 4; return 0; }")
