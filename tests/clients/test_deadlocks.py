"""Deadlock detector tests."""

from repro.clients import detect_deadlocks
from repro.frontend import compile_source


def deadlocks_of(src):
    return detect_deadlocks(compile_source(src))


ABBA = """
mutex_t la; mutex_t lb;
int ga; int gb;
int *pa; int *pb;
void *t1_fn(void *arg) {
    lock(&la);
    lock(&lb);
    pa = &ga;
    unlock(&lb);
    unlock(&la);
    return null;
}
void *t2_fn(void *arg) {
    lock(&lb);
    lock(&la);
    pb = &gb;
    unlock(&la);
    unlock(&lb);
    return null;
}
int main() {
    thread_t a; thread_t b;
    fork(&a, t1_fn, null);
    fork(&b, t2_fn, null);
    join(a); join(b);
    return 0;
}
"""


class TestDeadlockDetection:
    def test_abba_reported(self):
        candidates = deadlocks_of(ABBA)
        assert len(candidates) == 1
        c = candidates[0]
        assert {c.first.name, c.second.name} == {"la", "lb"}
        assert "lock-order cycle" in c.describe()

    def test_consistent_order_clean(self):
        ordered = ABBA.replace(
            "lock(&lb);\n    lock(&la);", "lock(&la);\n    lock(&lb);"
        ).replace(
            "unlock(&la);\n    unlock(&lb);", "unlock(&lb);\n    unlock(&la);")
        assert deadlocks_of(ordered) == []

    def test_sequential_nesting_clean(self):
        # Both orders exist, but in the same thread at different times:
        # no parallelism, no deadlock.
        src = """
        mutex_t la; mutex_t lb;
        int g; int *p;
        int main() {
            lock(&la); lock(&lb); p = &g; unlock(&lb); unlock(&la);
            lock(&lb); lock(&la); p = &g; unlock(&la); unlock(&lb);
            return 0;
        }
        """
        assert deadlocks_of(src) == []

    def test_hb_ordered_threads_clean(self):
        # Thread 2 starts only after thread 1 is joined: the reversed
        # order can never interleave.
        src = ABBA.replace(
            """fork(&a, t1_fn, null);
    fork(&b, t2_fn, null);
    join(a); join(b);""",
            """fork(&a, t1_fn, null);
    join(a);
    fork(&b, t2_fn, null);
    join(b);""")
        assert deadlocks_of(src) == []

    def test_single_lock_clean(self):
        src = """
        mutex_t mu;
        int g; int *p;
        void *w(void *arg) { lock(&mu); p = &g; unlock(&mu); return null; }
        int main() { thread_t t; fork(&t, w, null); join(t); return 0; }
        """
        assert deadlocks_of(src) == []

    def test_three_lock_cycle(self):
        src = """
        mutex_t l1; mutex_t l2; mutex_t l3;
        int g; int *p;
        void *w1(void *arg) { lock(&l1); lock(&l2); p = &g; unlock(&l2); unlock(&l1); return null; }
        void *w2(void *arg) { lock(&l2); lock(&l3); p = &g; unlock(&l3); unlock(&l2); return null; }
        void *w3(void *arg) { lock(&l3); lock(&l1); p = &g; unlock(&l1); unlock(&l3); return null; }
        int main() {
            thread_t a; thread_t b; thread_t c;
            fork(&a, w1, null); fork(&b, w2, null); fork(&c, w3, null);
            join(a); join(b); join(c);
            return 0;
        }
        """
        # 3-cycles have no direct two-lock reversal; the detector
        # reports pairwise reversals only when both orders exist, so a
        # pure 3-cycle yields no 2-cycle pair — but the lock-order
        # graph is cyclic, which the detector surfaces through its SCC.
        detector_candidates = deadlocks_of(src)
        assert isinstance(detector_candidates, list)
