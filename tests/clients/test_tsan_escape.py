"""Instrumentation-reduction and escape-classification client tests."""

from repro.clients import (
    AccessClass, EscapeClass, classify_escapes, reduce_instrumentation,
)
from repro.frontend import compile_source
from repro.ir import Load, Store


MIXED = """
mutex_t mu;
int g;
int *locked_shared;     // only ever touched under mu
int *racy_shared;       // touched without protection
int *main_only;         // never touched by the worker

void *worker(void *arg) {
    lock(&mu);
    locked_shared = &g;
    unlock(&mu);
    racy_shared = &g;
    return null;
}

int main() {
    thread_t t;
    int *x;
    fork(&t, worker, null);
    lock(&mu);
    x = locked_shared;
    unlock(&mu);
    x = racy_shared;
    main_only = &g;
    join(t);
    return 0;
}
"""


class TestInstrumentationReduction:
    def test_classification(self):
        m = compile_source(MIXED)
        report = reduce_instrumentation(m)
        by_class = {}
        for instr_id, cls in report.classes.items():
            instr = report.accesses[instr_id]
            if isinstance(instr, (Load, Store)):
                by_class.setdefault(cls, []).append(instr)
        assert report.count(AccessClass.RACY) >= 2      # racy_shared pair
        assert report.count(AccessClass.LOCKED) >= 2    # locked_shared pair
        assert report.count(AccessClass.LOCAL) >= 1     # main_only

    def test_reduction_fraction(self):
        m = compile_source(MIXED)
        report = reduce_instrumentation(m)
        assert 0.0 < report.reduction < 1.0
        assert "instrumentation avoided" in report.summary()

    def test_sequential_program_everything_local(self):
        m = compile_source("""
        int g; int *p; int *q;
        int main() { p = &g; q = p; return 0; }
        """)
        report = reduce_instrumentation(m)
        assert report.count(AccessClass.RACY) == 0
        assert report.reduction == 1.0

    def test_workload_reduction_substantial(self):
        from repro.workloads import get_workload
        m = compile_source(get_workload("radiosity").source(1))
        report = reduce_instrumentation(m)
        # Lock-heavy code: most accesses provably not racy.
        assert report.reduction > 0.5


class TestEscapeClassification:
    def test_mixed_program(self):
        m = compile_source(MIXED)
        report = classify_escapes(m)
        classes = {report.objects[k].name: v for k, v in report.classes.items()}
        assert classes["locked_shared"] is EscapeClass.SHARED
        assert classes["racy_shared"] is EscapeClass.SHARED
        assert classes["main_only"] is EscapeClass.THREAD_LOCAL

    def test_multi_forked_self_sharing(self):
        m = compile_source("""
        int g; int *p;
        thread_t tids[4];
        void *w(void *arg) { p = &g; p = p; return null; }
        int main() { int i;
            for (i = 0; i < 4; i = i + 1) { fork(&tids[i], w, null); }
            return 0; }
        """)
        report = classify_escapes(m)
        classes = {report.objects[k].name: v for k, v in report.classes.items()}
        # p is touched only by the worker, but the worker is
        # multi-forked: instances share it.
        assert classes["p"] is EscapeClass.SHARED

    def test_sequential_all_local(self):
        m = compile_source("""
        int g; int *p;
        int main() { p = &g; p = p; return 0; }
        """)
        report = classify_escapes(m)
        assert report.count(EscapeClass.SHARED) == 0
        assert report.count(EscapeClass.THREAD_LOCAL) >= 1
        assert "objects" in report.summary()
