"""Data race detector tests."""

from repro.clients import detect_races
from repro.frontend import compile_source


def races_of(src):
    return detect_races(compile_source(src))


class TestRaceDetection:
    def test_unprotected_concurrent_write_read(self):
        races = races_of("""
int g; int x;
int *shared;
int *c;
void *w(void *arg) { shared = &g; return null; }
int main() {
    thread_t t;
    shared = &x;
    fork(&t, w, null);
    c = shared;
    return 0;
}
""")
        assert races
        assert any(r.obj.name == "shared" for r in races)

    def test_lock_protected_accesses_not_reported(self):
        races = races_of("""
int g; int x;
int *shared;
int *c;
mutex_t mu;
void *w(void *arg) {
    lock(&mu);
    shared = &g;
    unlock(&mu);
    return null;
}
int main() {
    thread_t t;
    fork(&t, w, null);
    lock(&mu);
    c = shared;
    unlock(&mu);
    return 0;
}
""")
        assert not any(r.obj.name == "shared" for r in races)

    def test_join_ordered_accesses_not_reported(self):
        races = races_of("""
int g; int x;
int *shared;
int *c;
void *w(void *arg) { shared = &g; return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    join(t);
    c = shared;
    return 0;
}
""")
        assert races == []

    def test_sequential_program_no_races(self):
        races = races_of("""
int x;
int *p; int *q;
int main() { p = &x; q = p; return 0; }
""")
        assert races == []

    def test_write_write_race(self):
        races = races_of("""
int a_t; int b_t;
int *shared;
void *w(void *arg) { shared = &a_t; return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    shared = &b_t;
    join(t);
    return 0;
}
""")
        ww = [r for r in races if r.is_write_write and r.obj.name == "shared"]
        assert ww

    def test_partially_locked_still_races(self):
        # Only one side takes the lock: still a race.
        races = races_of("""
int g; int x;
int *shared;
int *c;
mutex_t mu;
void *w(void *arg) {
    lock(&mu);
    shared = &g;
    unlock(&mu);
    return null;
}
int main() {
    thread_t t;
    fork(&t, w, null);
    c = shared;
    return 0;
}
""")
        assert any(r.obj.name == "shared" for r in races)

    def test_describe_readable(self):
        races = races_of("""
int g;
int *shared;
void *w(void *arg) { shared = &g; return null; }
int main() {
    thread_t t;
    fork(&t, w, null);
    shared = null;
    join(t);
    return 0;
}
""")
        assert races
        text = races[0].describe()
        assert "race on 'shared'" in text
