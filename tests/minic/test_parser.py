"""Parser tests: structure of the produced AST."""

import pytest

from repro.minic import ast, parse
from repro.minic.errors import ParseError


class TestTopLevel:
    def test_global_declarations(self):
        p = parse("int g; int *q; thread_t t; mutex_t m;")
        assert [g.name for g in p.globals] == ["g", "q", "t", "m"]
        assert p.globals[1].type_spec.pointers == 1

    def test_global_array(self):
        p = parse("int buf[16];")
        assert p.globals[0].array_size == 16

    def test_struct_definition(self):
        p = parse("struct node { int v; struct node *next; };")
        s = p.structs[0]
        assert s.name == "node"
        assert [f.name for f in s.fields] == ["v", "next"]
        assert s.fields[1].type_spec.base == "struct node"

    def test_struct_array_field(self):
        p = parse("struct f { int xs[8]; };")
        assert p.structs[0].fields[0].array_size == 8

    def test_function_definition(self):
        p = parse("int add(int a, int b) { return a + b; }")
        f = p.functions[0]
        assert f.name == "add"
        assert [x.name for x in f.params] == ["a", "b"]

    def test_void_param_list(self):
        p = parse("void f(void) { }")
        assert p.functions[0].params == []

    def test_pointer_return_type(self):
        p = parse("void *f(void *arg) { return null; }")
        assert p.functions[0].ret_type.pointers == 1


class TestStatements:
    def _body(self, code):
        return parse(f"int main() {{ {code} }}").functions[0].body

    def test_declaration_with_init(self):
        stmt = self._body("int x = 5;")[0]
        assert isinstance(stmt, ast.DeclStmt)
        assert isinstance(stmt.init, ast.NumberExpr)

    def test_assignment(self):
        stmt = self._body("x = y;")[0]
        assert isinstance(stmt, ast.AssignStmt)

    def test_if_else_chain(self):
        stmt = self._body("if (a) { } else if (b) { } else { x = 1; }")[0]
        assert isinstance(stmt, ast.IfStmt)
        assert isinstance(stmt.else_body[0], ast.IfStmt)

    def test_while(self):
        stmt = self._body("while (x < 3) { x = x + 1; }")[0]
        assert isinstance(stmt, ast.WhileStmt)

    def test_for_with_decl_init(self):
        stmt = self._body("for (int i = 0; i < 4; i = i + 1) { }")[0]
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_with_empty_clauses(self):
        stmt = self._body("for (;;) { break; }")[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue_return(self):
        body = self._body("while (1) { break; } while (1) { continue; } return 0;")
        assert isinstance(body[2], ast.ReturnStmt)

    def test_single_statement_bodies(self):
        stmt = self._body("if (x) y = 1;")[0]
        assert len(stmt.then_body) == 1


class TestIntrinsics:
    def _stmt(self, code):
        return parse(f"int main() {{ {code} }}").functions[0].body[0]

    def test_fork(self):
        s = self._stmt("fork(&t, worker, null);")
        assert isinstance(s, ast.ForkStmt)
        assert isinstance(s.routine, ast.NameExpr)
        assert s.arg is None  # null arg normalised away

    def test_pthread_create_spelling(self):
        s = self._stmt("pthread_create(&t, 0, worker, arg);")
        assert isinstance(s, ast.ForkStmt)
        assert isinstance(s.arg, ast.NameExpr)

    def test_join_and_pthread_join(self):
        assert isinstance(self._stmt("join(t);"), ast.JoinStmt)
        assert isinstance(self._stmt("pthread_join(t, 0);"), ast.JoinStmt)

    def test_lock_unlock(self):
        assert isinstance(self._stmt("lock(&m);"), ast.LockStmt)
        assert isinstance(self._stmt("unlock(&m);"), ast.UnlockStmt)
        assert isinstance(self._stmt("pthread_mutex_lock(&m);"), ast.LockStmt)
        assert isinstance(self._stmt("pthread_mutex_unlock(&m);"), ast.UnlockStmt)

    def test_fork_arity_error(self):
        with pytest.raises(ParseError):
            self._stmt("fork(worker);")

    def test_malloc_with_type(self):
        s = self._stmt("p = malloc(struct node);")
        assert isinstance(s.value, ast.MallocExpr)
        assert s.value.alloc_type.base == "struct node"

    def test_malloc_with_sizeof(self):
        s = self._stmt("p = malloc(sizeof(int));")
        assert isinstance(s.value, ast.MallocExpr)

    def test_malloc_bad_argument(self):
        with pytest.raises(ParseError):
            self._stmt("p = malloc(x + 1);")


class TestExpressions:
    def _expr(self, code):
        stmt = parse(f"int main() {{ x = {code}; }}").functions[0].body[0]
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self._expr("a + b * c")
        assert e.op == "+"
        assert e.rhs.op == "*"

    def test_parentheses(self):
        e = self._expr("(a + b) * c")
        assert e.op == "*"

    def test_comparison_chain(self):
        e = self._expr("a < b == c")
        assert e.op == "=="

    def test_logical_levels(self):
        e = self._expr("a && b || c")
        assert e.op == "||"

    def test_unary_deref_addr(self):
        e = self._expr("*p + &q")
        assert e.lhs.op == "*" and e.rhs.op == "&"

    def test_member_chain(self):
        e = self._expr("a->b.c")
        assert isinstance(e, ast.MemberExpr) and not e.arrow
        assert isinstance(e.base, ast.MemberExpr) and e.base.arrow

    def test_index_and_call(self):
        e = self._expr("f(a)[3]")
        assert isinstance(e, ast.IndexExpr)
        assert isinstance(e.base, ast.CallExpr)

    def test_call_with_no_args(self):
        e = self._expr("f()")
        assert isinstance(e, ast.CallExpr) and e.args == []


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { x = 1 }")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse("int main() { ")

    def test_bad_type(self):
        with pytest.raises(ParseError):
            parse("float main() { }")

    def test_array_size_must_be_literal(self):
        with pytest.raises(ParseError):
            parse("int g[n];")

    def test_struct_requires_semicolon(self):
        with pytest.raises(ParseError):
            parse("struct s { int a; }")


class TestCompoundAssignment:
    def _body(self, code):
        return parse(f"int main() {{ {code} }}").functions[0].body

    def test_plus_equals_desugars(self):
        stmt = self._body("x += 2;")[0]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.value.op == "+"
        assert isinstance(stmt.value.lhs, ast.NameExpr)

    def test_all_compound_ops(self):
        for op, expect in (("+=", "+"), ("-=", "-"), ("*=", "*"), ("/=", "/")):
            stmt = self._body(f"x {op} 3;")[0]
            assert stmt.value.op == expect

    def test_increment_decrement(self):
        inc = self._body("x++;")[0]
        dec = self._body("x--;")[0]
        assert inc.value.op == "+" and inc.value.rhs.value == 1
        assert dec.value.op == "-" and dec.value.rhs.value == 1

    def test_increment_in_for_header(self):
        stmt = self._body("for (int i = 0; i < 3; i++) { }")[0]
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.step, ast.AssignStmt)

    def test_compound_on_member(self):
        stmt = parse("""
        struct s { int v; };
        struct s g;
        int main() { g.v += 1; }
        """).functions[0].body[0]
        assert isinstance(stmt.target, ast.MemberExpr)
