"""Lexer tests."""

import pytest

from repro.minic.errors import LexError
from repro.minic.lexer import Token, TokenKind, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind is not TokenKind.EOF]


class TestTokens:
    def test_empty_input(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("int foo") == [(TokenKind.KEYWORD, "int"), (TokenKind.IDENT, "foo")]

    def test_underscore_identifier(self):
        assert kinds("_x y_1")[0] == (TokenKind.IDENT, "_x")

    def test_numbers(self):
        assert kinds("42 0") == [(TokenKind.NUMBER, "42"), (TokenKind.NUMBER, "0")]

    def test_malformed_number(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_two_char_operators_win(self):
        assert kinds("a->b") == [(TokenKind.IDENT, "a"), (TokenKind.PUNCT, "->"),
                                 (TokenKind.IDENT, "b")]
        assert kinds("a<=b")[1] == (TokenKind.PUNCT, "<=")
        assert kinds("a==b")[1] == (TokenKind.PUNCT, "==")
        assert kinds("a&&b")[1] == (TokenKind.PUNCT, "&&")

    def test_minus_and_arrow_disambiguate(self):
        assert kinds("a-b")[1] == (TokenKind.PUNCT, "-")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_all_keywords_recognised(self):
        for kw in ("int", "void", "struct", "if", "else", "while", "for",
                   "return", "break", "continue", "null", "thread_t", "mutex_t"):
            assert kinds(kw)[0][0] is TokenKind.KEYWORD


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [(TokenKind.IDENT, "a"), (TokenKind.IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [(TokenKind.IDENT, "a"), (TokenKind.IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_numbers(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1 and toks[0].col == 1
        assert toks[1].line == 2 and toks[1].col == 3

    def test_newlines_in_comment_counted(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].line == 3
