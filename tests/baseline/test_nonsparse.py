"""NONSPARSE baseline tests."""

import pytest

from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAMConfig
from repro.fsam.config import AnalysisTimeout


def run(src, budget=None):
    m = compile_source(src)
    return NonSparseAnalysis(m, FSAMConfig(time_budget=budget)).run()


class TestSequentialPrecision:
    def test_flow_sensitive_loads(self):
        r = run("""
int x; int y; int A;
int *p; int *mid; int *last;
int main() {
    p = &A;
    *p = &x;
    mid = *p;
    *p = &y;
    last = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(7) == {"x"}
        assert r.deref_pts_names_at_line(9) == {"y"}

    def test_strong_update_kills(self):
        r = run("""
int x; int y; int A;
int *p; int *out;
int main() {
    p = &A;
    *p = &x;
    *p = &y;
    out = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(8) == {"y"}

    def test_branch_merge(self):
        r = run("""
int x; int y; int A; int c;
int *p; int *out;
int main() {
    p = &A;
    if (c) { *p = &x; } else { *p = &y; }
    out = *p;
    return 0;
}
""")
        assert r.deref_pts_names_at_line(7) == {"x", "y"}


class TestThreadSoundness:
    def test_parallel_store_visible(self):
        r = run("""
int x; int y; int A;
int *p;
int *c;
void *w(void *arg) { *p = &y; return null; }
int main() {
    thread_t t;
    p = &A;
    *p = &x;
    fork(&t, w, null);
    c = *p;
    return 0;
}
""")
        got = r.deref_pts_names_at_line(11)
        assert {"x", "y"} <= got

    def test_coarseness_after_join(self):
        # The baseline has no flow-sensitive join reasoning: the
        # routine's store still pollutes the post-join read with the
        # *pre-join* main value retained (no precise strong update
        # ordering across threads).
        r = run("""
int x; int y; int A;
int *p;
int *c;
void *w(void *arg) { *p = &y; return null; }
int main() {
    thread_t t;
    p = &A;
    *p = &x;
    fork(&t, w, null);
    join(t);
    c = *p;
    return 0;
}
""")
        got = r.deref_pts_names_at_line(12)
        assert "y" in got  # sound
        # FSAM proves {y}; the baseline may keep x as well — check it
        # is at least sound, and record the coarseness when present.
        assert got >= {"y"}


class TestTimeout:
    def test_budget_enforced(self):
        src_parts = ["int g%d; int *p%d;" % (i, i) for i in range(40)]
        body = "\n".join(f"p{i} = &g{i};" for i in range(40))
        src = "\n".join(src_parts) + "\nint main() { " + body + " return 0; }"
        m = compile_source(src)
        with pytest.raises(AnalysisTimeout):
            NonSparseAnalysis(m, FSAMConfig(time_budget=0.0)).run()

    def test_metrics_exposed(self):
        r = run("int x; int *p; int main() { p = &x; return 0; }")
        assert r.points_to_entries() > 0
        assert r.total_time() >= 0
