"""Head-to-head FSAM vs NONSPARSE precision/performance checks."""

import pytest

from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.ir import Load
from repro.workloads import get_workload, workload_names

SMALL = ["word_count", "kmeans", "ferret", "bodytrack"]


def norm(objs):
    return {"tid" if o.name.startswith("tid.fork") else o.name for o in objs}


@pytest.mark.parametrize("name", SMALL)
class TestPrecisionOrdering:
    # NOTE: a per-load "FSAM subset of NONSPARSE" claim only holds for
    # sequential programs (tests/properties/test_precision_order.py).
    # On multithreaded code the two over-approximations are
    # incomparable point-wise: FSAM follows [THREAD-VF] edges blindly
    # (the paper's Figure 1(e) semantics), while the baseline injects
    # coarse interference only for the load's own pointees. What IS
    # guaranteed: both are sound, and FSAM's total state is smaller.

    def test_fsam_smaller_state(self, name):
        src = get_workload(name).source(1)
        fsam = FSAM(compile_source(src)).run()
        baseline = NonSparseAnalysis(compile_source(src)).run()
        assert fsam.points_to_entries() < baseline.points_to_entries()


class TestStrictPrecisionGain:
    def test_join_ordering_beats_coarse_interference(self):
        # The PCG-level baseline cannot see that the worker is joined:
        # its coarse interference pollutes the post-join read, which
        # FSAM's interleaving analysis keeps exact. (This is exactly
        # the kmeans/mt_daapd master-slave effect the paper credits
        # the interleaving analysis for.)
        src = """
int x; int y; int A;
int *p = &A;
int *c;
void *w(void *arg) { *p = &y; return null; }
int main() {
    thread_t t;
    *p = &x;
    fork(&t, w, null);
    join(t);
    *p = &x;
    c = *p;
    return 0;
}
"""
        m1 = compile_source(src)
        fsam = FSAM(m1).run()
        m2 = compile_source(src)
        baseline = NonSparseAnalysis(m2).run()
        line = 12
        assert fsam.deref_pts_names_at_line(line) == {"x"}
        # Coarse interference keeps y alive at the same read.
        assert "y" in baseline.deref_pts_names_at_line(line)
