"""Procedure-level concurrency graph tests."""

from repro.andersen import run_andersen
from repro.baseline import ProcedureConcurrencyGraph
from repro.frontend import compile_source


def build(src):
    m = compile_source(src)
    a = run_andersen(m)
    return m, ProcedureConcurrencyGraph(m, a)


SRC = """
int g;
void util() { g = 1; }
void *w1(void *a) { util(); return null; }
void *w2(void *a) { return null; }
void main_only() { }
int main() {
    thread_t t1; thread_t t2;
    fork(&t1, w1, null);
    fork(&t2, w2, null);
    main_only();
    join(t1); join(t2);
    return 0;
}
"""


class TestPCG:
    def test_thread_classes_created(self):
        m, pcg = build(SRC)
        assert len(pcg.class_procs) == 3  # main + two fork classes

    def test_footprints_include_callees(self):
        m, pcg = build(SRC)
        w1_classes = pcg.classes_of(m.functions["w1"])
        assert any(m.functions["util"] in pcg.class_procs[c] for c in w1_classes)

    def test_distinct_threads_concurrent(self):
        m, pcg = build(SRC)
        assert pcg.procedures_concurrent(m.functions["w1"], m.functions["w2"])
        assert pcg.procedures_concurrent(m.functions["main_only"], m.functions["w1"])

    def test_single_threaded_program_nothing_concurrent(self):
        m, pcg = build("""
        void f() { }
        int main() { f(); return 0; }
        """)
        assert not pcg.procedures_concurrent(m.functions["f"], m.functions["main"])

    def test_multi_forked_class_self_concurrent(self):
        m, pcg = build("""
        thread_t tids[4];
        void *w(void *a) { return null; }
        int main() { int i;
            for (i = 0; i < 4; i = i + 1) { fork(&tids[i], w, null); }
            return 0; }
        """)
        w = m.functions["w"]
        assert pcg.procedures_concurrent(w, w)

    def test_no_join_reasoning(self):
        # PCG is coarser than the interleaving analysis: even after the
        # join, procedures of different classes are deemed concurrent.
        m, pcg = build(SRC)
        assert pcg.procedures_concurrent(m.functions["main"], m.functions["w1"])
