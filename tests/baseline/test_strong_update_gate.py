"""NONSPARSE strong-update gate alignment with the sparse solver.

The baseline must gate strong updates exactly like FSAM: per object
``obj.is_singleton`` (not the singleton-ness of an arbitrary
representative of the target set), and demotion of MHP-interfering
stores when ``strong_updates_at_interfering_stores`` is off.
"""

from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig


def run_both(src, **cfg):
    baseline = NonSparseAnalysis(compile_source(src), FSAMConfig(**cfg)).run()
    fsam = FSAM(compile_source(src), FSAMConfig(**cfg)).run()
    return baseline, fsam


class TestSingletonGate:
    HEAP = """
int x; int y;
int **h;
int *out;
int main() {
    h = malloc(sizeof(int));
    *h = &x;
    *h = &y;
    out = *h;
    return 0;
}
"""

    def test_single_target_heap_store_stays_weak(self):
        # The pointer resolves to exactly one object, but that object
        # is a heap allocation (not a singleton): both analyses must
        # weak-update, so the first store's value survives.
        baseline, fsam = run_both(self.HEAP)
        assert baseline.deref_pts_names_at_line(9) == {"x", "y"}
        assert fsam.deref_pts_names_at_line(9) == {"x", "y"}

    SINGLETON = """
int x; int y; int A;
int *p; int *out;
int main() {
    p = &A;
    *p = &x;
    *p = &y;
    out = *p;
    return 0;
}
"""

    def test_single_target_singleton_store_is_strong(self):
        baseline, fsam = run_both(self.SINGLETON)
        assert baseline.deref_pts_names_at_line(8) == {"y"}
        assert fsam.deref_pts_names_at_line(8) == {"y"}


class TestInterferingStores:
    PARALLEL = """
int x; int y; int z; int A;
int *p; int *out;
void *writer(void *arg) {
    *p = &z;
    return null;
}
int main() {
    thread_t t;
    p = &A;
    *p = &x;
    fork(&t, writer, null);
    *p = &y;
    out = *p;
    return 0;
}
"""

    def test_default_allows_strong_update_at_interfering_store(self):
        # Paper-literal mode: the store at line 13 strong-updates A
        # even though writer's store interferes, so x is killed, and
        # writer's concurrent z is still merged in. (FSAM's fork-chi
        # handling keeps a stale x alive here, so it is a superset.)
        baseline, fsam = run_both(self.PARALLEL)
        base_names = baseline.deref_pts_names_at_line(14)
        fsam_names = fsam.deref_pts_names_at_line(14)
        assert base_names == {"y", "z"}
        assert base_names <= fsam_names

    def test_ablation_demotes_interfering_store_to_weak(self):
        baseline, fsam = run_both(
            self.PARALLEL, strong_updates_at_interfering_stores=False)
        base_names = baseline.deref_pts_names_at_line(14)
        fsam_names = fsam.deref_pts_names_at_line(14)
        assert "x" in base_names  # the weak update keeps the old value
        assert base_names == fsam_names
