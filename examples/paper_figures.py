#!/usr/bin/env python3
"""Reproduce the paper's Figure 1 worked examples.

Each snippet is one of the five challenges of Section 1.1; the script
prints the pt(c) FSAM computes next to the value the paper states.

Run:  python examples/paper_figures.py
"""

from repro.fsam import FSAMConfig, analyze_source

FIGURES = []


def figure(name, line, expected, source, config=None):
    FIGURES.append((name, line, expected, source, config))


figure("1(a) interleaving", 13, {"y", "z"}, """
int x; int y; int z;
int *p; int *q; int *r;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    p = &x; q = &y; r = &z;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
""")

figure("1(b) soundness (outliving thread)", 7, {"y", "z"}, """
int x; int y; int z;
int *p; int *q; int *r;
int *c;
void bar(void *arg) {
    *p = q;
    c = *p;
}
void foo(void *arg) {
    thread_t t2;
    fork(&t2, bar, null);
    return null;
}
int main() {
    thread_t t1;
    p = &x; q = &y; r = &z;
    fork(&t1, foo, null);
    join(t1);
    *p = r;
    c = *p;
    return 0;
}
""")

figure("1(c) precision (strong update across join)", 15, {"y"}, """
int x; int y; int z;
int *p; int *q; int *r;
int *c;
void foo(void *arg) {
    *p = q;
    return null;
}
int main() {
    thread_t t;
    p = &x; q = &y; r = &z;
    *p = r;
    fork(&t, foo, null);
    join(t);
    c = *p;
    return 0;
}
""")

figure("1(d) sparsity (non-aliases)", 15, {"y"}, """
int x_; int y; int z; int a_;
int *p; int *q; int *r;
int **x;
int *c;
void foo(void *arg) {
    *p = q;
    *x = r;
    return null;
}
int main() {
    thread_t t;
    p = &x_; q = &y; r = &z; x = &a_;
    fork(&t, foo, null);
    c = *p;
    return 0;
}
""")

FIG1E = """
int x; int y; int z; int v; int w_;
int *p; int *q; int *r; int *u;
int *c;
mutex_t l1;
void foo(void *arg) {
    lock(&l1);
    *p = u;
    *p = q;
    unlock(&l1);
}
int main() {
    thread_t t;
    p = &x; q = &y; r = &z; u = &v;
    *p = r;
    fork(&t, foo, null);
    lock(&l1);
    c = *p;
    unlock(&l1);
    return 0;
}
"""
figure("1(e) lock spans", 18, {"y", "z"}, FIG1E)
figure("1(e) with No-Lock ablation", 18, {"v", "y", "z"}, FIG1E,
       FSAMConfig(lock_analysis=False))


def main() -> None:
    print("=== paper Figure 1 examples ===\n")
    failures = 0
    for name, line, expected, source, config in FIGURES:
        result = analyze_source(source, config)
        got = result.deref_pts_names_at_line(line)
        status = "ok " if got == expected else "FAIL"
        print(f"[{status}] Figure {name}: pt(c) = {sorted(got)} "
              f"(paper: {sorted(expected)})")
        failures += got != expected
    if failures:
        raise SystemExit(f"{failures} figure(s) diverged from the paper")
    print("\nAll figures match the paper.")


if __name__ == "__main__":
    main()
