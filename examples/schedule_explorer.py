#!/usr/bin/env python3
"""Tightness demo: exhaust every interleaving of a paper example and
compare the dynamic truth with FSAM's static answer.

FSAM is *sound* (covers every schedule) by construction; on the
paper's Figure 1 examples it is also *tight* — it reports exactly the
set of values some schedule can produce, nothing more.

Run:  python examples/schedule_explorer.py
"""

from repro.frontend import compile_source
from repro.fsam import analyze_source
from repro.interp import explore_schedules, observed_names_for_line

EXAMPLES = [
    ("Figure 1(a) — racing stores", 14, """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
}
int main() {
    thread_t t;
    fork(&t, foo, null);
    *p = r;
    c = *p;
    return 0;
}
"""),
    ("Figure 1(c) — strong update across a join", 16, """
int x; int y; int z;
int *p = &x;
int *q = &y;
int *r = &z;
int *c;
void foo(void *arg) {
    *p = q;
    return null;
}
int main() {
    thread_t t;
    *p = r;
    fork(&t, foo, null);
    join(t);
    c = *p;
    return 0;
}
"""),
]


def main() -> None:
    for title, line, source in EXAMPLES:
        print(f"=== {title} ===")
        static = analyze_source(source)
        static_pts = static.deref_pts_names_at_line(line)

        dynamic = explore_schedules(lambda src=source: compile_source(src))
        module = compile_source(source)
        observed = observed_names_for_line(module, dynamic, line)

        print(f"  schedules enumerated: {dynamic.schedules_run} "
              f"(exhausted: {dynamic.exhausted})")
        print(f"  dynamic truth at c = *p : {sorted(observed)}")
        print(f"  FSAM static pt(c)       : {sorted(static_pts)}")
        verdict = "TIGHT" if static_pts == observed else (
            "sound" if observed <= static_pts else "UNSOUND?!")
        print(f"  -> {verdict}\n")
        assert observed <= static_pts


if __name__ == "__main__":
    main()
