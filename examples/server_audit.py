#!/usr/bin/env python3
"""Audit a server-style workload with the full FSAM toolbox.

Uses the httpd_server benchmark generator as the subject: prints the
thread model (detached multi-forked workers!), lock-release span
statistics, value-flow interference numbers, and the points-to
precision gap versus the traditional data-flow baseline.

Run:  python examples/server_audit.py
"""

import time

from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.mt import LockAnalysis
from repro.workloads import get_workload, source_loc


def main() -> None:
    workload = get_workload("httpd_server")
    source = workload.source(1)
    print(f"subject: {workload.name} — {workload.description}")
    print(f"generated LOC: {source_loc(source)} "
          f"(paper original: {workload.paper_loc})\n")

    module = compile_source(source, name="httpd_server")
    start = time.perf_counter()
    result = FSAM(module).run()
    fsam_time = time.perf_counter() - start

    print("=== thread model ===")
    for thread in result.thread_model.threads:
        detached = ""
        if not thread.is_main and thread.id not in {
                tid for joined in result.thread_model.fully_joined.values()
                for tid in joined}:
            detached = "  [never joined]"
        print(f"  {thread!r}{detached}")

    print("\n=== lock-release spans ===")
    locks = LockAnalysis(result.thread_model, result.andersen,
                         result.dug, result.builder)
    per_lock = {}
    for span in locks.spans:
        per_lock.setdefault(span.lock_obj.name, 0)
        per_lock[span.lock_obj.name] += 1
    for lock_name, count in sorted(per_lock.items()):
        print(f"  {lock_name}: {count} span(s)")

    print("\n=== value-flow interference ===")
    print(f"  {result.vf_stats!r}")

    print("\n=== FSAM vs NONSPARSE ===")
    module2 = compile_source(source, name="httpd_server")
    start = time.perf_counter()
    baseline = NonSparseAnalysis(module2, FSAMConfig(time_budget=120)).run()
    base_time = time.perf_counter() - start
    print(f"  FSAM:      {fsam_time:6.2f}s, "
          f"{result.points_to_entries():8d} points-to entries")
    print(f"  NONSPARSE: {base_time:6.2f}s, "
          f"{baseline.points_to_entries():8d} points-to entries")
    print(f"  -> {base_time / fsam_time:.1f}x faster, "
          f"{baseline.points_to_entries() / result.points_to_entries():.1f}x "
          f"less analysis state")


if __name__ == "__main__":
    main()
