#!/usr/bin/env python3
"""The full client suite on one program: races, deadlocks,
instrumentation reduction, and escape classification.

This demonstrates the paper's motivation (Section 1: clients that
need precise multithreaded points-to information) and its future
work (Section 6: deadlock detection, reducing ThreadSanitizer's
instrumentation overhead) on a small work-stealing scheduler with
two seeded bugs: an ABBA lock-order inversion and an unprotected
counter.

Run:  python examples/concurrency_audit.py
"""

from repro.clients import (
    classify_escapes, detect_deadlocks, detect_races, reduce_instrumentation,
)
from repro.frontend import compile_source

SCHEDULER = """
struct job { int id; struct job *next; };

mutex_t queue_a_mu; mutex_t queue_b_mu;
struct job *queue_a; struct job *queue_b;
struct job *last_stolen;          // BUG: written without a lock
int jobs_done;

void *worker_a(void *arg) {
    struct job *j;
    lock(&queue_a_mu);
    j = queue_a;
    if (j == null) {
        lock(&queue_b_mu);        // steal: holds a, takes b
        j = queue_b;
        if (j != null) { queue_b = j->next; }
        unlock(&queue_b_mu);
    }
    else { queue_a = j->next; }
    unlock(&queue_a_mu);
    last_stolen = j;              // unprotected shared write
    return null;
}

void *worker_b(void *arg) {
    struct job *j;
    lock(&queue_b_mu);
    j = queue_b;
    if (j == null) {
        lock(&queue_a_mu);        // steal: holds b, takes a — ABBA!
        j = queue_a;
        if (j != null) { queue_a = j->next; }
        unlock(&queue_a_mu);
    }
    else { queue_b = j->next; }
    unlock(&queue_b_mu);
    last_stolen = j;
    return null;
}

int main() {
    thread_t ta; thread_t tb;
    struct job *seed;
    seed = malloc(struct job);
    queue_a = seed;
    fork(&ta, worker_a, null);
    fork(&tb, worker_b, null);
    join(ta);
    join(tb);
    return jobs_done;
}
"""


def main() -> None:
    print("=== concurrency audit: work-stealing scheduler ===\n")

    print("--- data races ---")
    races = detect_races(compile_source(SCHEDULER))
    for race in races:
        print(f"  {race.describe()}")
    assert any(r.obj.name == "last_stolen" for r in races)

    print("\n--- deadlocks ---")
    deadlocks = detect_deadlocks(compile_source(SCHEDULER))
    for candidate in deadlocks:
        print(f"  {candidate.describe()}")
    assert deadlocks, "the ABBA steal pattern must be flagged"

    print("\n--- ThreadSanitizer instrumentation reduction ---")
    report = reduce_instrumentation(compile_source(SCHEDULER))
    print(f"  {report.summary()}")

    print("\n--- escape classification ---")
    escape = classify_escapes(compile_source(SCHEDULER))
    print(f"  {escape.summary()}")
    shared = sorted(escape.objects[k].name for k, v in escape.classes.items()
                    if v.value == "shared")
    print(f"  shared objects: {shared}")


if __name__ == "__main__":
    main()
