#!/usr/bin/env python3
"""Quickstart: analyse a small multithreaded program with FSAM.

Run:  python examples/quickstart.py
"""

from repro.andersen import run_andersen
from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.ir import Load

SOURCE = """
int apple; int banana;
int *shared;          // written by both threads
int *result;
mutex_t mu;

void *worker(void *arg) {
    lock(&mu);
    shared = &banana;
    unlock(&mu);
    return null;
}

int main() {
    thread_t t;
    shared = &apple;
    fork(&t, worker, null);
    lock(&mu);
    result = shared;   // parallel with the worker: {apple, banana}
    unlock(&mu);
    join(t);
    result = shared;   // after the join, the worker's strong update
    return 0;          // has killed apple: {banana}
}
"""


def main() -> None:
    module = compile_source(SOURCE, name="quickstart")

    # The flow-insensitive pre-analysis (Andersen) for comparison.
    andersen = run_andersen(module)

    # The full FSAM pipeline.
    result = FSAM(module).run()

    print("=== quickstart: FSAM vs the flow-insensitive pre-analysis ===\n")
    for instr in module.all_instructions():
        if isinstance(instr, Load) and instr.line in (19, 22):
            sparse = sorted(o.name for o in result.pts(instr.dst))
            coarse = sorted(o.name for o in andersen.pts(instr.dst))
            print(f"load at line {instr.line}: {instr!r}")
            print(f"  FSAM     pt = {sparse}")
            print(f"  Andersen pt = {coarse}")

    print("\n=== thread model ===")
    for thread in result.thread_model.threads:
        print(f"  {thread!r}")

    print("\n=== pipeline statistics ===")
    for key, value in result.stats().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
