#!/usr/bin/env python3
"""Client demo: static data race detection with FSAM.

The paper motivates FSAM by the clients its precision enables
(Section 1). This example runs the race detector on a buggy cache
implementation, then on the fixed version, showing how FSAM's MHP +
lock-span reasoning separates real races from protected accesses.

Run:  python examples/race_detection.py
"""

from repro.clients import detect_races
from repro.frontend import compile_source

BUGGY = """
struct entry { int key; int *value; struct entry *next; };

struct entry *cache_head;     // shared, sometimes unprotected
int hits;
mutex_t cache_mu;

int payload;

void *reader_thread(void *arg) {
    struct entry *cur;
    cur = cache_head;                 // RACE: unlocked read
    while (cur != null) {
        hits = hits + 1;
        cur = cur->next;
    }
    return null;
}

void *writer_thread(void *arg) {
    struct entry *e;
    e = malloc(struct entry);
    e->value = &payload;
    lock(&cache_mu);
    e->next = cache_head;
    cache_head = e;                   // locked write...
    unlock(&cache_mu);
    cache_head = e;                   // RACE: unlocked write
    return null;
}

int main() {
    thread_t r; thread_t w;
    fork(&r, reader_thread, null);
    fork(&w, writer_thread, null);
    join(r);
    join(w);
    return hits;
}
"""

FIXED = BUGGY.replace(
    "cur = cache_head;                 // RACE: unlocked read",
    "lock(&cache_mu); cur = cache_head; unlock(&cache_mu);"
).replace(
    "cache_head = e;                   // RACE: unlocked write\n    return null;",
    "return null;"
)


def report(title: str, source: str) -> int:
    races = detect_races(compile_source(source))
    print(f"--- {title}: {len(races)} race candidate(s) ---")
    for race in races:
        print(f"  {race.describe()}")
    print()
    return len(races)


def main() -> None:
    buggy = report("buggy cache", BUGGY)
    fixed = report("fixed cache", FIXED)
    assert buggy > fixed, "the fix must remove race reports"
    print(f"fix removed {buggy - fixed} race report(s)")


if __name__ == "__main__":
    main()
