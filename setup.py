"""Legacy setup shim: the environment's setuptools predates PEP 660
editable installs, so ``pip install -e .`` goes through this file."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FSAM: sparse flow-sensitive pointer analysis for multithreaded "
        "programs (CGO 2016 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": ["fsam=repro.cli:main"],
    },
)
