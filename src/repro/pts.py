"""Interned bitset points-to sets.

Every solver in the pipeline (Andersen pre-analysis, the sparse FSAM
solver, the NONSPARSE baseline) keeps per-variable or per-program-point
points-to sets and spends most of its time unioning and comparing
them. This module replaces the ``Set[MemObject]`` representation with
a compact shared one:

- :class:`PTUniverse` assigns each :class:`MemObject` a dense integer
  index on first sight, so a points-to set becomes a bitmask over the
  universe (one Python ``int``).
- :class:`PTSet` is an *immutable*, *interned* (hash-consed) bitmask
  wrapper: for a given universe there is exactly one ``PTSet``
  instance per distinct mask, so equality is ``O(1)`` (mask compare,
  and in practice identity), union/intersection are single big-int
  operations, and a set that appears at a thousand program points is
  stored once.

The universe also memoises union and intersection results for hot
pairs of interned sets, and keeps the counters behind the dedup-ratio
statistic reported by ``benchmarks/test_pts_representation.py``
(total set references handed out / distinct interned sets). The memo
caches are *bounded*: when one reaches ``cache_cap`` entries it is
generation-cleared (dropped wholesale and rebuilt by subsequent
traffic), so a long-lived process analysing many programs — or one
very large program — holds at most ``2 * cache_cap`` memo entries per
universe instead of growing without bound.

For batch consumers (the sparse solver's vectorized kernel, merge
re-evaluations) :meth:`PTUniverse.union_many` and
:meth:`PTUniverse.diff_many` fold an arbitrary number of operand
masks with plain int arithmetic and touch the interning table exactly
once for the final result, instead of interning every intermediate
union.

``PTSet`` is deliberately duck-typed against ``frozenset[MemObject]``:
it iterates ``MemObject``s, supports ``in``/``len``/``bool``, and its
binary operators accept plain sets (registering any unseen objects),
so query-layer code and tests that compare against ``{obj}`` literals
keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.ir.values import MemObject


if hasattr(int, "bit_count"):  # Python >= 3.10
    def _popcount(mask: int) -> int:
        return mask.bit_count()
else:
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


class PTSet:
    """An immutable, interned points-to set backed by an int bitmask.

    Never constructed directly: obtained from a :class:`PTUniverse`
    (``universe.empty``, ``universe.make(...)``, set operators), which
    guarantees one instance per distinct mask. Because of interning,
    ``a | b is a`` exactly when ``b`` adds nothing — solvers use that
    identity as their delta check.
    """

    __slots__ = ("universe", "mask", "key")

    def __init__(self, universe: "PTUniverse", mask: int, key: int) -> None:
        self.universe = universe
        self.mask = mask
        self.key = key  # dense serial per interned set; orders cache keys

    # -- coercion ---------------------------------------------------------

    def _mask_of(self, other) -> int:
        if isinstance(other, PTSet):
            return other.mask
        return self.universe.make(other).mask

    # -- set protocol -----------------------------------------------------

    def __len__(self) -> int:
        return _popcount(self.mask)

    def __bool__(self) -> bool:
        return self.mask != 0

    def __iter__(self) -> Iterator[MemObject]:
        objects = self.universe._objects
        mask = self.mask
        while mask:
            low = mask & -mask
            yield objects[low.bit_length() - 1]
            mask ^= low

    def __contains__(self, obj: object) -> bool:
        if not isinstance(obj, MemObject):
            return False
        index = self.universe._indices.get(obj.id)
        return index is not None and (self.mask >> index) & 1 == 1

    def __or__(self, other) -> "PTSet":
        return self.universe.union_masks(self, self._mask_of(other))

    __ror__ = __or__

    def __and__(self, other) -> "PTSet":
        return self.universe.intersect_masks(self, self._mask_of(other))

    __rand__ = __and__

    def __sub__(self, other) -> "PTSet":
        return self.universe.from_mask(self.mask & ~self._mask_of(other))

    def __rsub__(self, other) -> "PTSet":
        return self.universe.from_mask(self._mask_of(other) & ~self.mask)

    def issubset(self, other) -> bool:
        return self.mask & ~self._mask_of(other) == 0

    def issuperset(self, other) -> bool:
        other_mask = self._mask_of(other)
        return other_mask & ~self.mask == 0

    def isdisjoint(self, other) -> bool:
        return self.mask & self._mask_of(other) == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PTSet):
            if other.universe is self.universe:
                return other is self  # interned: one instance per mask
            return set(self) == set(other)
        if isinstance(other, (set, frozenset)):
            if len(other) != len(self):
                return False
            return all(o in self for o in other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self.mask)

    def __repr__(self) -> str:
        return "{%s}" % ", ".join(sorted(o.name for o in self))


def mask_to_hex(mask: int) -> str:
    """Serialize a points-to bitmask as a compact hex string.

    The artifact wire format for :attr:`PTSet.mask`: hex keeps large
    masks about 4x smaller than decimal in JSON and round-trips
    arbitrary-precision ints exactly.
    """
    return format(mask, "x")


def mask_from_hex(text: str) -> int:
    """Inverse of :func:`mask_to_hex`."""
    return int(text, 16)


#: Default bound on each binary-operation memo cache. Reaching it
#: triggers a generation clear, so steady-state memo memory per
#: universe is O(cache_cap) however many sets flow through it.
DEFAULT_CACHE_CAP = 1 << 15


class PTUniverse:
    """Dense ``MemObject`` numbering plus the intern table for
    :class:`PTSet`.

    One universe lives for one analysis pipeline run (it is created by
    the Andersen pre-analysis and shared by everything downstream), so
    masks from different runs are never mixed.
    """

    def __init__(self, cache_cap: int = DEFAULT_CACHE_CAP) -> None:
        self._objects: List[MemObject] = []        # dense index -> object
        self._indices: Dict[int, int] = {}         # MemObject.id -> dense index
        self._interned: Dict[int, PTSet] = {}      # mask -> canonical PTSet
        self._singletons: Dict[int, PTSet] = {}    # dense index -> {obj}
        self._union_cache: Dict[Tuple[int, int], PTSet] = {}
        self._intersect_cache: Dict[Tuple[int, int], PTSet] = {}
        # Memo caches are generation-cleared at this many entries.
        # Clearing costs only the lost hits (results are unaffected:
        # the caches memoise, they do not define, the operations).
        self.cache_cap = cache_cap
        self.cache_clears = 0
        # Dedup statistics: every time a set reference is handed out
        # (interned-table hit or miss) counts as one reference.
        self.set_references = 0
        self.union_cache_hits = 0
        self.intersect_cache_hits = 0
        self.empty = self.from_mask(0)

    # -- object numbering -------------------------------------------------

    def index(self, obj: MemObject) -> int:
        """The dense bit index of *obj*, assigning one on first sight."""
        idx = self._indices.get(obj.id)
        if idx is None:
            idx = len(self._objects)
            self._indices[obj.id] = idx
            self._objects.append(obj)
        return idx

    def index_of_id(self, obj_id: int) -> Optional[int]:
        """The dense index already assigned to ``MemObject.id``
        *obj_id* (None if the object was never seen). Used by artifact
        serialization, which holds raw ids from solver-state keys."""
        return self._indices.get(obj_id)

    def object_at(self, index: int) -> MemObject:
        return self._objects[index]

    def object_table(self) -> List[Dict[str, object]]:
        """The dense numbering as a JSON-able table, in index order.

        Dense indices are assigned in first-sight order during the
        (deterministic) pipeline run, so this table — unlike raw
        ``MemObject.id`` values, which come from a process-global
        counter — is identical across processes for the same program
        and config. Artifact serialization keys bitmasks against it.
        """
        return [
            {"name": obj.name, "kind": obj.kind.value}
            for obj in self._objects
        ]

    def __len__(self) -> int:
        return len(self._objects)

    # -- set construction -------------------------------------------------

    def from_mask(self, mask: int) -> PTSet:
        """The canonical interned PTSet for *mask*."""
        self.set_references += 1
        interned = self._interned.get(mask)
        if interned is None:
            interned = PTSet(self, mask, len(self._interned))
            self._interned[mask] = interned
        return interned

    def singleton(self, obj: MemObject) -> PTSet:
        idx = self.index(obj)
        self.set_references += 1
        cached = self._singletons.get(idx)
        if cached is None:
            cached = self.from_mask(1 << idx)
            self._singletons[idx] = cached
        return cached

    def mask_contains(self, mask: int, obj: MemObject) -> bool:
        """Membership test directly on a raw mask (no PTSet needed) —
        the solvers' hot paths keep state as plain ints."""
        idx = self._indices.get(obj.id)
        return idx is not None and (mask >> idx) & 1 == 1

    def iter_mask(self, mask: int) -> Iterator[MemObject]:
        """Iterate the objects of a raw mask without interning it."""
        objects = self._objects
        while mask:
            low = mask & -mask
            yield objects[low.bit_length() - 1]
            mask ^= low

    def make(self, objs: Iterable[MemObject]) -> PTSet:
        if isinstance(objs, PTSet):
            if objs.universe is self:
                return objs
            objs = iter(objs)
        mask = 0
        for obj in objs:
            mask |= 1 << self.index(obj)
        return self.from_mask(mask)

    # -- bulk operations ----------------------------------------------------

    def _fold_masks(self, parts: Iterable) -> int:
        """OR together the masks of *parts* (ints, :class:`PTSet`
        instances from this universe, or iterables of objects)."""
        mask = 0
        for part in parts:
            if type(part) is int:
                mask |= part
            elif isinstance(part, PTSet):
                mask |= part.mask
            else:
                mask |= self.make(part).mask
        return mask

    def union_many(self, parts: Iterable) -> PTSet:
        """Union of arbitrarily many operands, interned once.

        The bulk primitive behind the sparse solver's batched merge
        paths: the fold is plain int ``|=`` per operand and the
        interning table is consulted exactly once for the final mask
        (a chained ``a | b | c`` interns every prefix).
        """
        return self.from_mask(self._fold_masks(parts))

    def diff_many(self, base, parts: Iterable) -> PTSet:
        """``base`` minus the union of *parts*, interned once.

        The kernel's delta extraction (``new bits = delta & ~state``)
        in set form; like :meth:`union_many`, no intermediate set is
        interned.
        """
        base_mask = base if type(base) is int else self._mask_like(base)
        return self.from_mask(base_mask & ~self._fold_masks(parts))

    def _mask_like(self, part) -> int:
        if isinstance(part, PTSet):
            return part.mask
        return self.make(part).mask

    # -- cached binary operations -----------------------------------------

    def union_masks(self, a: PTSet, other_mask: int) -> PTSet:
        mask = a.mask | other_mask
        if mask == a.mask:
            return a  # fast path: other is a subset — delta checks rely on this
        canonical_other = self._interned.get(other_mask)
        if canonical_other is not None:
            key = (a.key, canonical_other.key) if a.key <= canonical_other.key \
                else (canonical_other.key, a.key)
            hit = self._union_cache.get(key)
            if hit is None:
                hit = self.from_mask(mask)
                if len(self._union_cache) >= self.cache_cap:
                    self._union_cache.clear()
                    self.cache_clears += 1
                self._union_cache[key] = hit
            else:
                self.set_references += 1
                self.union_cache_hits += 1
            return hit
        return self.from_mask(mask)

    def intersect_masks(self, a: PTSet, other_mask: int) -> PTSet:
        mask = a.mask & other_mask
        if mask == a.mask:
            return a
        canonical_other = self._interned.get(other_mask)
        if canonical_other is not None:
            if mask == other_mask:
                self.set_references += 1
                return canonical_other
            key = (a.key, canonical_other.key) if a.key <= canonical_other.key \
                else (canonical_other.key, a.key)
            hit = self._intersect_cache.get(key)
            if hit is None:
                hit = self.from_mask(mask)
                if len(self._intersect_cache) >= self.cache_cap:
                    self._intersect_cache.clear()
                    self.cache_clears += 1
                self._intersect_cache[key] = hit
            else:
                self.set_references += 1
                self.intersect_cache_hits += 1
            return hit
        return self.from_mask(mask)

    # -- statistics --------------------------------------------------------

    @property
    def distinct_sets(self) -> int:
        return len(self._interned)

    def dedup_ratio(self) -> float:
        """Total set references handed out / distinct interned sets.

        > 1 whenever interning shares instances; the larger the more
        the representation pays off.
        """
        if not self._interned:
            return 1.0
        return self.set_references / len(self._interned)

    def stats(self) -> Dict[str, float]:
        return {
            "objects": len(self._objects),
            "distinct_sets": self.distinct_sets,
            "set_references": self.set_references,
            "dedup_ratio": self.dedup_ratio(),
            "union_cache_entries": len(self._union_cache),
            "intersect_cache_entries": len(self._intersect_cache),
            "union_cache_hits": self.union_cache_hits,
            "intersect_cache_hits": self.intersect_cache_hits,
            "cache_cap": self.cache_cap,
            "cache_clears": self.cache_clears,
        }
