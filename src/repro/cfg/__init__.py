"""Control-flow graphs: per-function CFGs, the interprocedural CFG
(ICFG) with matched call/return edges, and the call graph."""

from repro.cfg.cfg import CFG
from repro.cfg.callgraph import CallGraph
from repro.cfg.icfg import ICFG, ICFGNode, NodeKind

__all__ = ["CFG", "CallGraph", "ICFG", "ICFGNode", "NodeKind"]
