"""The interprocedural control-flow graph (ICFG).

Statement-level nodes, with every call site split into a *call node*
and a *return-site node* (paper Section 3.1). Three edge kinds:
intra-procedural, interprocedural call (call node -> callee entry),
and interprocedural return (callee exit -> return-site node).

Fork and join sites deliberately have **no** interprocedural edges
("There are no outgoing edges for a fork or join site"): in a thread's
own ICFG, control falls through a fork to the next statement, and the
spawnee's code is reachable only as another thread's ICFG. Function
pointers at indirect calls are resolved by the pre-analysis.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.cfg.callgraph import CallGraph
from repro.cfg.cfg import CFG
from repro.graphs.digraph import DiGraph
from repro.ir.instructions import Branch, Call, Fork, Instruction, Jump, Ret
from repro.ir.module import BasicBlock, Module
from repro.ir.values import Function


class NodeKind(enum.Enum):
    STMT = "stmt"
    CALL = "call"
    RETSITE = "retsite"
    ENTRY = "entry"      # function entry
    EXIT = "exit"        # function exit


class EdgeKind(enum.Enum):
    INTRA = "intra"
    CALL = "call"
    RET = "ret"


@dataclass(frozen=True)
class ICFGNode:
    """One ICFG node. ``instr`` is None for ENTRY/EXIT nodes; the
    RETSITE node shares the Call instruction of its CALL node."""

    kind: NodeKind
    function: Function
    instr: Optional[Instruction] = None
    uid: int = field(default_factory=itertools.count().__next__, compare=False)

    def __repr__(self) -> str:
        if self.kind is NodeKind.ENTRY:
            return f"<entry {self.function.name}>"
        if self.kind is NodeKind.EXIT:
            return f"<exit {self.function.name}>"
        tag = "ret-of " if self.kind is NodeKind.RETSITE else ""
        return f"<{tag}{self.instr!r}>"

    def __hash__(self) -> int:
        return hash((self.kind, id(self.instr), self.function.name))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ICFGNode) and self.kind is other.kind
                and self.instr is other.instr and self.function is other.function)


class ICFG:
    """The whole-program ICFG.

    Construction requires a (possibly still-growing) call graph; call
    ``add_call_edges`` again after the pre-analysis resolves more
    indirect callees — edges accumulate monotonically.
    """

    def __init__(self, module: Module, callgraph: CallGraph) -> None:
        self.module = module
        self.callgraph = callgraph
        self.graph = DiGraph()
        self.entries: Dict[Function, ICFGNode] = {}
        self.exits: Dict[Function, ICFGNode] = {}
        self._stmt_nodes: Dict[int, ICFGNode] = {}     # instr id -> node
        self._retsite_nodes: Dict[int, ICFGNode] = {}  # call instr id -> retsite
        self._edge_kinds: Dict[Tuple[int, int], EdgeKind] = {}
        self._build()

    # -- lookup ---------------------------------------------------------

    def node_of(self, instr: Instruction) -> ICFGNode:
        """The CALL or STMT node for *instr*."""
        return self._stmt_nodes[instr.id]

    def retsite_of(self, call: Call) -> ICFGNode:
        return self._retsite_nodes[call.id]

    def entry_of(self, fn: Function) -> ICFGNode:
        return self.entries[fn]

    def exit_of(self, fn: Function) -> ICFGNode:
        return self.exits[fn]

    def successors(self, node: ICFGNode) -> Set[ICFGNode]:
        return self.graph.successors(node)

    def predecessors(self, node: ICFGNode) -> Set[ICFGNode]:
        return self.graph.predecessors(node)

    def edge_kind(self, src: ICFGNode, dst: ICFGNode) -> EdgeKind:
        return self._edge_kinds.get((src.uid, dst.uid), EdgeKind.INTRA)

    def nodes(self) -> Iterable[ICFGNode]:
        return self.graph.nodes()

    def intra_successors(self, node: ICFGNode) -> List[ICFGNode]:
        """Successors via intra-procedural edges only, plus the
        call->retsite fallthrough is NOT included (callers must choose
        how to treat calls)."""
        return [s for s in self.graph.successors(node)
                if self.edge_kind(node, s) is EdgeKind.INTRA]

    # -- construction ----------------------------------------------------

    def _add_edge(self, src: ICFGNode, dst: ICFGNode, kind: EdgeKind = EdgeKind.INTRA) -> None:
        self.graph.add_edge(src, dst)
        self._edge_kinds[(src.uid, dst.uid)] = kind

    def _build(self) -> None:
        for fn in self.module.functions.values():
            if fn.is_declaration or not fn.blocks:
                continue
            self._build_function(fn)
        self.add_call_edges()

    def _build_function(self, fn: Function) -> None:
        entry = ICFGNode(NodeKind.ENTRY, fn)
        exit_node = ICFGNode(NodeKind.EXIT, fn)
        self.entries[fn] = entry
        self.exits[fn] = exit_node
        self.graph.add_node(entry)
        self.graph.add_node(exit_node)

        first_of: Dict[BasicBlock, ICFGNode] = {}
        last_of: Dict[BasicBlock, ICFGNode] = {}
        for block in fn.blocks:
            prev: Optional[ICFGNode] = None
            for instr in block.instructions:
                if isinstance(instr, Call):
                    node = ICFGNode(NodeKind.CALL, fn, instr)
                    retsite = ICFGNode(NodeKind.RETSITE, fn, instr)
                    self._stmt_nodes[instr.id] = node
                    self._retsite_nodes[instr.id] = retsite
                    self.graph.add_node(node)
                    self.graph.add_node(retsite)
                    if prev is not None:
                        self._add_edge(prev, node)
                    else:
                        first_of[block] = node
                    # Fallthrough for calls with no (known) callee body;
                    # when callees resolve, the call edge is added too —
                    # the call->retsite edge stays as an intra edge so
                    # external calls do not sever the CFG.
                    self._add_edge(node, retsite)
                    prev = retsite
                    continue
                node = ICFGNode(NodeKind.STMT, fn, instr)
                self._stmt_nodes[instr.id] = node
                self.graph.add_node(node)
                if prev is not None:
                    self._add_edge(prev, node)
                else:
                    first_of[block] = node
                prev = node
            if prev is None:
                # Empty block cannot happen (verifier requires terminator).
                raise AssertionError(f"empty block {block.label}")
            last_of[block] = prev

        self._add_edge(entry, first_of[fn.entry])
        for block in fn.blocks:
            term = block.terminator
            last = last_of[block]
            if isinstance(term, Branch):
                self._add_edge(last, first_of[term.then_block])
                self._add_edge(last, first_of[term.else_block])
            elif isinstance(term, Jump):
                self._add_edge(last, first_of[term.target])
            elif isinstance(term, Ret):
                self._add_edge(last, exit_node)

    def add_call_edges(self) -> int:
        """(Re-)add call/ret edges from the current call graph; returns
        the number of new interprocedural edge pairs."""
        added = 0
        for site in list(self.callgraph.call_sites()):
            if not isinstance(site, Call):
                continue  # fork sites get no interprocedural edges
            if site.id not in self._stmt_nodes:
                continue
            call_node = self._stmt_nodes[site.id]
            retsite = self._retsite_nodes[site.id]
            for callee in self.callgraph.callees(site):
                if callee not in self.entries:
                    continue  # declaration-only callee
                if not self.graph.has_edge(call_node, self.entries[callee]):
                    self._add_edge(call_node, self.entries[callee], EdgeKind.CALL)
                    self._add_edge(self.exits[callee], retsite, EdgeKind.RET)
                    added += 1
        return added
