"""Per-function control-flow graphs over basic blocks."""

from __future__ import annotations

from typing import List

from repro.graphs.digraph import DiGraph
from repro.graphs.dominance import DominatorTree, dominance_frontiers
from repro.graphs.loops import blocks_in_loops
from repro.ir.instructions import Branch, Jump, Ret
from repro.ir.module import BasicBlock
from repro.ir.values import Function


class CFG:
    """The block-level CFG of one function.

    Nodes are :class:`BasicBlock` objects; edges follow terminators.
    Exposes dominator information and loop membership, which SSA
    construction and the thread model both consume.
    """

    def __init__(self, fn: Function) -> None:
        self.function = fn
        self.graph = DiGraph()
        self.entry = fn.entry
        self.exits: List[BasicBlock] = []
        for block in fn.blocks:
            self.graph.add_node(block)
            term = block.terminator
            if isinstance(term, Branch):
                self.graph.add_edge(block, term.then_block)
                self.graph.add_edge(block, term.else_block)
            elif isinstance(term, Jump):
                self.graph.add_edge(block, term.target)
            elif isinstance(term, Ret):
                self.exits.append(block)
        self._domtree = None
        self._frontiers = None
        self._loop_blocks = None

    @property
    def domtree(self) -> DominatorTree:
        if self._domtree is None:
            self._domtree = DominatorTree(self.graph, self.entry)
        return self._domtree

    @property
    def frontiers(self):
        if self._frontiers is None:
            self._frontiers = dominance_frontiers(self.graph, self.domtree)
        return self._frontiers

    @property
    def loop_blocks(self):
        """Blocks inside any natural loop of this function."""
        if self._loop_blocks is None:
            self._loop_blocks = blocks_in_loops(self.graph, self.entry)
        return self._loop_blocks

    def successors(self, block: BasicBlock):
        return self.graph.successors(block)

    def predecessors(self, block: BasicBlock):
        return self.graph.predecessors(block)

    def reachable_blocks(self):
        return self.graph.reachable_from(self.entry)
