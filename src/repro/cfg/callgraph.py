"""The program call graph.

Built on the fly by the Andersen pre-analysis (paper Section 4.2):
direct calls are added immediately; indirect calls and fork sites are
resolved as the points-to sets of their function pointers grow.
Call-graph SCCs drive context-insensitive handling of recursion
(Section 3.1) and the in-recursion flag of stack objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import tarjan_scc
from repro.ir.instructions import Call, Fork
from repro.ir.module import Module
from repro.ir.values import Function

CallSite = Union[Call, Fork]


class CallGraph:
    """Functions plus callsite-labelled edges."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.graph = DiGraph()
        for fn in module.functions.values():
            self.graph.add_node(fn)
        # callsite -> set of callees; function -> set of callsites in it.
        self._callees: Dict[CallSite, Set[Function]] = {}
        self._callers: Dict[Function, Set[CallSite]] = {fn: set() for fn in module.functions.values()}
        self._scc_of: Optional[Dict[Function, int]] = None
        self._in_cycle: Optional[Set[Function]] = None

    def add_edge(self, site: CallSite, callee: Function) -> bool:
        """Record that *site* may invoke *callee*. Returns True if new."""
        callees = self._callees.setdefault(site, set())
        if callee in callees:
            return False
        callees.add(callee)
        self._callers.setdefault(callee, set()).add(site)
        caller = site.function
        if caller is not None:
            self.graph.add_edge(caller, callee)
        self._scc_of = None  # invalidate caches
        self._in_cycle = None
        return True

    def callees(self, site: CallSite) -> Set[Function]:
        """Functions that *site* may invoke (empty if unresolved)."""
        return self._callees.get(site, set())

    def callsites_of(self, callee: Function) -> Set[CallSite]:
        """Callsites (calls and forks) that may invoke *callee*."""
        return self._callers.get(callee, set())

    def call_sites(self) -> Iterable[CallSite]:
        return self._callees.keys()

    def _compute_sccs(self) -> None:
        sccs = tarjan_scc(self.graph)
        self._scc_of = {}
        self._in_cycle = set()
        for idx, component in enumerate(sccs):
            for fn in component:
                self._scc_of[fn] = idx
            if len(component) > 1:
                self._in_cycle.update(component)
            elif self.graph.has_edge(component[0], component[0]):
                self._in_cycle.add(component[0])

    def scc_id(self, fn: Function) -> int:
        if self._scc_of is None:
            self._compute_sccs()
        return self._scc_of.get(fn, -1)

    def in_cycle(self, fn: Function) -> bool:
        """True if *fn* participates in call-graph recursion."""
        if self._in_cycle is None:
            self._compute_sccs()
        return fn in self._in_cycle

    def site_in_cycle(self, site: CallSite) -> bool:
        """True when the callsite's enclosing function is in an SCC with
        one of the site's callees — such callsites are analysed
        context-insensitively (paper Section 3.1)."""
        caller = site.function
        if caller is None:
            return False
        if self._scc_of is None:
            self._compute_sccs()
        cid = self.scc_id(caller)
        return any(self.scc_id(callee) == cid and self.in_cycle(callee)
                   for callee in self.callees(site))

    def reachable_functions(self, roots: Iterable[Function]) -> Set[Function]:
        """Functions transitively callable from *roots* (per this graph)."""
        seen: Set[Function] = set()
        work: List[Function] = list(roots)
        while work:
            fn = work.pop()
            if fn in seen:
                continue
            seen.add(fn)
            work.extend(self.graph.successors(fn))
        return seen
