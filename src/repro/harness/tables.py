"""Regeneration of the paper's evaluation tables and figures."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.harness.measure import Measurement, measure_fsam, measure_nonsparse
from repro.harness.scales import BASELINE_BUDGET, BENCH_SCALES
from repro.workloads import WORKLOADS, source_loc

ABLATIONS = [
    ("No-Interleaving", "interleaving"),
    ("No-Value-Flow", "value_flow"),
    ("No-Lock", "lock_analysis"),
]


# -- Table 1 -----------------------------------------------------------


def run_table1(scales: Optional[Dict[str, int]] = None) -> List[Dict[str, object]]:
    """Program statistics (paper Table 1)."""
    scales = scales or BENCH_SCALES
    rows = []
    for name, workload in WORKLOADS.items():
        source = workload.source(scales.get(name, workload.default_scale))
        rows.append({
            "benchmark": name,
            "description": workload.description,
            "suite": workload.suite,
            "generated_loc": source_loc(source),
            "paper_loc": workload.paper_loc,
        })
    return rows


def render_table1(rows: List[Dict[str, object]]) -> str:
    lines = ["Table 1: Program statistics.",
             f"{'Benchmark':<14} {'Description':<42} {'LOC':>6} {'paper LOC':>10}",
             "-" * 76]
    total = 0
    paper_total = 0
    for row in rows:
        total += row["generated_loc"]
        paper_total += row["paper_loc"]
        lines.append(f"{row['benchmark']:<14} {row['description']:<42} "
                     f"{row['generated_loc']:>6} {row['paper_loc']:>10}")
    lines.append("-" * 76)
    lines.append(f"{'Total':<14} {'':<42} {total:>6} {paper_total:>10}")
    return "\n".join(lines)


# -- Table 2 -----------------------------------------------------------


def run_table2(scales: Optional[Dict[str, int]] = None,
               budget: float = BASELINE_BUDGET,
               names: Optional[List[str]] = None) -> List[Dict[str, object]]:
    """Analysis time and memory: FSAM vs NONSPARSE (paper Table 2)."""
    scales = scales or BENCH_SCALES
    rows = []
    for name, workload in WORKLOADS.items():
        if names is not None and name not in names:
            continue
        source = workload.source(scales.get(name, workload.default_scale))
        fsam = measure_fsam(name, source)
        nonsparse = measure_nonsparse(name, source, budget=budget)
        rows.append({
            "benchmark": name,
            "fsam": fsam,
            "nonsparse": nonsparse,
        })
    return rows


def render_table2(rows: List[Dict[str, object]]) -> str:
    lines = ["Table 2: Analysis time and memory usage.",
             f"{'Program':<14} {'FSAM t(s)':>10} {'NONSP t(s)':>11} "
             f"{'FSAM MB':>9} {'NONSP MB':>9} {'speedup':>8} {'mem x':>7}",
             "-" * 74]
    speedups: List[float] = []
    mem_ratios: List[float] = []
    for row in rows:
        fsam: Measurement = row["fsam"]
        nonsp: Measurement = row["nonsparse"]
        if nonsp.oot:
            speedup_s = mem_s = "-"
        else:
            speedup = nonsp.seconds / max(fsam.seconds, 1e-9)
            mem_ratio = nonsp.points_to_entries / max(fsam.points_to_entries, 1)
            speedups.append(speedup)
            mem_ratios.append(mem_ratio)
            speedup_s = f"{speedup:.1f}x"
            mem_s = f"{mem_ratio:.1f}x"
        lines.append(f"{row['benchmark']:<14} {fsam.display_time():>10} "
                     f"{nonsp.display_time():>11} {fsam.peak_memory_mb:>9.2f} "
                     f"{nonsp.display_memory():>9} {speedup_s:>8} {mem_s:>7}")
    lines.append("-" * 74)
    if speedups:
        avg_speed = sum(speedups) / len(speedups)
        avg_mem = sum(mem_ratios) / len(mem_ratios)
        lines.append(f"{'Average (finishers)':<26} speedup {avg_speed:.1f}x, "
                     f"state-size ratio {avg_mem:.1f}x "
                     f"(paper: 12x faster, 28x less memory)")
    oot = [row["benchmark"] for row in rows if row["nonsparse"].oot]
    if oot:
        lines.append(f"NONSPARSE OOT on: {', '.join(oot)} "
                     f"(paper: raytrace, x264)")
    return "\n".join(lines)


# -- Figure 12 ---------------------------------------------------------


def run_figure12(scales: Optional[Dict[str, int]] = None,
                 names: Optional[List[str]] = None) -> List[Dict[str, object]]:
    """Slowdown of FSAM with each interference phase disabled."""
    scales = scales or BENCH_SCALES
    rows = []
    base_config = FSAMConfig()
    for name, workload in WORKLOADS.items():
        if names is not None and name not in names:
            continue
        source = workload.source(scales.get(name, workload.default_scale))
        base = measure_fsam(name, source, base_config)
        row: Dict[str, object] = {"benchmark": name, "base": base}
        for label, phase in ABLATIONS:
            ablated = measure_fsam(name, source, base_config.ablated(phase))
            row[label] = ablated
        rows.append(row)
    return rows


def _resolution_time(m: Measurement) -> float:
    """The paper measures the impact on sparse points-to *resolution*
    (the final solve over the def-use graph). Prefers the profile
    document's phase tree; falls back to the legacy phase_times dict."""
    if m.profile:
        for phase in m.profile.get("phases", []):
            if phase.get("name") == "sparse_solve":
                return float(phase["seconds"])
    if m.phase_times:
        return m.phase_times.get("sparse_solve", m.seconds)
    return m.seconds


def render_figure12(rows: List[Dict[str, object]]) -> str:
    lines = ["Figure 12: slowdown of sparse points-to resolution with one phase disabled.",
             f"{'Program':<14}" + "".join(f" {label:>16}" for label, _ in ABLATIONS),
             "-" * (14 + 17 * len(ABLATIONS))]
    sums = {label: 0.0 for label, _ in ABLATIONS}
    for row in rows:
        base: Measurement = row["base"]
        base_time = _resolution_time(base)
        cells = []
        for label, _phase in ABLATIONS:
            m: Measurement = row[label]
            slowdown = _resolution_time(m) / max(base_time, 1e-9)
            sums[label] += slowdown
            bar = "#" * min(24, int(round(slowdown * 2)))
            cells.append(f"{slowdown:>6.2f}x {bar:<8}")
        lines.append(f"{row['benchmark']:<14}" + " ".join(cells))
    lines.append("-" * (14 + 17 * len(ABLATIONS)))
    n = max(len(rows), 1)
    lines.append("Average slowdowns: " + ", ".join(
        f"{label} {sums[label] / n:.2f}x" for label, _ in ABLATIONS))
    lines.append("")
    lines.append("Spurious thread-aware def-use edges each phase avoids "
                 "(edges with phase off / edges with full FSAM):")
    for row in rows:
        base: Measurement = row["base"]
        cells = []
        for label, _phase in ABLATIONS:
            m: Measurement = row[label]
            ratio = m.thread_edges / max(base.thread_edges, 1)
            cells.append(f"{label} {m.thread_edges}({ratio:.1f}x)")
        lines.append(f"  {row['benchmark']:<14} base={base.thread_edges:<7} "
                     + "  ".join(cells))
    return "\n".join(lines)
