"""Machine-readable exports of the benchmark results (CSV / JSON),
for plotting or regression tracking outside the repo."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.harness.measure import Measurement
from repro.harness.tables import ABLATIONS


def _measurement_dict(m: Measurement) -> Dict[str, object]:
    return {
        "analysis": m.analysis,
        "seconds": None if m.oot else round(m.seconds, 4),
        "peak_memory_mb": None if m.oot else round(m.peak_memory_mb, 3),
        "points_to_entries": m.points_to_entries,
        "thread_edges": m.thread_edges,
        "oot": m.oot,
    }


def table2_to_json(rows: List[Dict[str, object]]) -> str:
    payload = [{
        "benchmark": row["benchmark"],
        "fsam": _measurement_dict(row["fsam"]),
        "nonsparse": _measurement_dict(row["nonsparse"]),
    } for row in rows]
    return json.dumps(payload, indent=2)


def table2_to_csv(rows: List[Dict[str, object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", "fsam_seconds", "nonsparse_seconds",
                     "fsam_entries", "nonsparse_entries", "nonsparse_oot"])
    for row in rows:
        fsam: Measurement = row["fsam"]
        nonsp: Measurement = row["nonsparse"]
        writer.writerow([
            row["benchmark"],
            f"{fsam.seconds:.4f}",
            "" if nonsp.oot else f"{nonsp.seconds:.4f}",
            fsam.points_to_entries,
            "" if nonsp.oot else nonsp.points_to_entries,
            int(nonsp.oot),
        ])
    return buffer.getvalue()


def figure12_to_csv(rows: List[Dict[str, object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = ["benchmark", "base_solve_s", "base_edges"]
    for label, _phase in ABLATIONS:
        key = label.lower().replace("-", "_")
        header += [f"{key}_solve_s", f"{key}_edges"]
    writer.writerow(header)
    for row in rows:
        base: Measurement = row["base"]
        base_solve = (base.phase_times or {}).get("sparse_solve", base.seconds)
        record = [row["benchmark"], f"{base_solve:.5f}", base.thread_edges]
        for label, _phase in ABLATIONS:
            m: Measurement = row[label]
            solve = (m.phase_times or {}).get("sparse_solve", m.seconds)
            record += [f"{solve:.5f}", m.thread_edges]
        writer.writerow(record)
    return buffer.getvalue()
