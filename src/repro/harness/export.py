"""Machine-readable exports of the benchmark results (CSV / JSON),
for plotting or regression tracking outside the repo."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.harness.measure import Measurement
from repro.harness.tables import ABLATIONS


def _measurement_dict(m: Measurement) -> Dict[str, object]:
    return {
        "analysis": m.analysis,
        "seconds": None if m.oot else round(m.seconds, 4),
        "peak_memory_mb": None if m.oot else round(m.peak_memory_mb, 3),
        "points_to_entries": m.points_to_entries,
        "thread_edges": m.thread_edges,
        "oot": m.oot,
    }


def table2_to_json(rows: List[Dict[str, object]]) -> str:
    payload = [{
        "benchmark": row["benchmark"],
        "fsam": _measurement_dict(row["fsam"]),
        "nonsparse": _measurement_dict(row["nonsparse"]),
    } for row in rows]
    return json.dumps(payload, indent=2)


def table2_to_csv(rows: List[Dict[str, object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", "fsam_seconds", "nonsparse_seconds",
                     "fsam_entries", "nonsparse_entries", "nonsparse_oot"])
    for row in rows:
        fsam: Measurement = row["fsam"]
        nonsp: Measurement = row["nonsparse"]
        writer.writerow([
            row["benchmark"],
            f"{fsam.seconds:.4f}",
            "" if nonsp.oot else f"{nonsp.seconds:.4f}",
            fsam.points_to_entries,
            "" if nonsp.oot else nonsp.points_to_entries,
            int(nonsp.oot),
        ])
    return buffer.getvalue()


def render_batch_report(doc: Dict[str, object]) -> str:
    """Human-readable rendering of a ``repro.batch/1`` document (the
    ``repro batch`` text output)."""
    lines = []
    lines.append(f"batch {doc.get('name') or 'batch'}: "
                 f"{len(doc.get('requests', []))} request(s), "
                 f"{doc.get('workers')} worker(s), "
                 f"{doc['total_seconds']:.3f}s total")
    rows: List[Dict[str, object]] = doc.get("requests", [])  # type: ignore[assignment]
    if rows:
        width = max(len(str(row["name"])) for row in rows)
        lines.append(f"  {'name':<{width}} {'status':<9} {'cache':<6} "
                     f"{'seconds':>9} {'queue':>8} {'iters':>8}")
        for row in rows:
            summary: Dict[str, object] = row.get("summary", {})  # type: ignore[assignment]
            iters = summary.get("solver_iterations", 0)
            lines.append(
                f"  {str(row['name']):<{width}} {str(row['status']):<9} "
                f"{str(row['cache']):<6} {float(row['seconds']):>9.3f} "
                f"{float(row.get('queue_seconds', 0.0)):>8.3f} "
                f"{iters:>8}")
    counters: Dict[str, object] = doc.get("counters", {})  # type: ignore[assignment]
    interesting = {k: v for k, v in counters.items()
                   if k.startswith(("batch.", "cache.", "pool."))}
    if interesting:
        lines.append("counters:")
        width = max(len(k) for k in interesting)
        for key in sorted(interesting):
            lines.append(f"  {key:<{width}} {interesting[key]:>10}")
    aggregate: Dict[str, object] = doc.get("aggregate", {})  # type: ignore[assignment]
    phases: Dict[str, object] = aggregate.get("phase_seconds", {})  # type: ignore[assignment]
    if phases:
        lines.append("aggregate phase seconds:")
        width = max(len(k) for k in phases)
        for key, seconds in sorted(phases.items()):
            lines.append(f"  {key:<{width}} {float(seconds):>9.4f}s")  # type: ignore[arg-type]
    exemplars: List[Dict[str, object]] = doc.get("exemplars", [])  # type: ignore[assignment]
    if exemplars:
        lines.append("slow-request exemplars (see `repro report` for "
                     "the full telemetry view):")
        for exemplar in exemplars:
            lines.append(
                f"  {exemplar['name']} ({exemplar.get('request_id')}) "
                f"{float(exemplar['seconds']):.3f}s "
                f"queue {float(exemplar.get('queue_seconds', 0.0)):.3f}s "
                f"dominant {exemplar.get('dominant_phase') or '-'}")
    return "\n".join(lines)


def batch_report_to_csv(doc: Dict[str, object]) -> str:
    """Flatten a ``repro.batch/1`` document to per-request CSV rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["name", "digest", "status", "cache", "seconds",
                     "attempts", "solver_iterations", "points_to_entries"])
    for row in doc.get("requests", []):  # type: ignore[union-attr]
        summary = row.get("summary", {})
        writer.writerow([
            row["name"], row["digest"], row["status"], row["cache"],
            f"{float(row['seconds']):.6f}", row["attempts"],
            summary.get("solver_iterations", 0),
            summary.get("points_to_entries", 0),
        ])
    return buffer.getvalue()


def figure12_to_csv(rows: List[Dict[str, object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = ["benchmark", "base_solve_s", "base_edges"]
    for label, _phase in ABLATIONS:
        key = label.lower().replace("-", "_")
        header += [f"{key}_solve_s", f"{key}_edges"]
    writer.writerow(header)
    for row in rows:
        base: Measurement = row["base"]
        base_solve = (base.phase_times or {}).get("sparse_solve", base.seconds)
        record = [row["benchmark"], f"{base_solve:.5f}", base.thread_edges]
        for label, _phase in ABLATIONS:
            m: Measurement = row[label]
            solve = (m.phase_times or {}).get("sparse_solve", m.seconds)
            record += [f"{solve:.5f}", m.thread_edges]
        writer.writerow(record)
    return buffer.getvalue()
