"""Telemetry rendering: ``repro report <batch.json|metrics.jsonl>``.

The human view of the service telemetry pipeline. Accepts any of the
three artifact shapes the serving stack emits:

- a ``repro.batch/1`` report (``repro batch --out``) — uses its
  embedded ``repro.metrics/1`` rollup plus the per-request rows and
  slow-request exemplars;
- a single ``repro.metrics/1`` snapshot (one JSON object);
- a metrics JSONL stream (``repro serve --metrics-interval``) — the
  stream is validated (including cross-snapshot counter monotonicity,
  see :func:`repro.obs.validate_metrics_stream`) and the final,
  cumulative snapshot is rendered.

The rendered report answers ROADMAP item 3's questions directly:
per-phase p50/p99 latency, cache and func-cache hit rates,
degradation/retry counts, and the top-N slowest requests with their
dominant phase.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs import validate_metrics, validate_metrics_stream
from repro.schemas import BATCH_SCHEMA, METRICS_SCHEMA


class TelemetrySource:
    """One loaded telemetry artifact, normalized for rendering."""

    __slots__ = ("kind", "metrics", "rows", "exemplars", "snapshots")

    def __init__(self, kind: str, metrics: Dict[str, object],
                 rows: Optional[List[Dict[str, object]]] = None,
                 exemplars: Optional[List[Dict[str, object]]] = None,
                 snapshots: int = 1) -> None:
        self.kind = kind                       # "batch" | "metrics"
        self.metrics = metrics                 # final repro.metrics/1 doc
        self.rows = rows or []                 # per-request rows (batch)
        self.exemplars = exemplars or []       # slow-request exemplars
        self.snapshots = snapshots             # stream length (jsonl)


def load_telemetry(path: str) -> TelemetrySource:
    """Load and validate *path* (see the module docstring for the
    accepted shapes)."""
    with open(path) as handle:
        text = handle.read()
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict):
        schema = doc.get("schema")
        if schema == BATCH_SCHEMA:
            from repro.service.batch import validate_batch_report
            validate_batch_report(doc)
            metrics = doc.get("metrics")
            if metrics is None:
                raise ValueError(
                    f"batch report {path!r} has no embedded metrics "
                    "rollup (produced before telemetry? re-run the "
                    "batch)")
            assert isinstance(metrics, dict)
            return TelemetrySource(
                "batch", metrics,
                rows=doc.get("requests"),          # type: ignore[arg-type]
                exemplars=doc.get("exemplars"))    # type: ignore[arg-type]
        if schema == METRICS_SCHEMA:
            validate_metrics(doc)
            return TelemetrySource("metrics", doc)
        raise ValueError(f"{path!r}: unsupported schema {schema!r} "
                         f"(expected {BATCH_SCHEMA!r} or "
                         f"{METRICS_SCHEMA!r})")
    # Not a single JSON object: treat as a metrics JSONL stream.
    docs = []
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except ValueError as exc:
            raise ValueError(
                f"{path!r} line {i + 1}: not JSON ({exc})") from exc
    validate_metrics_stream(docs)
    return TelemetrySource("metrics", docs[-1], snapshots=len(docs))


def _rate(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{100.0 * value:5.1f}%"


def _hist_row(name: str, hist: Dict[str, object], width: int) -> str:
    return (f"  {name:<{width}} {hist['count']:>6} "
            f"{float(hist['p50']):>9.4f} {float(hist['p95']):>9.4f} "
            f"{float(hist['p99']):>9.4f} {float(hist['max']):>9.4f}")


def render_telemetry_report(source: TelemetrySource, top: int = 5) -> str:
    """The ``repro report`` text output."""
    metrics = source.metrics
    counters: Dict[str, int] = metrics.get("counters", {})  # type: ignore[assignment]
    gauges: Dict[str, float] = metrics.get("gauges", {})  # type: ignore[assignment]
    histograms: Dict[str, Dict[str, object]] = \
        metrics.get("histograms", {})  # type: ignore[assignment]
    phase_seconds: Dict[str, float] = \
        metrics.get("phase_seconds", {})  # type: ignore[assignment]

    lines = [f"telemetry report: {metrics.get('name') or 'service'}"]
    if source.snapshots > 1:
        lines[0] += f"  (final of {source.snapshots} snapshots)"

    requests = counters.get("batch.requests", counters.get("serve.requests"))
    degraded = counters.get("batch.degraded", counters.get("serve.degraded",
                                                           0))
    summary = []
    if requests is not None:
        summary.append(f"{requests} request(s)")
    summary.append(f"{degraded} degraded")
    summary.append(f"{counters.get('pool.retries', 0)} retried")
    summary.append(f"{counters.get('pool.timeouts', 0)} timed out")
    lines.append("  " + ", ".join(summary))

    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    hit_rate = gauges.get("cache.hit_rate")
    if hit_rate is None and hits + misses:
        hit_rate = hits / (hits + misses)
    func_hits = counters.get("cache.func_hits", 0)
    func_misses = counters.get("cache.func_misses", 0)
    func_rate = gauges.get("cache.func_hit_rate")
    if func_rate is None and func_hits + func_misses:
        func_rate = func_hits / (func_hits + func_misses)
    lines.append(f"  cache hit rate {_rate(hit_rate)} "
                 f"({hits} hit / {misses} miss), "
                 f"func layer {_rate(func_rate)} "
                 f"({func_hits} hit / {func_misses} miss)")

    query_requests = counters.get("query.requests")
    if query_requests is not None:
        query_hits = counters.get("query.cache_hits", 0)
        query_misses = counters.get("query.cache_misses", 0)
        query_rate = query_hits / (query_hits + query_misses) \
            if query_hits + query_misses else None
        lines.append(
            f"  demand queries: {query_requests}, "
            f"store hit rate {_rate(query_rate)} "
            f"({query_hits} hit / {query_misses} miss), "
            f"{counters.get('query.solve_iterations', 0)} solver "
            f"iteration(s)")

    dispatch = {name: hist for name, hist in histograms.items()
                if not name.startswith("phase.")}
    if dispatch:
        width = max(len(name) for name in dispatch)
        lines.append("latency histograms (seconds):")
        lines.append(f"  {'name':<{width}} {'count':>6} {'p50':>9} "
                     f"{'p95':>9} {'p99':>9} {'max':>9}")
        for name in sorted(dispatch):
            lines.append(_hist_row(name, dispatch[name], width))

    phase_hists = {name[len("phase."):]: hist
                   for name, hist in histograms.items()
                   if name.startswith("phase.") and "/" not in name}
    if phase_hists:
        width = max(len(name) for name in phase_hists)
        lines.append("per-phase latency (seconds, across requests):")
        lines.append(f"  {'phase':<{width}} {'count':>6} {'p50':>9} "
                     f"{'p95':>9} {'p99':>9} {'total':>9}")
        for name, hist in sorted(phase_hists.items(),
                                 key=lambda kv: -float(kv[1]["sum"])):  # type: ignore[arg-type]
            total = phase_seconds.get(name, float(hist["sum"]))  # type: ignore[arg-type]
            lines.append(f"  {name:<{width}} {hist['count']:>6} "
                         f"{float(hist['p50']):>9.4f} "
                         f"{float(hist['p95']):>9.4f} "
                         f"{float(hist['p99']):>9.4f} "
                         f"{float(total):>9.3f}")

    if source.rows:
        dominant = {exemplar.get("request_id"): exemplar
                    for exemplar in source.exemplars}
        slowest = sorted(source.rows,
                         key=lambda row: -float(row.get("seconds", 0.0)))  # type: ignore[arg-type]
        lines.append(f"slowest requests (top {min(top, len(slowest))}):")
        width = max(len(str(row["name"])) for row in slowest)
        for row in slowest[:top]:
            exemplar = dominant.get(row.get("request_id"))
            phase = exemplar.get("dominant_phase") if exemplar else None
            lines.append(
                f"  {str(row['name']):<{width}} "
                f"{str(row.get('request_id') or '-'):<6} "
                f"{str(row['cache']):<6} "
                f"{float(row['seconds']):>9.3f}s "
                f"queue {float(row.get('queue_seconds', 0.0)):>7.3f}s  "
                f"dominant {phase or '-'}")
    elif source.exemplars:
        lines.append("slow-request exemplars:")
        for exemplar in source.exemplars[:top]:
            lines.append(
                f"  {exemplar['name']} ({exemplar.get('request_id')}) "
                f"{float(exemplar['seconds']):.3f}s "
                f"dominant {exemplar.get('dominant_phase') or '-'}")
    return "\n".join(lines)
