"""Benchmark harness: measurement and table/figure rendering.

Regenerates the paper's evaluation artefacts:

- Table 1 — program statistics,
- Table 2 — analysis time and memory, FSAM vs NONSPARSE (with OOT),
- Figure 12 — slowdown of FSAM with each interference phase disabled.
"""

from repro.harness.measure import Measurement, measure_fsam, measure_nonsparse
from repro.harness.scales import BASELINE_BUDGET, BENCH_SCALES
from repro.harness.tables import (
    render_figure12, render_table1, render_table2, run_figure12, run_table1,
    run_table2,
)
from repro.harness.export import (
    batch_report_to_csv, figure12_to_csv, render_batch_report, table2_to_csv,
    table2_to_json,
)
from repro.harness.profdiff import (
    PhaseDelta, ProfileDiff, diff_profiles, render_profile_diff,
)
from repro.harness.report import (
    TelemetrySource, load_telemetry, render_telemetry_report,
)

__all__ = [
    "Measurement", "measure_fsam", "measure_nonsparse",
    "BENCH_SCALES", "BASELINE_BUDGET",
    "run_table1", "run_table2", "run_figure12",
    "render_table1", "render_table2", "render_figure12",
    "table2_to_csv", "table2_to_json", "figure12_to_csv",
    "render_batch_report", "batch_report_to_csv",
    "PhaseDelta", "ProfileDiff", "diff_profiles", "render_profile_diff",
    "TelemetrySource", "load_telemetry", "render_telemetry_report",
]
