"""Benchmark sizing.

The paper ran 6K-113K LOC C programs with a 2-hour baseline budget on
a Xeon. A CPython analysis is orders of magnitude slower per
statement, so the workloads are scaled so that the *relationships*
of Table 2 are preserved: little gain on the small Phoenix programs,
an order of magnitude on the mid-sized ones, and a baseline timeout
(OOT) on the two largest (raytrace, x264) while FSAM finishes in
seconds.
"""

# Per-program generator scale used by the Table 2 / Figure 12 benches.
BENCH_SCALES = {
    "word_count": 3,
    "kmeans": 3,
    "radiosity": 4,
    "automount": 4,
    "ferret": 4,
    "bodytrack": 4,
    "httpd_server": 2,
    "mt_daapd": 4,
    "raytrace": 8,
    "x264": 6,
}

# The stand-in for the paper's two-hour OOT limit (seconds).
BASELINE_BUDGET = 30.0

# Programs the baseline is expected to time out on (paper Table 2).
EXPECTED_OOT = {"raytrace", "x264"}

# Smaller scales for quick smoke benchmarks / CI.
SMOKE_SCALES = {name: 1 for name in BENCH_SCALES}
