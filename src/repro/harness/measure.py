"""Measurement wrappers: wall-clock time, peak memory, OOT handling.

Each wrapper runs one analysis under a fresh :class:`repro.obs.Observer`
and attaches the resulting profile document to the measurement, so the
table/figure layer (and ``repro bench --profile``) reads per-phase
times and counters from one source.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.fsam.config import AnalysisTimeout
from repro.obs import Observer


@dataclass
class Measurement:
    """One analysis run's vital signs."""

    name: str
    analysis: str                    # "fsam" | "nonsparse"
    seconds: float
    peak_memory_mb: float            # tracemalloc peak during the run
    points_to_entries: int           # state-size proxy (see DESIGN.md)
    oot: bool = False
    phase_times: Optional[Dict[str, float]] = None
    thread_edges: int = 0            # [THREAD-VF] def-use edges added
    profile: Optional[Dict[str, object]] = None   # repro.obs/1 document

    def display_time(self) -> str:
        return "OOT" if self.oot else f"{self.seconds:.2f}"

    def display_memory(self) -> str:
        return "OOT" if self.oot else f"{self.peak_memory_mb:.2f}"


def _measured(name: str, analysis: str, thunk,
              obs: Optional[Observer] = None) -> Measurement:
    gc.collect()
    tracemalloc.start()
    oot = False
    result = None
    start = time.perf_counter()
    try:
        try:
            result = thunk()
        except AnalysisTimeout:
            oot = True
        # The measurement window closes the moment the analysis
        # returns: snapshot the clock and traced memory *before* any
        # stats extraction below, which walks every points-to set and
        # used to be billed to the analysis.
        seconds = time.perf_counter() - start
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        # Always tear down tracing: a thunk that raises anything other
        # than AnalysisTimeout must not leave tracemalloc running for
        # the rest of the process (it taxes every later allocation and
        # skews subsequent measurements).
        tracemalloc.stop()
    entries = 0
    phase_times = None
    thread_edges = 0
    profile = None
    if result is not None:
        entries = result.points_to_entries()
        phase_times = getattr(result, "phase_times", None)
        dug = getattr(result, "dug", None)
        if dug is not None:
            thread_edges = len(dug.thread_edges)
    if obs is not None:
        # Per-phase memory tracking resets tracemalloc's peak between
        # phases; the observer folds segment peaks into the true
        # run-wide maximum, which the raw snapshot may under-report.
        peak = max(peak, obs.peak_traced_bytes)
        profile = obs.to_dict()
    return Measurement(name=name, analysis=analysis, seconds=seconds,
                       peak_memory_mb=peak / (1024.0 * 1024.0),
                       points_to_entries=entries, oot=oot,
                       phase_times=phase_times, thread_edges=thread_edges,
                       profile=profile)


def measure_fsam(name: str, source: str, config: Optional[FSAMConfig] = None) -> Measurement:
    """Compile and run FSAM under measurement."""
    module = compile_source(source, name=name)
    obs = Observer(name=name)
    return _measured(name, "fsam",
                     lambda: FSAM(module, config, obs=obs).run(), obs=obs)


def time_fsam_solve(result, config: FSAMConfig, reps: int = 5,
                    warmup: int = 2) -> list:
    """Per-iteration wall-clock of just the solve phase, re-run on an
    already-analyzed pipeline (*result* is an ``FSAMResult``).

    Unlike :func:`measure_fsam` this never runs under tracemalloc —
    allocation tracing taxes every solver allocation and distorts
    engine comparisons — and it collects garbage before each timed
    iteration so another run's cycles are not billed to this one.
    A fresh solver is constructed per iteration (construction is part
    of the engine's cost); *warmup* iterations populate the DUG's
    schedule/topology caches and are discarded.
    """
    from repro.fsam.reference import ReferenceSolver
    from repro.fsam.solver import SparseSolver
    engine = ReferenceSolver \
        if config.solver_engine == "reference" else SparseSolver

    def one() -> float:
        solver = engine(result.module, result.dug, result.builder,
                        result.andersen, config=config)
        gc.collect()
        start = time.perf_counter()
        solver.solve()
        return time.perf_counter() - start

    for _ in range(warmup):
        one()
    return [one() for _ in range(reps)]


def measure_nonsparse(name: str, source: str,
                      budget: Optional[float] = None) -> Measurement:
    """Compile and run NONSPARSE under measurement, with OOT budget."""
    module = compile_source(source, name=name)
    config = FSAMConfig(time_budget=budget)
    obs = Observer(name=name)
    return _measured(name, "nonsparse",
                     lambda: NonSparseAnalysis(module, config, obs=obs).run(),
                     obs=obs)
