"""Profile regression comparison: ``repro diff-profile A.json B.json``.

Compares two ``repro.obs/1`` documents (typically the previous CI
run's profile artifact against the current one): per-phase wall time
and peak traced memory deltas over the flattened phase paths, plus
counter and gauge drift. ``repro.metrics/1`` telemetry snapshots are
accepted on either side — their flattened ``phase_seconds`` stand in
for the phase tree (no per-phase memory), and their histograms diff as
(count, p50, p99) summaries. The comparison is report-only —
thresholds and gating policy belong to whoever reads the report, not
here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import _walk_phases, validate_metrics, validate_profile
from repro.schemas import METRICS_SCHEMA

#: A histogram's diff summary: (count, p50, p99).
HistSummary = Tuple[int, float, float]


class PhaseDelta:
    """One flattened phase path's change from A to B."""

    __slots__ = ("path", "seconds_a", "seconds_b", "peak_kb_a", "peak_kb_b")

    def __init__(self, path: str, seconds_a: Optional[float],
                 seconds_b: Optional[float], peak_kb_a: Optional[float],
                 peak_kb_b: Optional[float]) -> None:
        self.path = path
        self.seconds_a = seconds_a
        self.seconds_b = seconds_b
        self.peak_kb_a = peak_kb_a
        self.peak_kb_b = peak_kb_b

    @property
    def status(self) -> str:
        if self.seconds_a is None:
            return "added"
        if self.seconds_b is None:
            return "removed"
        return "common"

    @property
    def seconds_ratio(self) -> Optional[float]:
        """B/A wall-time ratio; None unless the phase is in both and A
        took measurable time."""
        if self.seconds_a is None or self.seconds_b is None:
            return None
        if self.seconds_a <= 0:
            return None
        return self.seconds_b / self.seconds_a


class ProfileDiff:
    """The structured comparison :func:`diff_profiles` returns."""

    def __init__(self, name_a: str, name_b: str,
                 total_seconds_a: float, total_seconds_b: float,
                 phases: List[PhaseDelta],
                 counters: Dict[str, Tuple[Optional[int], Optional[int]]],
                 gauges: Dict[str, Tuple[Optional[float], Optional[float]]],
                 histograms: Optional[Dict[str, Tuple[Optional[HistSummary],
                                                      Optional[HistSummary]]]]
                 = None) -> None:
        self.name_a = name_a
        self.name_b = name_b
        self.total_seconds_a = total_seconds_a
        self.total_seconds_b = total_seconds_b
        self.phases = phases
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms if histograms is not None else {}

    def changed_counters(self) -> Dict[str, Tuple[Optional[int], Optional[int]]]:
        return {k: v for k, v in self.counters.items() if v[0] != v[1]}

    def changed_gauges(self) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
        return {k: v for k, v in self.gauges.items() if v[0] != v[1]}

    def changed_histograms(self) -> Dict[str, Tuple[Optional[HistSummary],
                                                    Optional[HistSummary]]]:
        return {k: v for k, v in self.histograms.items() if v[0] != v[1]}


def _flat_phases(doc: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    flat: Dict[str, Dict[str, object]] = {}
    for path, phase in _walk_phases(doc.get("phases", [])):  # type: ignore[arg-type]
        # Repeated paths (a phase re-entered under the same parent)
        # accumulate, matching how a reader sums a rendered profile.
        if path in flat:
            merged = dict(flat[path])
            merged["seconds"] = float(merged["seconds"]) + float(phase["seconds"])  # type: ignore[arg-type]
            merged["peak_traced_kb"] = max(
                float(merged["peak_traced_kb"]), float(phase["peak_traced_kb"]))  # type: ignore[arg-type]
            flat[path] = merged
        else:
            flat[path] = phase
    return flat


def _flat_view(doc: Dict[str, object]
               ) -> Tuple[Dict[str, Dict[str, object]], float]:
    """Normalize either document kind to ``(flat phases, total)``.

    A ``repro.metrics/1`` snapshot has no phase tree or per-phase
    memory — its flattened ``phase_seconds`` paths map directly, with
    zero peaks, and the total is the sum of its top-level paths."""
    if doc.get("schema") == METRICS_SCHEMA:
        validate_metrics(doc)
        phase_seconds = doc.get("phase_seconds", {})
        assert isinstance(phase_seconds, dict)
        flat = {path: {"seconds": float(seconds), "peak_traced_kb": 0.0}
                for path, seconds in phase_seconds.items()}
        total = sum(float(seconds) for path, seconds in phase_seconds.items()
                    if "/" not in path)
        return flat, total
    validate_profile(doc)
    return _flat_phases(doc), float(doc["total_seconds"])  # type: ignore[arg-type]


def _hist_summary(doc: Dict[str, object], name: str
                  ) -> Optional[HistSummary]:
    hist = doc.get("histograms", {}).get(name)  # type: ignore[union-attr]
    if hist is None:
        return None
    return (int(hist["count"]), float(hist.get("p50", 0.0)),
            float(hist.get("p99", 0.0)))


def diff_profiles(a: Dict[str, object], b: Dict[str, object]) -> ProfileDiff:
    """Compare profile document *a* (baseline) against *b* (current).

    Each side may be a ``repro.obs/1`` profile or a ``repro.metrics/1``
    snapshot; both are validated first, so a malformed artifact fails
    loudly rather than diffing as empty.
    """
    flat_a, total_a = _flat_view(a)
    flat_b, total_b = _flat_view(b)
    phases: List[PhaseDelta] = []
    for path in list(flat_a) + [p for p in flat_b if p not in flat_a]:
        pa = flat_a.get(path)
        pb = flat_b.get(path)
        phases.append(PhaseDelta(
            path,
            float(pa["seconds"]) if pa else None,  # type: ignore[arg-type]
            float(pb["seconds"]) if pb else None,  # type: ignore[arg-type]
            float(pa["peak_traced_kb"]) if pa else None,  # type: ignore[arg-type]
            float(pb["peak_traced_kb"]) if pb else None))  # type: ignore[arg-type]

    def _drift(key: str):
        da = a.get(key, {})
        db = b.get(key, {})
        names = sorted(set(da) | set(db))  # type: ignore[arg-type]
        out = {}
        for name in names:
            va = da.get(name)  # type: ignore[union-attr]
            vb = db.get(name)  # type: ignore[union-attr]
            if name.startswith("query."):
                # Profiles predating the demand-query engine have no
                # query.* section; absent means "zero queries ran",
                # not "unknown", so the diff reads 0 -> N instead of
                # refusing the comparison.
                va = 0 if va is None else va
                vb = 0 if vb is None else vb
            out[name] = (va, vb)
        return out

    hist_names = sorted(set(a.get("histograms", {}))  # type: ignore[arg-type]
                        | set(b.get("histograms", {})))  # type: ignore[arg-type]
    histograms = {}
    for name in hist_names:
        ha = _hist_summary(a, name)
        hb = _hist_summary(b, name)
        if name.startswith("query."):
            # Same zero-default as counters: a missing query latency
            # histogram diffs as an empty one.
            ha = (0, 0.0, 0.0) if ha is None else ha
            hb = (0, 0.0, 0.0) if hb is None else hb
        histograms[name] = (ha, hb)

    return ProfileDiff(
        name_a=str(a.get("name", "")), name_b=str(b.get("name", "")),
        total_seconds_a=total_a,
        total_seconds_b=total_b,
        phases=phases,
        counters=_drift("counters"),
        gauges=_drift("gauges"),
        histograms=histograms)


def _fmt_ratio(ratio: Optional[float]) -> str:
    if ratio is None:
        return "      "
    return f"{ratio:5.2f}x"


def render_profile_diff(diff: ProfileDiff) -> str:
    """Human-readable report (``repro diff-profile`` text output)."""
    lines = [f"profile diff: {diff.name_a or 'A'} -> {diff.name_b or 'B'}",
             f"  total {diff.total_seconds_a:.3f}s -> "
             f"{diff.total_seconds_b:.3f}s "
             f"({_fmt_ratio(diff.total_seconds_b / diff.total_seconds_a if diff.total_seconds_a > 0 else None).strip() or 'n/a'})",
             "phases (seconds A -> B, peak KiB A -> B):"]
    width = max((len(d.path) for d in diff.phases), default=8)
    for delta in diff.phases:
        if delta.status == "added":
            lines.append(f"  {delta.path:<{width}}   (added)    -> "
                         f"{delta.seconds_b:8.4f}s")
            continue
        if delta.status == "removed":
            lines.append(f"  {delta.path:<{width}} {delta.seconds_a:8.4f}s "
                         f"-> (removed)")
            continue
        lines.append(
            f"  {delta.path:<{width}} {delta.seconds_a:8.4f}s -> "
            f"{delta.seconds_b:8.4f}s {_fmt_ratio(delta.seconds_ratio)}  "
            f"{delta.peak_kb_a:8.0f} -> {delta.peak_kb_b:8.0f}")
    changed = diff.changed_counters()
    if changed:
        lines.append("counter drift:")
        cwidth = max(len(k) for k in changed)
        for name, (va, vb) in changed.items():
            lines.append(f"  {name:<{cwidth}} "
                         f"{'-' if va is None else va} -> "
                         f"{'-' if vb is None else vb}")
    else:
        lines.append("counters: no drift")
    changed_g = diff.changed_gauges()
    if changed_g:
        lines.append("gauge drift:")
        gwidth = max(len(k) for k in changed_g)
        for name, (va, vb) in changed_g.items():
            lines.append(f"  {name:<{gwidth}} "
                         f"{'-' if va is None else va} -> "
                         f"{'-' if vb is None else vb}")
    changed_h = diff.changed_histograms()
    if changed_h:
        lines.append("histogram drift (count, p50, p99):")
        hwidth = max(len(k) for k in changed_h)

        def _fmt_hist(summary):
            if summary is None:
                return "-"
            count, p50, p99 = summary
            return f"n={count} p50={p50:.4f} p99={p99:.4f}"

        for name, (ha, hb) in changed_h.items():
            lines.append(f"  {name:<{hwidth}} "
                         f"{_fmt_hist(ha)} -> {_fmt_hist(hb)}")
    return "\n".join(lines)
