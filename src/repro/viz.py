"""Graphviz (DOT) exporters for the analysis data structures.

Handy when debugging why a points-to fact flows where it does: dump
the def-use graph, the ICFG, or the thread spawn tree and render with
``dot -Tsvg``.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.cfg.icfg import ICFG, EdgeKind
from repro.ir.module import Module
from repro.memssa.dug import DUG, StmtNode
from repro.mt.threads import ThreadModel


def _quote(text: str) -> str:
    return '"' + text.replace('"', "'").replace("\n", " ") + '"'


def dug_to_dot(dug: DUG, max_nodes: Optional[int] = None) -> str:
    """The def-use graph; thread-aware edges are drawn red/dashed."""
    lines: List[str] = ["digraph DUG {", "  rankdir=TB;",
                        "  node [shape=box, fontsize=9];"]
    emitted: Set[int] = set()
    nodes = dug.nodes if max_nodes is None else dug.nodes[:max_nodes]
    for node in nodes:
        emitted.add(node.uid)
        shape = "box" if isinstance(node, StmtNode) else "ellipse"
        lines.append(f"  n{node.uid} [label={_quote(repr(node))}, shape={shape}];")
    for node in nodes:
        for obj, dst in dug.mem_out(node):
            if dst.uid not in emitted:
                continue
            style = ""
            if dug.is_thread_edge(node, obj, dst):
                style = ", color=red, style=dashed"
            lines.append(f"  n{node.uid} -> n{dst.uid} "
                         f"[label={_quote(obj.name)}{style}];")
    lines.append("}")
    return "\n".join(lines)


def icfg_to_dot(icfg: ICFG, function_names: Optional[List[str]] = None) -> str:
    """The interprocedural CFG, optionally restricted to functions."""
    keep = set(function_names) if function_names else None
    lines: List[str] = ["digraph ICFG {", "  node [shape=box, fontsize=9];"]
    wanted = set()
    for node in icfg.nodes():
        if keep is None or node.function.name in keep:
            wanted.add(node.uid)
            lines.append(f"  n{node.uid} [label={_quote(repr(node))}];")
    for node in icfg.nodes():
        if node.uid not in wanted:
            continue
        for succ in icfg.successors(node):
            if succ.uid not in wanted:
                continue
            kind = icfg.edge_kind(node, succ)
            style = {EdgeKind.CALL: ", color=blue",
                     EdgeKind.RET: ", color=green"}.get(kind, "")
            lines.append(f"  n{node.uid} -> n{succ.uid} [fontsize=8{style}];")
    lines.append("}")
    return "\n".join(lines)


def thread_tree_to_dot(model: ThreadModel) -> str:
    """The thread spawn tree, multi-forked threads double-circled."""
    lines: List[str] = ["digraph Threads {", "  node [fontsize=10];"]
    for thread in model.threads:
        shape = "doublecircle" if thread.multi_forked else "circle"
        label = "main" if thread.is_main else thread.routine.name
        lines.append(f"  t{thread.id} [label={_quote(f't{thread.id}: {label}')}, "
                     f"shape={shape}];")
    for thread in model.threads:
        if thread.parent is not None:
            lines.append(f"  t{thread.parent.id} -> t{thread.id};")
    lines.append("}")
    return "\n".join(lines)
