"""Command-line interface.

::

    python -m repro analyze   prog.mc        # points-to summary
    python -m repro races     prog.mc        # data race report
    python -m repro deadlocks prog.mc        # lock-order cycles
    python -m repro tsan      prog.mc        # instrumentation reduction
    python -m repro escape    prog.mc        # thread-escape classes
    python -m repro threads   prog.mc        # thread model dump
    python -m repro ir        prog.mc        # partial-SSA IR dump
    python -m repro dot       prog.mc --what dug > out.dot
    python -m repro bench     --table 2      # regenerate a paper table
    python -m repro compare   prog.mc        # FSAM vs NONSPARSE
    python -m repro explain   prog.mc x      # derivation chain for x
    python -m repro query     prog.mc p      # demand points-to query for p
    python -m repro trace     prog.mc        # repro.trace/1 JSONL dump
    python -m repro diff-profile A.json B.json   # profile regression diff
    python -m repro batch     spec.json --workers 4 --cache .repro-cache
    python -m repro serve     --workers 4    # stdin/JSONL request loop
    python -m repro gateway   --port 8377    # TCP gateway (JSONL + HTTP)

Reports can also be emitted as JSON (``--json``) for downstream
tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from typing import List, Optional

from repro.baseline import NonSparseAnalysis
from repro.frontend import compile_source
from repro.fsam import FSAM, FSAMConfig
from repro.ir import Load, print_module
from repro.ir.values import Temp


def _load_module(path: str):
    with open(path) as handle:
        source = handle.read()
    return compile_source(source, name=path)


def _config_from(args, trace: bool = False) -> FSAMConfig:
    return FSAMConfig(
        interleaving=not getattr(args, "no_interleaving", False),
        value_flow=not getattr(args, "no_value_flow", False),
        lock_analysis=not getattr(args, "no_lock", False),
        time_budget=getattr(args, "budget", None),
        trace=trace or getattr(args, "trace", None) is not None,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="MiniC source file")
    parser.add_argument("--json", action="store_true", help="emit JSON")
    parser.add_argument("--no-interleaving", action="store_true")
    parser.add_argument("--no-value-flow", action="store_true")
    parser.add_argument("--no-lock", action="store_true")
    parser.add_argument("--budget", type=float, default=None,
                        help="time budget in seconds")
    parser.add_argument("--profile", metavar="OUT", default=None,
                        help="write the run's observability profile "
                             "(repro.obs/1 JSON) to this file")
    parser.add_argument("--trace", metavar="OUT", default=None,
                        help="enable event tracing and write the run's "
                             "repro.trace/1 JSONL to this file")


def _maybe_write_profile(result, args) -> None:
    """Write the FSAM result's profile document when --profile asked."""
    path = getattr(args, "profile", None)
    if not path or result is None:
        return
    obs = getattr(result, "obs", None)
    if obs is None or not obs.enabled:
        return
    with open(path, "w") as handle:
        handle.write(obs.to_json())
        handle.write("\n")


def _maybe_write_trace(result, args) -> None:
    """Write the FSAM result's event trace when --trace asked."""
    path = getattr(args, "trace", None)
    if not path or result is None:
        return
    tracer = getattr(result, "tracer", None)
    if tracer is None or not tracer.enabled:
        return
    with open(path, "w") as handle:
        tracer.write_jsonl(handle)


def _traced(args, thunk):
    """Run *thunk* with tracemalloc tracing when --profile was asked,
    so the profile's per-phase peak memory is populated."""
    trace = getattr(args, "profile", None) is not None \
        and not tracemalloc.is_tracing()
    if trace:
        tracemalloc.start()
    try:
        return thunk()
    finally:
        if trace:
            tracemalloc.stop()


def _run_fsam(module, args, trace: bool = False):
    result = _traced(args,
                     lambda: FSAM(module, _config_from(args, trace=trace)).run())
    _maybe_write_profile(result, args)
    _maybe_write_trace(result, args)
    return result


def cmd_analyze(args) -> int:
    module = _load_module(args.file)
    result = _run_fsam(module, args)
    if args.json:
        payload = {
            "stats": _jsonable(result.stats()),
            "loads": [
                {"line": i.line, "text": repr(i),
                 "pts": sorted(o.name for o in result.pts(i.dst))}
                for i in module.all_instructions() if isinstance(i, Load)
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"analysed {args.file}")
    for key, value in result.stats().items():
        print(f"  {key}: {value}")
    print("\npoints-to at loads:")
    for instr in module.all_instructions():
        if isinstance(instr, Load):
            pts = sorted(o.name for o in result.pts(instr.dst))
            print(f"  line {instr.line}: {instr!r} -> {pts}")
    return 0


def _jsonable(value):
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def cmd_races(args) -> int:
    from repro.clients import RaceDetector
    detector = RaceDetector(_load_module(args.file), _config_from(args))
    races = _traced(args, detector.run)
    _maybe_write_profile(detector.result, args)
    if args.json:
        print(json.dumps([{"object": r.obj.name,
                           "kind": "write-write" if r.is_write_write else "write-read",
                           "store_line": r.store.line,
                           "access_line": r.access.line} for r in races], indent=2))
        return 2 if races else 0
    print(f"{len(races)} race candidate(s)")
    for race in races:
        print(f"  {race.describe()}")
    return 2 if races else 0


def cmd_deadlocks(args) -> int:
    from repro.clients import DeadlockDetector
    detector = DeadlockDetector(_load_module(args.file), _config_from(args))
    candidates = _traced(args, detector.run)
    _maybe_write_profile(detector.result, args)
    if args.json:
        print(json.dumps([{"first": c.first.name, "second": c.second.name,
                           "site1_line": c.site_holding_first.line,
                           "site2_line": c.site_holding_second.line}
                          for c in candidates], indent=2))
        return 2 if candidates else 0
    print(f"{len(candidates)} potential deadlock(s)")
    for candidate in candidates:
        print(f"  {candidate.describe()}")
    return 2 if candidates else 0


def cmd_tsan(args) -> int:
    from repro.clients import AccessClass, InstrumentationReducer
    reducer = InstrumentationReducer(_load_module(args.file), _config_from(args))
    report = _traced(args, reducer.run)
    _maybe_write_profile(reducer.result, args)
    if args.json:
        print(json.dumps({
            "total": report.total,
            "racy": report.count(AccessClass.RACY),
            "locked": report.count(AccessClass.LOCKED),
            "local": report.count(AccessClass.LOCAL),
            "reduction": report.reduction,
        }, indent=2))
        return 0
    print(report.summary())
    return 0


def cmd_escape(args) -> int:
    from repro.clients import classify_escapes
    report = classify_escapes(_load_module(args.file))
    if args.json:
        print(json.dumps({report.objects[k].name: v.value
                          for k, v in report.classes.items()}, indent=2))
        return 0
    print(report.summary())
    for obj_id, cls in sorted(report.classes.items(),
                              key=lambda kv: report.objects[kv[0]].name):
        print(f"  {report.objects[obj_id].name}: {cls.value}")
    return 0


def cmd_threads(args) -> int:
    module = _load_module(args.file)
    result = _run_fsam(module, args)
    model = result.thread_model
    print(f"{len(model.threads)} abstract thread(s)")
    for thread in model.threads:
        joined = sorted(model.fully_joined.get(thread.id, ()))
        print(f"  {thread!r} fully-joins={joined}")
    if model.symmetric_pairs:
        print("symmetric fork/join loops:")
        for pair in model.symmetric_pairs.values():
            print(f"  {pair!r}")
    return 0


def cmd_ir(args) -> int:
    module = _load_module(args.file)
    print(print_module(module))
    return 0


def cmd_dot(args) -> int:
    from repro import viz
    module = _load_module(args.file)
    result = _run_fsam(module, args)
    if args.what == "dug":
        print(viz.dug_to_dot(result.dug))
    elif args.what == "icfg":
        from repro.cfg import ICFG
        print(viz.icfg_to_dot(ICFG(module, result.andersen.callgraph)))
    else:
        print(viz.thread_tree_to_dot(result.thread_model))
    return 0


def cmd_explain(args) -> int:
    module = _load_module(args.file)
    if args.var is not None:
        # Recorded-provenance mode: rerun with tracing forced on and
        # walk the derivation chains the solver logged.
        from repro.fsam.explain import explain_fact
        result = _run_fsam(module, args, trace=True)
        chains = explain_fact(result, args.var, obj_name=args.obj)
        if not chains:
            wanted = f" pointing to {args.obj!r}" if args.obj else ""
            print(f"no recorded fact for {args.var!r}{wanted}")
            return 1
        print("\n\n".join(chains))
        return 0
    if args.line is None or args.target is None:
        print("explain needs either a variable name or --line/--target",
              file=sys.stderr)
        return 2
    # Legacy post-hoc mode: backwards BFS, no tracing required.
    from repro.fsam.explain import explain_at_line
    result = _run_fsam(module, args)
    provenances = explain_at_line(result, args.line, args.target)
    if not provenances:
        print(f"no load at line {args.line} reads {args.target!r}")
        return 1
    for prov in provenances:
        print(prov.describe())
    return 0


def cmd_query(args) -> int:
    """Demand-driven points-to query: answer what one variable (or
    abstract object, with ``--obj``) may point to by solving only the
    backward DUG slice that can reach it — bit-identical to the
    whole-program fixpoint, usually a small fraction of the work."""
    from repro.obs import Observer
    from repro.service.cache import QueryArtifactStore
    from repro.service.requests import AnalysisRequest, QueryRequest
    from repro.service.runner import QueryRunner

    var = args.var
    line = None
    if "@" in var:
        var, _, line_text = var.rpartition("@")
        try:
            line = int(line_text)
        except ValueError:
            print(f"bad query target {args.var!r}: expected VAR or "
                  "VAR@LINE", file=sys.stderr)
            return 2
    with open(args.file) as handle:
        source = handle.read()
    request = AnalysisRequest(name=args.file, source=source,
                              config=_config_from(args))
    query = QueryRequest(request=request, var=var, line=line, obj=args.obj)
    store = QueryArtifactStore(args.cache) if args.cache else None
    runner = QueryRunner(querystore=store,
                         obs=Observer(name="query", track_memory=False))
    try:
        payload = runner.run(query)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    kind = "object" if args.obj else "variable"
    where = f"@{line}" if line is not None else ""
    print(f"{kind} {var}{where} in {args.file}")
    names = payload["pts"]
    print(f"  points-to ({len(names)}): "
          f"{', '.join(names) if names else '(empty)'}")
    print(f"  cache: {payload['cache']}"
          f"  slice: {payload['slice_nodes']} nodes"
          f" ({payload['slice_fraction'] * 100:.1f}% of DUG)"
          f"  iterations: {payload['iterations']}"
          f"  {payload['seconds'] * 1000:.1f} ms")
    return 0


def cmd_trace(args) -> int:
    """Run FSAM with tracing on; dump the repro.trace/1 JSONL."""
    module = _load_module(args.file)
    result = _run_fsam(module, args, trace=True)
    text = result.trace_jsonl()
    out = getattr(args, "out", None)
    if out:
        with open(out, "w") as handle:
            handle.write(text)
        kinds = result.tracer.kinds()
        print(f"wrote {sum(kinds.values())} event(s) to {out}")
        for kind in sorted(kinds):
            print(f"  {kind}: {kinds[kind]}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_diff_profile(args) -> int:
    """Compare two repro.obs/1 profiles or repro.metrics/1 snapshots
    (report-only)."""
    from repro.harness import diff_profiles, render_profile_diff
    with open(args.baseline) as handle:
        a = json.load(handle)
    with open(args.current) as handle:
        b = json.load(handle)
    diff = diff_profiles(a, b)
    if args.json:
        print(json.dumps({
            "name_a": diff.name_a, "name_b": diff.name_b,
            "total_seconds_a": diff.total_seconds_a,
            "total_seconds_b": diff.total_seconds_b,
            "phases": [{
                "path": d.path, "status": d.status,
                "seconds_a": d.seconds_a, "seconds_b": d.seconds_b,
                "peak_kb_a": d.peak_kb_a, "peak_kb_b": d.peak_kb_b,
                "seconds_ratio": d.seconds_ratio,
            } for d in diff.phases],
            "counter_drift": {k: list(v)
                              for k, v in diff.changed_counters().items()},
            "gauge_drift": {k: list(v)
                            for k, v in diff.changed_gauges().items()},
            "histogram_drift": {k: list(v)
                                for k, v
                                in diff.changed_histograms().items()},
        }, indent=2))
    else:
        print(render_profile_diff(diff))
    # Report-only by design: regressions are for a human (or the CI
    # log reader) to judge, so the exit code never blocks.
    return 0


def cmd_compare(args) -> int:
    module = _load_module(args.file)
    start = time.perf_counter()
    fsam = FSAM(module, _config_from(args)).run()
    fsam_time = time.perf_counter() - start
    _maybe_write_profile(fsam, args)
    module2 = _load_module(args.file)
    start = time.perf_counter()
    baseline = NonSparseAnalysis(module2, _config_from(args)).run()
    base_time = time.perf_counter() - start
    print(f"FSAM:      {fsam_time:8.3f}s  {fsam.points_to_entries():10d} entries")
    print(f"NONSPARSE: {base_time:8.3f}s  {baseline.points_to_entries():10d} entries")
    print(f"speedup {base_time / max(fsam_time, 1e-9):.1f}x, "
          f"state ratio {baseline.points_to_entries() / max(fsam.points_to_entries(), 1):.1f}x")
    return 0


def cmd_stats(args) -> int:
    """Render an observability profile: either re-analyse a MiniC
    source, or pretty-print an existing ``--profile`` JSON document."""
    from repro.obs import profile_to_csv, render_profile, validate_profile
    if args.file.endswith(".json"):
        with open(args.file) as handle:
            doc = json.load(handle)
        validate_profile(doc)
    else:
        module = _load_module(args.file)
        started = not tracemalloc.is_tracing()
        if started:
            tracemalloc.start()
        try:
            result = FSAM(module, _config_from(args)).run()
        finally:
            if started:
                tracemalloc.stop()
        _maybe_write_profile(result, args)
        doc = result.profile()
    if args.chrome:
        from repro.trace import profile_to_chrome
        print(json.dumps(profile_to_chrome(doc), indent=2))
    elif args.json:
        print(json.dumps(doc, indent=2))
    elif args.csv:
        sys.stdout.write(profile_to_csv(doc))
    else:
        print(render_profile(doc))
    return 0


def cmd_bench(args) -> int:
    from repro.harness import (
        render_figure12, render_table1, render_table2, run_figure12,
        run_table1, run_table2,
    )
    if args.table == 1:
        print(render_table1(run_table1()))
    elif args.table == 2:
        print(render_table2(run_table2()))
    else:
        print(render_figure12(run_figure12()))
    return 0


def cmd_batch(args) -> int:
    """Run a batch spec through the worker pool + artifact cache and
    print one ``repro.batch/1`` report."""
    import os

    from repro.service import (
        ArtifactCache, render_batch_report, run_batch, validate_batch_report,
    )
    from repro.service.requests import requests_from_spec

    with open(args.spec) as handle:
        spec = json.load(handle)
    requests, options = requests_from_spec(
        spec, base_dir=os.path.dirname(os.path.abspath(args.spec)))
    workers = args.workers if args.workers is not None \
        else int(options.get("workers", 1))
    timeout = args.timeout if args.timeout is not None \
        else options.get("timeout")
    cache_dir = args.cache if args.cache is not None else options.get("cache")
    cache = ArtifactCache(cache_dir, max_bytes=_cache_max_bytes(args)) \
        if cache_dir else None

    report = run_batch(requests, workers=workers, cache=cache,
                       timeout=timeout,
                       name=os.path.basename(args.spec),
                       incremental=not args.no_incremental,
                       slow_ms=args.slow_ms,
                       queries=options.get("queries"))
    doc = validate_batch_report(report.to_dict())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif args.csv:
        from repro.harness import batch_report_to_csv
        sys.stdout.write(batch_report_to_csv(doc))
    else:
        print(render_batch_report(doc))
    # The availability contract: degraded requests are reported, not
    # fatal. Exit 3 flags them for callers that want to notice.
    return 3 if doc["aggregate"]["degraded"] else 0


def _cache_max_bytes(args) -> Optional[int]:
    mb = getattr(args, "cache_max_mb", None)
    return int(mb * 1024 * 1024) if mb is not None else None


def cmd_serve(args) -> int:
    """Long-lived stdin/JSONL analysis loop (one request per line)."""
    from repro.obs import Observer
    from repro.service import ArtifactCache, serve_loop
    from repro.service.serve import ShutdownFlag

    cache = ArtifactCache(args.cache, max_bytes=_cache_max_bytes(args)) \
        if args.cache else None
    # Live telemetry: periodic repro.metrics/1 snapshots to --metrics-out
    # (or stderr, keeping stdout pure response JSONL).
    metrics_stream = None
    if args.metrics_out:
        metrics_stream = open(args.metrics_out, "w")
    elif args.metrics_interval is not None:
        metrics_stream = sys.stderr
    # SIGINT/SIGTERM drain the in-flight request, flush the final
    # metrics snapshot, and exit 0.
    shutdown = ShutdownFlag()
    previous_handlers = shutdown.install()
    try:
        serve_loop(sys.stdin, sys.stdout,
                   workers=args.workers,
                   cache=cache,
                   timeout=args.timeout,
                   base_dir=args.base_dir,
                   obs=Observer(name="serve", track_memory=False),
                   incremental=not args.no_incremental,
                   metrics_interval=args.metrics_interval,
                   metrics_stream=metrics_stream,
                   max_request_bytes=args.max_request_bytes,
                   shutdown=shutdown)
    finally:
        ShutdownFlag.restore(previous_handlers)
        if args.metrics_out and metrics_stream is not None:
            metrics_stream.close()
    return 0


def cmd_gateway(args) -> int:
    """The asyncio multi-tenant analysis gateway (JSONL + HTTP on one
    TCP port; see :mod:`repro.gateway`)."""
    import asyncio

    from repro.gateway.admission import policies_from_config
    from repro.gateway.server import Gateway, GatewayOptions

    tenants = None
    if args.tenants_config:
        with open(args.tenants_config) as handle:
            tenants = policies_from_config(json.load(handle))
    metrics_stream = None
    if args.metrics_out:
        metrics_stream = open(args.metrics_out, "w")
    elif args.metrics_interval is not None:
        metrics_stream = sys.stderr

    async def _main() -> None:
        gateway = Gateway(GatewayOptions(
            host=args.host, port=args.port, workers=args.workers,
            max_queue=args.max_queue, tenants=tenants,
            cache_root=args.cache,
            cache_max_bytes=_cache_max_bytes(args),
            timeout=args.timeout,
            max_request_bytes=args.max_request_bytes,
            metrics_interval=args.metrics_interval,
            metrics_stream=metrics_stream,
            base_dir=args.base_dir,
            incremental=not args.no_incremental))
        await gateway.start()
        print(f"gateway listening on {args.host}:{gateway.port} "
              f"({args.workers} shard(s))", file=sys.stderr, flush=True)
        gateway.install_signal_handlers()
        await gateway.serve_forever()

    try:
        asyncio.run(_main())
    finally:
        if args.metrics_out and metrics_stream is not None:
            metrics_stream.close()
    return 0


def cmd_report(args) -> int:
    """Render the telemetry view of a batch report or a metrics JSONL
    stream: per-phase p50/p99, cache hit rates, degradation/retry
    counts, and the slowest requests with their dominant phase."""
    from repro.harness import load_telemetry, render_telemetry_report
    source = load_telemetry(args.file)
    if args.json:
        print(json.dumps(source.metrics, indent=2, sort_keys=True))
    else:
        print(render_telemetry_report(source, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FSAM: sparse flow-sensitive pointer analysis for "
                    "multithreaded programs (CGO'16 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, helptext in [
        ("analyze", cmd_analyze, "run FSAM and print points-to results"),
        ("races", cmd_races, "detect data races"),
        ("deadlocks", cmd_deadlocks, "detect lock-order cycles"),
        ("tsan", cmd_tsan, "instrumentation-reduction report"),
        ("escape", cmd_escape, "thread-escape classification"),
        ("threads", cmd_threads, "dump the thread model"),
        ("ir", cmd_ir, "dump the partial-SSA IR"),
        ("compare", cmd_compare, "FSAM vs the NONSPARSE baseline"),
    ]:
        p = sub.add_parser(name, help=helptext)
        _add_common(p)
        p.set_defaults(handler=fn)

    p = sub.add_parser("explain",
                       help="provenance: why does a variable point to "
                            "an object?")
    _add_common(p)
    p.add_argument("var", nargs="?", default=None,
                   help="variable to explain from recorded provenance "
                        "(walks the derivation chain to its AddrOf root)")
    p.add_argument("--obj", default=None,
                   help="restrict to this pointed-to object")
    p.add_argument("--line", type=int, default=None,
                   help="legacy mode: source line of the load")
    p.add_argument("--target", default=None,
                   help="legacy mode: name of the pointed-to object")
    p.set_defaults(handler=cmd_explain)

    p = sub.add_parser("query",
                       help="demand points-to query over a backward "
                            "DUG slice (bit-identical to the "
                            "whole-program answer)")
    p.add_argument("file", help="MiniC source file")
    p.add_argument("var", help="top-level variable to query, "
                               "optionally VAR@LINE to pick one "
                               "definition site")
    p.add_argument("--obj", action="store_true",
                   help="query the contents of the abstract object "
                        "named VAR instead of a variable")
    p.add_argument("--cache", default=None,
                   help="artifact cache directory (query sub-results "
                        "land under <cache>/query)")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.add_argument("--no-interleaving", action="store_true")
    p.add_argument("--no-value-flow", action="store_true")
    p.add_argument("--no-lock", action="store_true")
    p.set_defaults(handler=cmd_query)

    p = sub.add_parser("trace",
                       help="run with event tracing on; dump "
                            "repro.trace/1 JSONL")
    _add_common(p)
    p.add_argument("--out", metavar="OUT", default=None,
                   help="write JSONL here instead of stdout "
                        "(prints a per-kind summary)")
    p.set_defaults(handler=cmd_trace)

    p = sub.add_parser("diff-profile",
                       help="compare two repro.obs/1 profiles or "
                            "repro.metrics/1 snapshots (report-only)")
    p.add_argument("baseline", help="baseline profile/metrics JSON (A)")
    p.add_argument("current", help="current profile/metrics JSON (B)")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(handler=cmd_diff_profile)

    p = sub.add_parser("dot", help="export DOT graphs")
    _add_common(p)
    p.add_argument("--what", choices=["dug", "icfg", "threads"], default="dug")
    p.set_defaults(handler=cmd_dot)

    p = sub.add_parser("stats",
                       help="profile a run (or render a --profile JSON)")
    _add_common(p)
    p.add_argument("--csv", action="store_true",
                   help="emit flattened kind,name,value CSV")
    p.add_argument("--chrome", action="store_true",
                   help="emit Chrome trace-event JSON of the phase "
                        "tree (chrome://tracing / Perfetto)")
    p.set_defaults(handler=cmd_stats)

    p = sub.add_parser("bench", help="regenerate a paper table/figure")
    p.add_argument("--table", type=int, choices=[1, 2, 12], default=2,
                   help="1 = Table 1, 2 = Table 2, 12 = Figure 12")
    p.set_defaults(handler=cmd_bench)

    p = sub.add_parser("batch",
                       help="run a batch spec through the worker pool "
                            "and artifact cache")
    p.add_argument("spec", help="batch spec JSON (see repro.service."
                                "requests for the format)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (overrides the spec; "
                        "1 = inline, no subprocesses)")
    p.add_argument("--cache", default=None,
                   help="artifact cache directory (overrides the spec)")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request wall-clock seconds "
                        "(overrides the spec)")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable per-function incremental reuse "
                        "(cold-solve every cache miss)")
    p.add_argument("--out", metavar="OUT", default=None,
                   help="also write the repro.batch/1 report JSON here")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of text")
    p.add_argument("--csv", action="store_true",
                   help="print per-request CSV rows instead of text")
    p.add_argument("--slow-ms", type=float, default=None,
                   help="capture the per-phase profile of requests "
                        "slower than this as exemplars in the report")
    p.add_argument("--cache-max-mb", type=float, default=None,
                   help="bound the artifact cache to this many MiB "
                        "(LRU eviction; default unbounded)")
    p.set_defaults(handler=cmd_batch)

    p = sub.add_parser("serve",
                       help="serve analysis requests from stdin "
                            "(one JSON per line, responses on stdout)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = inline)")
    p.add_argument("--cache", default=None,
                   help="artifact cache directory")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request wall-clock seconds")
    p.add_argument("--base-dir", default=".",
                   help="base directory for 'file' request entries")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable per-function incremental reuse")
    p.add_argument("--metrics-interval", type=float, default=None,
                   metavar="N",
                   help="emit a cumulative repro.metrics/1 JSONL "
                        "snapshot at least N seconds apart (0 = after "
                        "every request); goes to stderr unless "
                        "--metrics-out is given")
    p.add_argument("--metrics-out", metavar="OUT", default=None,
                   help="write the metrics JSONL stream to this file "
                        "(final snapshot at EOF even without "
                        "--metrics-interval)")
    p.add_argument("--max-request-bytes", type=int,
                   default=1 << 20,
                   help="refuse request lines larger than this "
                        "(default 1 MiB)")
    p.add_argument("--cache-max-mb", type=float, default=None,
                   help="bound the artifact cache to this many MiB "
                        "(LRU eviction; default unbounded)")
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser("gateway",
                       help="asyncio multi-tenant analysis gateway "
                            "(JSONL + HTTP on one TCP port, warm "
                            "shard workers, coalescing, streaming)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8377,
                   help="TCP port (0 = pick an ephemeral port; "
                        "default 8377)")
    p.add_argument("--workers", type=int, default=2,
                   help="persistent shard worker processes (default 2)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="global queued-request high-water mark before "
                        "lowest-priority shedding (default 64)")
    p.add_argument("--tenants-config", metavar="JSON", default=None,
                   help="per-tenant admission policies: JSON object "
                        "of name -> {rate, burst, priority}")
    p.add_argument("--cache", default=None,
                   help="artifact cache directory (shared by all "
                        "shards)")
    p.add_argument("--cache-max-mb", type=float, default=None,
                   help="bound the artifact cache to this many MiB "
                        "(LRU eviction; default unbounded)")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request wall-clock seconds "
                        "(mid-stream expiry degrades to the already-"
                        "streamed Andersen frame)")
    p.add_argument("--max-request-bytes", type=int, default=1 << 20,
                   help="refuse request lines/bodies larger than this "
                        "(default 1 MiB)")
    p.add_argument("--base-dir", default=".",
                   help="base directory for 'file' request entries")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable per-function incremental reuse in "
                        "the shard workers")
    p.add_argument("--metrics-interval", type=float, default=None,
                   metavar="N",
                   help="emit a cumulative repro.metrics/1 JSONL "
                        "snapshot every N seconds (stderr unless "
                        "--metrics-out)")
    p.add_argument("--metrics-out", metavar="OUT", default=None,
                   help="write the metrics JSONL stream to this file "
                        "(final snapshot on shutdown regardless)")
    p.set_defaults(handler=cmd_gateway)

    p = sub.add_parser("report",
                       help="render service telemetry from a "
                            "repro.batch/1 report or a repro.metrics/1 "
                            "JSONL stream")
    p.add_argument("file", help="batch report JSON, metrics snapshot "
                                "JSON, or metrics JSONL stream")
    p.add_argument("--top", type=int, default=5,
                   help="slowest requests to list (default 5)")
    p.add_argument("--json", action="store_true",
                   help="print the final repro.metrics/1 snapshot as "
                        "JSON instead of the rendered report")
    p.set_defaults(handler=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
