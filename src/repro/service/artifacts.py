"""Canonical analysis artifacts (schema ``repro.artifact/1``).

An artifact is the serializable residue of one analysis run: the
points-to fixpoint (top-level and per-definition memory states), the
store update classification, the object table, and the run's summary
statistics/profile. It is what the content-addressed cache stores and
what the batch report aggregates.

The representation problem: every id in the live solver state —
``Temp.id``, ``MemObject.id``, ``DUGNode.uid``, ``Instruction.id`` —
comes from a *process-global* counter, so the same program analysed
twice in one process (or at different points of two processes) yields
different raw keys for identical facts. Artifacts therefore renumber
everything canonically:

- **objects** by their :class:`~repro.pts.PTUniverse` dense index
  (first-sight order during the pipeline, deterministic);
- **temps** by :func:`repro.ir.module.canonical_temp_index` (program
  order of first occurrence);
- **DUG nodes** by position in ``dug.nodes`` (creation order);
- **instructions** by program order.

Bitmasks are already canonical (bits are universe indices) and are
serialized as hex via :func:`repro.pts.mask_to_hex`. The result: two
runs of the same (source, config) produce *byte-identical* payloads
in any process — pinned by ``tests/service/test_determinism.py``
across interpreters with different ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pts import mask_to_hex
from repro.schemas import (
    ARTIFACT_SCHEMA, CODE_VERSION, FUNC_ARTIFACT_SCHEMA,
    QUERY_ARTIFACT_SCHEMA,
)

#: Valid store update classes (mirrors repro.fsam.solver constants).
_STORE_CLASSES = ("kill", "pass", "strong", "weak")


@dataclass
class AnalysisArtifact:
    """One request's serialized result. All maps use canonical keys
    (see the module docstring) and hex-string bitmasks."""

    name: str
    degraded: bool = False
    degraded_reason: Optional[str] = None
    objects: List[Dict[str, object]] = field(default_factory=list)
    pts_top: Dict[str, str] = field(default_factory=dict)
    mem: Dict[str, str] = field(default_factory=dict)
    store_classes: Dict[str, str] = field(default_factory=dict)
    summary: Dict[str, object] = field(default_factory=dict)
    profile: Optional[Dict[str, object]] = None
    code_version: str = CODE_VERSION

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "code_version": self.code_version,
            "name": self.name,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "objects": self.objects,
            "pts_top": self.pts_top,
            "mem": self.mem,
            "store_classes": self.store_classes,
            "summary": self.summary,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "AnalysisArtifact":
        validate_artifact(doc)
        return cls(
            name=doc["name"],                              # type: ignore[arg-type]
            degraded=doc["degraded"],                      # type: ignore[arg-type]
            degraded_reason=doc.get("degraded_reason"),    # type: ignore[arg-type]
            objects=doc["objects"],                        # type: ignore[arg-type]
            pts_top=doc["pts_top"],                        # type: ignore[arg-type]
            mem=doc["mem"],                                # type: ignore[arg-type]
            store_classes=doc["store_classes"],            # type: ignore[arg-type]
            summary=doc["summary"],                        # type: ignore[arg-type]
            profile=doc.get("profile"),                    # type: ignore[arg-type]
            code_version=doc["code_version"],              # type: ignore[arg-type]
        )

    def payload_digest(self) -> str:
        """SHA-256 over the *semantic* payload only — the fixpoint
        maps and object table, not timings or profiles. Equal digests
        mean bit-identical analysis results; the determinism guard
        asserts this is stable across interpreter processes."""
        payload = {
            "degraded": self.degraded,
            "objects": self.objects,
            "pts_top": self.pts_top,
            "mem": self.mem,
            "store_classes": self.store_classes,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def solver_iterations(self) -> int:
        value = self.summary.get("solver_iterations", 0)
        return int(value) if isinstance(value, (int, float)) else 0


def artifact_from_result(name: str, result) -> AnalysisArtifact:
    """Build the full artifact from a completed
    :class:`~repro.fsam.analysis.FSAMResult`."""
    from repro.fsam.solver import store_update_classes
    from repro.ir.module import canonical_instr_index

    universe = result.solver.universe
    pts_top = {str(idx): mask_to_hex(mask)
               for idx, mask in sorted(result.pts_top_masks().items())}
    mem = {key: mask_to_hex(mask)
           for key, mask in sorted(result.mem_masks().items())}

    instr_index = canonical_instr_index(result.module)
    store_classes: Dict[str, str] = {}
    for (instr_id, obj_id), cls in store_update_classes(result.solver).items():
        obj_idx = universe.index_of_id(obj_id)
        if obj_idx is None:
            continue  # object never entered any points-to set
        store_classes[f"{instr_index[instr_id]}:{obj_idx}"] = cls

    stats = result.stats()
    summary = {
        "points_to_entries": stats["points_to_entries"],
        "dug_nodes": stats["dug_nodes"],
        "dug_mem_edges": stats["dug_mem_edges"],
        "thread_aware_edges": stats["thread_aware_edges"],
        "threads": stats["threads"],
        "solver_iterations": stats["solver_iterations"],
    }
    incremental = getattr(result, "incremental_stats", None)
    if incremental is not None:
        # Rides in the summary, which payload_digest() excludes: a
        # warm run's artifact stays bit-identical to a cold run's.
        summary["incremental"] = incremental
    profile = result.profile() if result.obs.enabled else None
    return AnalysisArtifact(
        name=name,
        objects=universe.object_table(),
        pts_top=pts_top,
        mem=mem,
        store_classes=store_classes,
        summary=summary,
        profile=profile,
    )


def artifact_from_andersen(name: str, module, andersen,
                           reason: str = "budget-exhausted"
                           ) -> AnalysisArtifact:
    """The degraded (Andersen-only) artifact: flow-insensitive
    top-level points-to sets, no per-definition memory states, no
    store classification. The last rung of the degradation ladder —
    a batch never fails outright, it returns this instead."""
    universe = andersen.universe
    pts_top = _degraded_pts_top(module, andersen)
    entries = sum(bin(int(m, 16)).count("1") for m in pts_top.values())
    return AnalysisArtifact(
        name=name,
        degraded=True,
        degraded_reason=reason,
        objects=universe.object_table(),
        pts_top=pts_top,
        summary={"points_to_entries": entries, "solver_iterations": 0},
    )


def _degraded_pts_top(module, andersen) -> Dict[str, str]:
    from repro.ir.module import canonical_temps

    out: Dict[str, str] = {}
    for idx, temp in enumerate(canonical_temps(module)):
        pts = andersen.pts(temp)
        if pts:
            out[str(idx)] = mask_to_hex(pts.mask)
    return out


def artifact_from_query(program_digest: str, slice_signature: str,
                        query_result) -> Dict[str, object]:
    """Serialize one demand-query answer (``repro.queryartifact/1``).

    The *disk key* is the request (program digest + query spec, see
    :func:`repro.service.digest.query_digest`) so a warm hit needs no
    pipeline at all; the *slice signature* — the canonical identity of
    the backward DUG slice the answer was solved on — is recorded
    inside the document, both for diagnostics and so a reader can tell
    whether two query artifacts were answered from the same sub-DUG.
    The answer mask is over the program's canonical object table and
    already bit-identical to the whole-program fixpoint (the demand
    engine's contract), so names alone are enough for consumers.
    """
    return {
        "schema": QUERY_ARTIFACT_SCHEMA,
        "code_version": CODE_VERSION,
        "program_digest": program_digest,
        "query": {
            "var": query_result.name,
            "line": query_result.line,
            "obj": query_result.obj_query,
        },
        "slice_signature": slice_signature,
        "slice_nodes": query_result.slice_nodes,
        "slice_temps": query_result.slice_temps,
        "slice_fraction": round(query_result.slice_fraction, 6),
        "iterations": query_result.iterations,
        "answer": {
            "mask": mask_to_hex(query_result.mask),
            "names": query_result.names(),
        },
    }


# -- schema -----------------------------------------------------------------


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"invalid artifact document: {message}")


def _check_mask_map(value: object, what: str) -> None:
    _check(isinstance(value, dict), f"{what} is not an object")
    assert isinstance(value, dict)
    for key, mask in value.items():
        _check(isinstance(key, str), f"{what} key {key!r} is not a string")
        _check(isinstance(mask, str), f"{what}[{key}] is not a hex string")
        try:
            int(mask, 16)
        except (TypeError, ValueError):
            _check(False, f"{what}[{key}] is not valid hex: {mask!r}")


def validate_artifact(doc: object) -> Dict[str, object]:
    """Check *doc* against ``repro.artifact/1``; returns it unchanged
    (same contract as :func:`repro.obs.validate_profile`)."""
    _check(isinstance(doc, dict), "top level is not an object")
    assert isinstance(doc, dict)
    _check(doc.get("schema") == ARTIFACT_SCHEMA,
           f"schema is {doc.get('schema')!r}, expected {ARTIFACT_SCHEMA!r}")
    _check(isinstance(doc.get("code_version"), str) and doc["code_version"],
           "code_version missing")
    _check(isinstance(doc.get("name"), str), "name is not a string")
    _check(isinstance(doc.get("degraded"), bool), "degraded is not a bool")
    reason = doc.get("degraded_reason")
    _check(reason is None or isinstance(reason, str),
           "degraded_reason is not a string")
    objects = doc.get("objects")
    _check(isinstance(objects, list), "objects is not a list")
    assert isinstance(objects, list)
    for i, obj in enumerate(objects):
        _check(isinstance(obj, dict)
               and isinstance(obj.get("name"), str)
               and isinstance(obj.get("kind"), str),
               f"objects[{i}] lacks name/kind strings")
    _check_mask_map(doc.get("pts_top"), "pts_top")
    _check_mask_map(doc.get("mem"), "mem")
    classes = doc.get("store_classes")
    _check(isinstance(classes, dict), "store_classes is not an object")
    assert isinstance(classes, dict)
    for key, cls in classes.items():
        _check(cls in _STORE_CLASSES,
               f"store_classes[{key}] has unknown class {cls!r}")
    _check(isinstance(doc.get("summary"), dict), "summary is not an object")
    profile = doc.get("profile")
    _check(profile is None or isinstance(profile, dict),
           "profile is neither null nor an object")
    return doc


def validate_funcartifact(doc: object) -> Dict[str, object]:
    """Check *doc* against ``repro.funcartifact/1``; returns it
    unchanged. A funcartifact is one function's share of a solved
    fixpoint, keyed by doc-*local* indices: ``objects`` is the local
    object-key table, ``top`` maps local canonical temp index to a hex
    mask over that table, and ``mem`` maps ``"<local node
    idx>:<local obj idx>"`` rows likewise."""
    _check(isinstance(doc, dict), "top level is not an object")
    assert isinstance(doc, dict)
    _check(doc.get("schema") == FUNC_ARTIFACT_SCHEMA,
           f"schema is {doc.get('schema')!r}, "
           f"expected {FUNC_ARTIFACT_SCHEMA!r}")
    _check(isinstance(doc.get("code_version"), str) and doc["code_version"],
           "code_version missing")
    _check(isinstance(doc.get("function"), str) and doc["function"],
           "function name missing")
    for key in ("digest", "context_sig"):
        _check(isinstance(doc.get(key), str) and doc[key],
               f"{key} missing")
    objects = doc.get("objects")
    _check(isinstance(objects, list), "objects is not a list")
    assert isinstance(objects, list)
    for i, obj_key in enumerate(objects):
        _check(isinstance(obj_key, str) and ":" in obj_key,
               f"objects[{i}] is not a kind:name key")
    _check_mask_map(doc.get("top"), "top")
    _check_mask_map(doc.get("mem"), "mem")
    return doc


def validate_queryartifact(doc: object) -> Dict[str, object]:
    """Check *doc* against ``repro.queryartifact/1``; returns it
    unchanged."""
    _check(isinstance(doc, dict), "top level is not an object")
    assert isinstance(doc, dict)
    _check(doc.get("schema") == QUERY_ARTIFACT_SCHEMA,
           f"schema is {doc.get('schema')!r}, "
           f"expected {QUERY_ARTIFACT_SCHEMA!r}")
    _check(isinstance(doc.get("code_version"), str) and doc["code_version"],
           "code_version missing")
    for key in ("program_digest", "slice_signature"):
        _check(isinstance(doc.get(key), str) and doc[key],
               f"{key} missing")
    query = doc.get("query")
    _check(isinstance(query, dict), "query is not an object")
    assert isinstance(query, dict)
    _check(isinstance(query.get("var"), str) and query["var"],
           "query.var missing")
    line = query.get("line")
    _check(line is None or isinstance(line, int),
           "query.line is neither null nor an integer")
    _check(isinstance(query.get("obj"), bool), "query.obj is not a bool")
    for key in ("slice_nodes", "slice_temps", "iterations"):
        value = doc.get(key)
        _check(isinstance(value, int) and not isinstance(value, bool)
               and value >= 0, f"{key} is not a non-negative integer")
    fraction = doc.get("slice_fraction")
    _check(isinstance(fraction, (int, float))
           and not isinstance(fraction, bool) and 0 <= fraction <= 1,
           "slice_fraction is not in [0, 1]")
    answer = doc.get("answer")
    _check(isinstance(answer, dict), "answer is not an object")
    assert isinstance(answer, dict)
    mask = answer.get("mask")
    _check(isinstance(mask, str), "answer.mask is not a hex string")
    try:
        int(mask, 16)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        _check(False, f"answer.mask is not valid hex: {mask!r}")
    names = answer.get("names")
    _check(isinstance(names, list)
           and all(isinstance(name, str) for name in names),
           "answer.names is not a list of strings")
    return doc
