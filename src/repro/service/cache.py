"""Content-addressed artifact cache.

Artifacts live on disk at ``<root>/<d[:2]>/<d[2:]>.json`` where ``d``
is the request digest (SHA-256 over source + fixpoint config + code
version, see :func:`repro.service.requests.request_digest`). The
layout is git-object style: two-hex-char fan-out directories keep any
single directory small.

Policies:

- **writes are atomic** (temp file + ``os.replace``), so a killed
  worker can never leave a truncated artifact that poisons later
  reads;
- **degraded artifacts are never stored** — a budget-exhausted
  Andersen-only result under the same key as the full result would be
  served to later, unbudgeted runs;
- **reads validate** the document schema and code version; a corrupt
  or stale entry reads as a miss (and is removed), never as an error.

Counters (``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
``cache.corrupt``) flush into a :class:`repro.obs.Observer` like any
other pipeline stage.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro.obs import Observer
from repro.schemas import CODE_VERSION
from repro.service.artifacts import AnalysisArtifact, validate_artifact


class ArtifactCache:
    """A content-addressed store of ``repro.artifact/1`` documents."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.json"

    def get(self, digest: str) -> Optional[AnalysisArtifact]:
        """The cached artifact for *digest*, or None on miss. Corrupt
        and version-stale entries are dropped and read as misses."""
        path = self.path(digest)
        try:
            with open(path) as handle:
                doc = json.load(handle)
            artifact = AnalysisArtifact.from_dict(doc)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, ValueError, KeyError, OSError):
            self.corrupt += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if artifact.code_version != CODE_VERSION:
            # Structurally valid but produced by other analysis code:
            # stale, not corrupt. Drop it so the slot gets rewritten.
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return artifact

    def put(self, digest: str, artifact: AnalysisArtifact) -> Optional[Path]:
        """Store *artifact* under *digest*; returns the path, or None
        when the artifact is degraded (never cached)."""
        if artifact.degraded:
            return None
        path = self.path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = artifact.to_dict()
        validate_artifact(doc)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # -- statistics --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def flush_obs(self, obs: Observer) -> None:
        obs.count("cache.hits", self.hits)
        obs.count("cache.misses", self.misses)
        obs.count("cache.stores", self.stores)
        obs.count("cache.corrupt", self.corrupt)
