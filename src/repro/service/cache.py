"""Content-addressed artifact cache.

Artifacts live on disk at ``<root>/<d[:2]>/<d[2:]>.json`` where ``d``
is the request digest (SHA-256 over source + fixpoint config + code
version, see :func:`repro.service.requests.request_digest`). The
layout is git-object style: two-hex-char fan-out directories keep any
single directory small.

Policies:

- **writes are atomic** (temp file + ``os.replace``), so a killed
  worker can never leave a truncated artifact that poisons later
  reads;
- **degraded artifacts are never stored** — a budget-exhausted
  Andersen-only result under the same key as the full result would be
  served to later, unbudgeted runs;
- **reads validate** the document schema and code version; a corrupt
  or version-stale entry reads as a miss, never as an error. Removal
  of a bad entry is *tolerant*: the slot is re-stat()ed and compared
  against the file that was actually read, so a fresh artifact that a
  concurrent worker just ``os.replace``d into the same slot is never
  unlinked — it is re-read and served instead.

Counters (``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
``cache.corrupt`` / ``cache.stale``) flush into a
:class:`repro.obs.Observer` like any other pipeline stage.

The module also hosts :class:`FuncArtifactStore`, the per-function
sub-document layer (``repro.funcartifact/1``) used by incremental
analysis: same fan-out layout under ``<root>/func/``, same atomic
writes and tolerant reads, keyed by per-function digests (see
:func:`repro.service.requests.function_digest`), and
:class:`QueryArtifactStore`, the demand-query sub-result layer
(``repro.queryartifact/1``) under ``<root>/query/``, keyed by
:func:`repro.service.digest.query_digest`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.obs import Observer
from repro.schemas import (
    CODE_VERSION, FUNC_ARTIFACT_SCHEMA, QUERY_ARTIFACT_SCHEMA,
)
from repro.service.artifacts import (
    AnalysisArtifact, validate_artifact, validate_funcartifact,
    validate_queryartifact,
)


def _handle_sig(handle) -> Tuple[int, int, int]:
    """Identity of the open file: survives a concurrent os.replace of
    the path (the *path* then names a different inode)."""
    st = os.fstat(handle.fileno())
    return (st.st_ino, st.st_size, st.st_mtime_ns)


def _tolerant_drop(path: Path, sig: Optional[Tuple[int, int, int]]) -> bool:
    """Remove *path* only while it still names the entry we just read.

    Returns True when the slot now holds a *different* file — a
    concurrent worker ``os.replace``d a fresh artifact in after our
    failed read — in which case nothing is removed and the caller
    should re-read instead of discarding the fresh entry."""
    try:
        st = os.stat(path)
    except OSError:
        return False  # already gone: nothing left to drop
    if sig is None or (st.st_ino, st.st_size, st.st_mtime_ns) != sig:
        return True
    try:
        os.unlink(path)
    except OSError:
        pass
    return False


def _atomic_write(path: Path, doc: Dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(doc, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ArtifactCache:
    """A content-addressed store of ``repro.artifact/1`` documents.

    With *max_bytes* set, the cache is bounded: after every store the
    top-level artifact tree is walked (only the two-hex fan-out
    directories — the ``func/`` and ``query/`` sub-stores are never
    evicted from here) and the least-recently-used entries are removed
    until the total size fits. Recency is mtime: a cache hit
    ``os.utime``-touches the entry, so a hot artifact survives
    arbitrarily many eviction sweeps while cold ones age out.
    Evictions count in ``cache.evicted``.
    """

    def __init__(self, root, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.stale = 0
        self.evicted = 0

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.json"

    def get(self, digest: str) -> Optional[AnalysisArtifact]:
        """The cached artifact for *digest*, or None on miss. Corrupt
        and version-stale entries are dropped and read as misses —
        unless a concurrent writer already replaced the slot with a
        fresh entry, which is re-read once and served."""
        path = self.path(digest)
        for retry in (True, False):
            sig = None
            try:
                with open(path) as handle:
                    sig = _handle_sig(handle)
                    doc = json.load(handle)
                artifact = AnalysisArtifact.from_dict(doc)
            except FileNotFoundError:
                self.misses += 1
                return None
            except (json.JSONDecodeError, ValueError, KeyError, OSError):
                self.corrupt += 1
                if _tolerant_drop(path, sig) and retry:
                    continue
                self.misses += 1
                return None
            if artifact.code_version != CODE_VERSION:
                # Structurally valid but produced by other analysis
                # code: stale, not corrupt. Drop it so the slot gets
                # rewritten.
                self.stale += 1
                if _tolerant_drop(path, sig) and retry:
                    continue
                self.misses += 1
                return None
            self.hits += 1
            if self.max_bytes is not None:
                # LRU touch: mark the entry recently used so the
                # eviction sweep ages out cold artifacts first.
                try:
                    os.utime(path)
                except OSError:  # pragma: no cover - entry raced away
                    pass
            return artifact
        return None  # pragma: no cover - loop always returns

    def put(self, digest: str, artifact: AnalysisArtifact) -> Optional[Path]:
        """Store *artifact* under *digest*; returns the path, or None
        when the artifact is degraded (never cached)."""
        if artifact.degraded:
            return None
        path = self.path(digest)
        doc = artifact.to_dict()
        validate_artifact(doc)
        _atomic_write(path, doc)
        self.stores += 1
        if self.max_bytes is not None:
            self._evict()
        return path

    def _entries(self):
        """Every top-level artifact file as ``(mtime_ns, size, path)``.
        Only two-hex fan-out directories are scanned, so the ``func/``
        and ``query/`` sub-stores sharing this root are exempt."""
        entries = []
        try:
            fanouts = list(self.root.iterdir())
        except OSError:
            return entries
        for fanout in fanouts:
            name = fanout.name
            if len(name) != 2 or not fanout.is_dir() \
                    or any(c not in "0123456789abcdef" for c in name):
                continue
            try:
                files = list(fanout.iterdir())
            except OSError:  # pragma: no cover - racing eviction
                continue
            for file in files:
                if file.suffix != ".json":
                    continue
                try:
                    st = file.stat()
                except OSError:  # pragma: no cover - racing eviction
                    continue
                entries.append((st.st_mtime_ns, st.st_size, file))
        return entries

    def _evict(self) -> None:
        """Drop least-recently-used entries until the store fits
        ``max_bytes``."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first
        for _, size, file in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(file)
            except OSError:  # pragma: no cover - racing eviction
                continue
            total -= size
            self.evicted += 1

    # -- statistics --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "stale": self.stale,
            "evicted": self.evicted,
        }

    def flush_obs(self, obs: Observer) -> None:
        obs.count("cache.hits", self.hits)
        obs.count("cache.misses", self.misses)
        obs.count("cache.stores", self.stores)
        obs.count("cache.corrupt", self.corrupt)
        obs.count("cache.stale", self.stale)
        obs.count("cache.evicted", self.evicted)


class FuncArtifactStore:
    """Per-function artifact layer (``repro.funcartifact/1``).

    Lives under ``<root>/func/`` beside (usually inside) an
    :class:`ArtifactCache` root, with the same two-hex fan-out,
    atomic-write, and tolerant-read policies. Keys are per-function
    digests: H(canonical function IR + callee mod-ref signatures +
    fixpoint config + code version), so an entry hits exactly when
    nothing that can influence the function's local value flow or its
    calls' summaries has changed.
    """

    def __init__(self, root) -> None:
        self.root = Path(root) / "func"
        self.func_hits = 0
        self.func_misses = 0
        self.func_stores = 0
        self.corrupt = 0

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.json"

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The validated funcartifact document for *digest*, or None."""
        path = self.path(digest)
        for retry in (True, False):
            sig = None
            try:
                with open(path) as handle:
                    sig = _handle_sig(handle)
                    doc = json.load(handle)
                validate_funcartifact(doc)
            except FileNotFoundError:
                self.func_misses += 1
                return None
            except (json.JSONDecodeError, ValueError, KeyError, OSError):
                self.corrupt += 1
                if _tolerant_drop(path, sig) and retry:
                    continue
                self.func_misses += 1
                return None
            if doc.get("code_version") != CODE_VERSION:
                self.corrupt += 1
                if _tolerant_drop(path, sig) and retry:
                    continue
                self.func_misses += 1
                return None
            self.func_hits += 1
            return doc
        return None  # pragma: no cover - loop always returns

    def put(self, digest: str, doc: Dict[str, object]) -> Path:
        if doc.get("schema") != FUNC_ARTIFACT_SCHEMA:
            raise ValueError(f"not a funcartifact document: {doc.get('schema')}")
        path = self.path(digest)
        _atomic_write(path, doc)
        self.func_stores += 1
        return path

    # -- statistics --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "func_hits": self.func_hits,
            "func_misses": self.func_misses,
            "func_stores": self.func_stores,
            "corrupt": self.corrupt,
        }

    def flush_obs(self, obs: Observer) -> None:
        obs.count("cache.func_hits", self.func_hits)
        obs.count("cache.func_misses", self.func_misses)
        obs.count("cache.func_stores", self.func_stores)


class QueryArtifactStore:
    """Demand-query sub-result layer (``repro.queryartifact/1``).

    Lives under ``<root>/query/`` beside an :class:`ArtifactCache`
    root, with the same two-hex fan-out, atomic-write, and
    tolerant-read policies. Keys are request digests — H(program
    digest + var/line/obj + code version), see
    :func:`repro.service.digest.query_digest` — so a warm hit answers
    a query without compiling or building any pipeline at all.
    """

    def __init__(self, root) -> None:
        self.root = Path(root) / "query"
        self.query_hits = 0
        self.query_misses = 0
        self.query_stores = 0
        self.corrupt = 0

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.json"

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The validated queryartifact document for *digest*, or None."""
        path = self.path(digest)
        for retry in (True, False):
            sig = None
            try:
                with open(path) as handle:
                    sig = _handle_sig(handle)
                    doc = json.load(handle)
                validate_queryartifact(doc)
            except FileNotFoundError:
                self.query_misses += 1
                return None
            except (json.JSONDecodeError, ValueError, KeyError, OSError):
                self.corrupt += 1
                if _tolerant_drop(path, sig) and retry:
                    continue
                self.query_misses += 1
                return None
            if doc.get("code_version") != CODE_VERSION:
                self.corrupt += 1
                if _tolerant_drop(path, sig) and retry:
                    continue
                self.query_misses += 1
                return None
            self.query_hits += 1
            return doc
        return None  # pragma: no cover - loop always returns

    def put(self, digest: str, doc: Dict[str, object]) -> Path:
        if doc.get("schema") != QUERY_ARTIFACT_SCHEMA:
            raise ValueError(
                f"not a queryartifact document: {doc.get('schema')}")
        path = self.path(digest)
        _atomic_write(path, doc)
        self.query_stores += 1
        return path

    # -- statistics --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "query_stores": self.query_stores,
            "corrupt": self.corrupt,
        }

    def flush_obs(self, obs: Observer) -> None:
        obs.count("query.cache_hits", self.query_hits)
        obs.count("query.cache_misses", self.query_misses)
        obs.count("query.cache_stores", self.query_stores)
