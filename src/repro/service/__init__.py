"""Batch analysis service (``repro.service``).

Turns the single-shot FSAM pipeline into a servable system:

- :mod:`repro.service.artifacts` — canonical, process-independent
  serialization of an analysis result (``repro.artifact/1``);
- :mod:`repro.service.cache` — a content-addressed disk cache keyed
  by digest(source, config, code version), so warm re-runs skip the
  solver entirely;
- :mod:`repro.service.runner` — one request end to end, including
  the budget-exhaustion degradation ladder (full FSAM -> Andersen-only
  ``degraded`` result);
- :mod:`repro.service.pool` — a multiprocessing worker pool with
  per-request wall-clock timeouts, one retry, and graceful
  degradation;
- :mod:`repro.service.batch` — the batch driver: request dedup,
  cache consultation, pool dispatch, and one aggregated
  ``repro.batch/1`` report;
- :mod:`repro.service.serve` — a long-lived stdin/JSONL request loop
  (``repro serve``);
- :mod:`repro.service.incremental` — function-granular incremental
  analysis over the cache's per-function artifact store
  (``repro.funcartifact/1``): warm requests whose program digest
  misses reuse the previous fixpoint for unchanged functions and
  re-solve only downstream of the edit;
- :mod:`repro.service.digest` — the one canonical-JSON sha256 every
  service cache key goes through;
- demand queries (``op: query`` entries, ``repro query``) — answered
  by :class:`repro.service.runner.QueryRunner` over backward DUG
  slices, cached per query in the ``repro.queryartifact/1`` store
  under ``<cache>/query``.

Every request runs as a telemetry span (deterministic request id,
own Observer in the worker process); cache-miss span snapshots merge
back into a ``repro.metrics/1`` rollup — mergeable latency
histograms, cross-request per-phase distributions, cache hit-rate
gauges — embedded in batch reports and streamed live by
``repro serve --metrics-interval`` (see DESIGN.md "Service
telemetry"; rendered by ``repro report``).
"""

from repro.service.artifacts import (
    AnalysisArtifact, artifact_from_andersen, artifact_from_query,
    artifact_from_result, validate_artifact, validate_funcartifact,
    validate_queryartifact,
)
from repro.service.batch import (
    BatchReport, render_batch_report, run_batch, validate_batch_report,
)
from repro.service.cache import (
    ArtifactCache, FuncArtifactStore, QueryArtifactStore,
)
from repro.service.digest import canonical_digest, query_digest
from repro.service.requests import (
    AnalysisRequest, QueryRequest, function_digest, request_digest,
)
from repro.service.pool import WorkerPool
from repro.service.runner import (
    QueryRunner, RequestOutcome, run_request_inline,
)
from repro.service.serve import serve_loop

__all__ = [
    "AnalysisArtifact", "artifact_from_result", "artifact_from_andersen",
    "artifact_from_query",
    "validate_artifact", "validate_funcartifact", "validate_queryartifact",
    "ArtifactCache", "FuncArtifactStore", "QueryArtifactStore",
    "AnalysisRequest", "QueryRequest", "request_digest", "function_digest",
    "canonical_digest", "query_digest",
    "RequestOutcome", "run_request_inline", "QueryRunner",
    "WorkerPool",
    "BatchReport", "run_batch", "render_batch_report",
    "validate_batch_report",
    "serve_loop",
]
