"""Executing one analysis request end to end.

The degradation ladder (the batch service's availability contract —
a batch returns *some* result for every request, never an exception):

1. the full FSAM pipeline, under ``config.time_budget`` if set;
2. on budget exhaustion (``AnalysisTimeout``) or a parent-enforced
   wall-clock kill: one retry of the full pipeline (pool mode only —
   in-process budget exhaustion is deterministic, so the inline
   runner skips straight to rung 3);
3. the Andersen-only fallback: compile + pre-analysis, packaged as a
   ``degraded=True`` artifact with flow-insensitive top-level
   points-to sets and no memory states.

:func:`run_request_inline` is the serial building block used by the
batch driver when ``workers <= 1``, by the pool's last-resort
fallback in the parent, and directly by tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.fsam.config import AnalysisTimeout
from repro.service.artifacts import (
    AnalysisArtifact, artifact_from_andersen, artifact_from_result,
)
from repro.service.requests import AnalysisRequest


@dataclass
class RequestOutcome:
    """One request's terminal state inside a batch."""

    name: str
    digest: str
    artifact: AnalysisArtifact
    cache: str = "miss"            # "hit" | "miss"
    seconds: float = 0.0
    attempts: int = 1

    @property
    def status(self) -> str:
        return "degraded" if self.artifact.degraded else "ok"


def run_full(request: AnalysisRequest) -> AnalysisArtifact:
    """Rung 1: the whole pipeline. Raises
    :class:`~repro.fsam.config.AnalysisTimeout` on budget exhaustion.
    """
    module = compile_source(request.source, name=request.name)
    result = FSAM(module, request.config).run()
    return artifact_from_result(request.name, result)


def run_degraded(request: AnalysisRequest,
                 reason: str = "budget-exhausted") -> AnalysisArtifact:
    """Rung 3: Andersen-only. Deliberately ignores the request budget
    — the pre-analysis is orders of magnitude cheaper than the sparse
    solve, and the ladder must terminate with a result."""
    from repro.andersen import run_andersen

    module = compile_source(request.source, name=request.name)
    andersen = run_andersen(module)
    return artifact_from_andersen(request.name, module, andersen,
                                  reason=reason)


def run_request_inline(request: AnalysisRequest) -> RequestOutcome:
    """The serial ladder: full pipeline, degrading on budget
    exhaustion. No retry — re-running the same deterministic analysis
    under the same in-process budget exhausts it again."""
    start = time.perf_counter()
    attempts = 1
    try:
        artifact = run_full(request)
    except AnalysisTimeout:
        attempts += 1
        artifact = run_degraded(request)
    return RequestOutcome(
        name=request.name,
        digest=request.digest(),
        artifact=artifact,
        seconds=time.perf_counter() - start,
        attempts=attempts,
    )
