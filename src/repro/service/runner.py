"""Executing one analysis request end to end.

The degradation ladder (the batch service's availability contract —
a batch returns *some* result for every request, never an exception):

1. the full FSAM pipeline, under ``config.time_budget`` if set;
2. on budget exhaustion (``AnalysisTimeout``) or a parent-enforced
   wall-clock kill: one retry of the full pipeline (pool mode only —
   in-process budget exhaustion is deterministic, so the inline
   runner skips straight to rung 3);
3. the Andersen-only fallback: compile + pre-analysis, packaged as a
   ``degraded=True`` artifact with flow-insensitive top-level
   points-to sets and no memory states.

:func:`run_request_inline` is the serial building block used by the
batch driver when ``workers <= 1``, by the pool's last-resort
fallback in the parent, and directly by tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.fsam.config import AnalysisTimeout, FSAMConfig
from repro.obs import NULL_OBS, Observer
from repro.service.artifacts import (
    AnalysisArtifact, artifact_from_andersen, artifact_from_query,
    artifact_from_result,
)
from repro.service.digest import query_digest
from repro.service.requests import AnalysisRequest, QueryRequest


@dataclass
class RequestOutcome:
    """One request's terminal state inside a batch."""

    name: str
    digest: str
    artifact: AnalysisArtifact
    cache: str = "miss"            # "hit" | "miss"
    seconds: float = 0.0           # total, from the first attempt's start
    attempts: int = 1
    #: Wall-clock duration of each individual attempt (including the
    #: final degraded fallback, when one ran). ``seconds`` measures the
    #: whole request from the first spawn and therefore also contains
    #: requeue wait between retries; the per-attempt entries do not.
    attempt_seconds: List[float] = field(default_factory=list)
    #: Time spent waiting for a worker slot: the delay from enqueue to
    #: the first spawn plus any requeue wait between retry rungs.
    #: Disjoint from ``attempt_seconds`` — queue wait vs attempt work
    #: feed separate latency histograms.
    queue_seconds: float = 0.0
    #: Span id assigned by the dispatcher (see ``AnalysisRequest``).
    request_id: Optional[str] = None
    #: The request's ``repro.metrics/1`` telemetry span — recorded by
    #: the worker-side Observer and shipped back through the result
    #: pipe (pool mode) or captured in-process (inline mode). None when
    #: profiling is off and no func-store counters accrued.
    obs_snapshot: Optional[Dict[str, object]] = None

    @property
    def status(self) -> str:
        return "degraded" if self.artifact.degraded else "ok"


def run_full(request: AnalysisRequest,
             funcstore=None, obs: Optional[Observer] = None,
             on_preanalysis=None) -> AnalysisArtifact:
    """Rung 1: the whole pipeline. Raises
    :class:`~repro.fsam.config.AnalysisTimeout` on budget exhaustion.

    When *funcstore* (a :class:`repro.service.cache.FuncArtifactStore`)
    is given, the run consults the per-function artifact layer: DUG
    regions downstream of changed functions are re-solved from scratch
    while states proven unchanged are preloaded from the store, and the
    fresh per-function facts are harvested back into the store. Results
    are bit-identical either way.

    When *obs* is given it becomes the request's span: the compile and
    every FSAM phase are timed under it (instead of a run-private
    observer), so its ``repro.metrics/1`` snapshot captures the whole
    attempt for shipping back to the dispatcher.

    *on_preanalysis* is handed to :class:`~repro.fsam.FSAM`: a hook
    called with ``(module, andersen)`` right after the pre-analysis
    phase, used by the gateway to stream a progressive Andersen-facts
    frame while the sparse solve is still running.
    """
    kwargs: Dict[str, object] = {}
    if funcstore is not None:
        from repro.service.incremental import incremental_hook
        kwargs["incremental"] = incremental_hook(request, funcstore)
    if on_preanalysis is not None:
        kwargs["on_preanalysis"] = on_preanalysis
    if obs is not None:
        with obs.phase("compile"):
            module = compile_source(request.source, name=request.name)
        kwargs["obs"] = obs
    else:
        module = compile_source(request.source, name=request.name)
    fsam = FSAM(module, request.config, **kwargs)
    result = fsam.run()
    return artifact_from_result(request.name, result)


def run_degraded(request: AnalysisRequest,
                 reason: str = "budget-exhausted") -> AnalysisArtifact:
    """Rung 3: Andersen-only. Deliberately ignores the request budget
    — the pre-analysis is orders of magnitude cheaper than the sparse
    solve, and the ladder must terminate with a result."""
    from repro.andersen import run_andersen

    module = compile_source(request.source, name=request.name)
    andersen = run_andersen(module)
    return artifact_from_andersen(request.name, module, andersen,
                                  reason=reason)


def run_request_inline(request: AnalysisRequest,
                       funcstore=None) -> RequestOutcome:
    """The serial ladder: full pipeline, degrading on budget
    exhaustion. No retry — re-running the same deterministic analysis
    under the same in-process budget exhausts it again.

    When the request profiles (``config.profile``), the whole attempt
    runs under a per-request span Observer whose ``repro.metrics/1``
    snapshot lands on ``outcome.obs_snapshot`` — the same shape a pool
    worker ships back, so batch/serve aggregation is dispatch-agnostic.
    (The shared inline *funcstore* is deliberately not flushed here:
    its counters span the whole batch and are flushed once by the
    dispatcher, not once per request.)"""
    obs = Observer(name=request.request_id or request.name) \
        if request.config.profile else None
    start = time.perf_counter()
    attempts = 1
    attempt_seconds = []
    try:
        artifact = run_full(request, funcstore=funcstore, obs=obs)
        attempt_seconds.append(time.perf_counter() - start)
    except AnalysisTimeout:
        attempt_seconds.append(time.perf_counter() - start)
        attempts += 1
        rung_start = time.perf_counter()
        artifact = run_degraded(request)
        attempt_seconds.append(time.perf_counter() - rung_start)
    return RequestOutcome(
        name=request.name,
        digest=request.digest(),
        artifact=artifact,
        seconds=time.perf_counter() - start,
        attempts=attempts,
        attempt_seconds=attempt_seconds,
        request_id=request.request_id,
        obs_snapshot=obs.to_metrics_dict() if obs is not None else None,
    )


class QueryRunner:
    """Executes demand queries for the batch and serve front ends.

    Three rungs, cheapest first:

    1. **disk hit**: the query artifact store answers straight from
       ``<cache>/query/`` — no compile, no pipeline, zero solver work;
    2. **warm engine**: an already-built demand pipeline for the same
       program digest whose accumulated solved slices cover the query
       (``source == "warm"``, zero iterations);
    3. **cold solve**: build (or reuse) the demand-mode pipeline, slice
       backward from the query, run the delta engine over the sub-DUG.

    Pipelines are kept in a small per-program-digest LRU so a burst of
    queries against the same program compiles it once. Queries do not
    walk the degradation ladder — a demand answer is only useful if it
    is exact, so budget exhaustion propagates as an error instead of
    an Andersen-only approximation.
    """

    def __init__(self, querystore=None, obs=NULL_OBS,
                 max_pipelines: int = 4) -> None:
        self.querystore = querystore
        self.obs = obs
        self.max_pipelines = max_pipelines
        self._pipelines: Dict[str, object] = {}  # digest -> FSAMResult
        self._order: List[str] = []              # LRU, most recent last

    # -- pipeline LRU ------------------------------------------------------

    def _pipeline(self, request: AnalysisRequest, digest: str):
        result = self._pipelines.get(digest)
        if result is not None:
            self._order.remove(digest)
            self._order.append(digest)
            return result
        config_fields = request.config.to_dict()
        config_fields["solver_mode"] = "demand"
        config = FSAMConfig(**config_fields)
        kwargs: Dict[str, object] = {}
        if getattr(self.obs, "enabled", False):
            with self.obs.phase("compile"):
                module = compile_source(request.source, name=request.name)
            kwargs["obs"] = self.obs
        else:
            module = compile_source(request.source, name=request.name)
        result = FSAM(module, config, **kwargs).run()
        self._pipelines[digest] = result
        self._order.append(digest)
        while len(self._order) > self.max_pipelines:
            evicted = self._order.pop(0)
            del self._pipelines[evicted]
        return result

    # -- execution ---------------------------------------------------------

    def run(self, query: QueryRequest) -> Dict[str, object]:
        """Answer one query; returns the response payload dict.

        Raises ``ValueError`` for an unresolvable variable/object and
        ``AnalysisTimeout`` on pipeline budget exhaustion — the caller
        turns either into an error response."""
        request = query.request
        program_digest = request.digest()
        digest = query_digest(program_digest, query.var,
                              line=query.line, obj=query.obj)
        start = time.perf_counter()
        payload: Dict[str, object] = {
            "op": "query",
            "status": "ok",
            "name": request.name,
            "digest": program_digest,
            "query_digest": digest,
            "var": query.var,
            "line": query.line,
            "obj": query.obj,
        }
        doc = self.querystore.get(digest) \
            if self.querystore is not None else None
        if doc is not None:
            # Disk hit: the stored answer is exact (bit-identity is the
            # demand engine's contract), so no solver work runs at all.
            self.obs.count("query.requests", 1)
            payload.update({
                "cache": "hit",
                "pts": list(doc["answer"]["names"]),
                "mask": doc["answer"]["mask"],
                "slice_nodes": doc["slice_nodes"],
                "slice_temps": doc["slice_temps"],
                "slice_fraction": doc["slice_fraction"],
                "iterations": 0,
                "seconds": time.perf_counter() - start,
            })
            self.obs.observe("query.request_seconds",
                             payload["seconds"])
            return payload
        result = self._pipeline(request, program_digest)
        answer = result.query(query.var, line=query.line, obj=query.obj)
        payload.update({
            "cache": "warm" if answer.source == "warm" else "miss",
            "pts": answer.names(),
            "mask": answer.to_dict()["mask"],
            "slice_nodes": answer.slice_nodes,
            "slice_temps": answer.slice_temps,
            "slice_fraction": round(answer.slice_fraction, 6),
            "iterations": answer.iterations,
            "seconds": time.perf_counter() - start,
        })
        if self.querystore is not None:
            engine = result._query_engine
            signature = engine.slice_signature(answer.node_uids,
                                               answer.temp_ids)
            self.querystore.put(
                digest, artifact_from_query(program_digest, signature,
                                            answer))
        self.obs.observe("query.request_seconds", payload["seconds"])
        return payload

    def flush_obs(self, obs) -> None:
        if self.querystore is not None:
            self.querystore.flush_obs(obs)
