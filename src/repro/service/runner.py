"""Executing one analysis request end to end.

The degradation ladder (the batch service's availability contract —
a batch returns *some* result for every request, never an exception):

1. the full FSAM pipeline, under ``config.time_budget`` if set;
2. on budget exhaustion (``AnalysisTimeout``) or a parent-enforced
   wall-clock kill: one retry of the full pipeline (pool mode only —
   in-process budget exhaustion is deterministic, so the inline
   runner skips straight to rung 3);
3. the Andersen-only fallback: compile + pre-analysis, packaged as a
   ``degraded=True`` artifact with flow-insensitive top-level
   points-to sets and no memory states.

:func:`run_request_inline` is the serial building block used by the
batch driver when ``workers <= 1``, by the pool's last-resort
fallback in the parent, and directly by tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend import compile_source
from repro.fsam import FSAM
from repro.fsam.config import AnalysisTimeout
from repro.service.artifacts import (
    AnalysisArtifact, artifact_from_andersen, artifact_from_result,
)
from repro.service.requests import AnalysisRequest


@dataclass
class RequestOutcome:
    """One request's terminal state inside a batch."""

    name: str
    digest: str
    artifact: AnalysisArtifact
    cache: str = "miss"            # "hit" | "miss"
    seconds: float = 0.0           # total, from the first attempt's start
    attempts: int = 1
    #: Wall-clock duration of each individual attempt (including the
    #: final degraded fallback, when one ran). ``seconds`` measures the
    #: whole request from the first spawn and therefore also contains
    #: requeue wait between retries; the per-attempt entries do not.
    attempt_seconds: List[float] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "degraded" if self.artifact.degraded else "ok"


def run_full(request: AnalysisRequest,
             funcstore=None) -> AnalysisArtifact:
    """Rung 1: the whole pipeline. Raises
    :class:`~repro.fsam.config.AnalysisTimeout` on budget exhaustion.

    When *funcstore* (a :class:`repro.service.cache.FuncArtifactStore`)
    is given, the run consults the per-function artifact layer: DUG
    regions downstream of changed functions are re-solved from scratch
    while states proven unchanged are preloaded from the store, and the
    fresh per-function facts are harvested back into the store. Results
    are bit-identical either way.
    """
    module = compile_source(request.source, name=request.name)
    if funcstore is not None:
        from repro.service.incremental import incremental_hook
        fsam = FSAM(module, request.config,
                    incremental=incremental_hook(request, funcstore))
    else:
        fsam = FSAM(module, request.config)
    result = fsam.run()
    return artifact_from_result(request.name, result)


def run_degraded(request: AnalysisRequest,
                 reason: str = "budget-exhausted") -> AnalysisArtifact:
    """Rung 3: Andersen-only. Deliberately ignores the request budget
    — the pre-analysis is orders of magnitude cheaper than the sparse
    solve, and the ladder must terminate with a result."""
    from repro.andersen import run_andersen

    module = compile_source(request.source, name=request.name)
    andersen = run_andersen(module)
    return artifact_from_andersen(request.name, module, andersen,
                                  reason=reason)


def run_request_inline(request: AnalysisRequest,
                       funcstore=None) -> RequestOutcome:
    """The serial ladder: full pipeline, degrading on budget
    exhaustion. No retry — re-running the same deterministic analysis
    under the same in-process budget exhausts it again."""
    start = time.perf_counter()
    attempts = 1
    attempt_seconds = []
    try:
        artifact = run_full(request, funcstore=funcstore)
        attempt_seconds.append(time.perf_counter() - start)
    except AnalysisTimeout:
        attempt_seconds.append(time.perf_counter() - start)
        attempts += 1
        rung_start = time.perf_counter()
        artifact = run_degraded(request)
        attempt_seconds.append(time.perf_counter() - rung_start)
    return RequestOutcome(
        name=request.name,
        digest=request.digest(),
        artifact=artifact,
        seconds=time.perf_counter() - start,
        attempts=attempts,
        attempt_seconds=attempt_seconds,
    )
