"""Function-granular incremental analysis.

The artifact cache (PR 5) is all-or-nothing: a one-line edit misses
the whole-program digest and re-runs the entire pipeline. This module
adds the second digest level — per function — so a warm request whose
program digest misses can still reuse almost all of the previous
fixpoint and seed the delta solver only at the DUG nodes downstream
of what actually changed.

Two-level digest scheme
-----------------------

- **Level 1** (:func:`repro.service.requests.request_digest`): the
  whole program. A hit skips the run entirely (the artifact cache).
- **Level 2** (:func:`repro.service.requests.function_digest`): one
  function's canonical printed IR plus the ``(name, mod-ref
  signature)`` pairs of every routine its calls/forks/joins can
  reach. A hit means nothing that decides the function's *local*
  value flow has changed.

A level-2 hit alone is not enough to reuse states: a function's DUG
region is also wired to the rest of the program (formal-in nodes fed
by every caller, [THREAD-VF] edges admitted by the global MHP/lock
oracles, interference marks, callsite mu/chi object sets from the
global Andersen solution). Each funcartifact therefore also records a
**context signature** over exactly those inputs, computed fresh in
the current run and compared with the stored one; only a function
whose digest *and* context signature both match is *validated*.

Downstream seeding rule
-----------------------

Validation is per function, but reuse is per node: the set ``D`` of
DUG nodes and temps transitively reachable (in the combined
value-flow graph) from any non-validated function's nodes/temps is
recomputed from scratch, and the *frozen* complement ``P`` is
preloaded from the stored fixpoints. ``P`` is predecessor-closed by
construction, and the context signatures make the subsystem over
``P`` isomorphic between runs, so the preloaded states are already
the new fixpoint there; :meth:`~repro.fsam.solver.SparseSolver.
solve_incremental` delivers every frozen state once across the
``P -> D`` boundary and iterates ``D`` to its least fixpoint. The
result is bit-identical to a cold solve.

Invalidation matrix (what re-solves after which edit): see the
"Incremental analysis" section of DESIGN.md.

Safety rails — each falls back to a plain cold solve (never a wrong
answer): tracing on or a non-delta engine (no plan at all); ambiguous
cross-run object keys; a frozen row referencing an object the new run
does not have; an empty frozen set.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.fsam.solver import IncrementalReuse
from repro.ir.instructions import AddrOf, Call, Fork, Join
from repro.ir.module import function_temps
from repro.ir.printer import print_function
from repro.ir.values import Function, MemObject, Temp, object_key
from repro.memssa.dug import (
    CallChiNode, CallMuNode, DUGNode, FormalInNode, FormalOutNode,
    MemPhiNode, StmtNode,
)
from repro.pts import mask_to_hex
from repro.schemas import CODE_VERSION, FUNC_ARTIFACT_SCHEMA
from repro.service.digest import canonical_digest
from repro.service.requests import function_digest

#: An absolute source line embedded in an allocation-site name
#: (``malloc.l42``, ``tid.fork.l17``, ``malloc.l42.f1``).
_LINE_IN_NAME = re.compile(r"\.l(\d+)")

#: A temp reference in printed IR (``%t12``, ``%fn.arg0``,
#: ``%fn::x.phi0``).
_TEMP_IN_TEXT = re.compile(r"%([\w.:]+)")


class IncrementalPlan:
    """What the FSAM incremental hook returns: an optional
    :class:`~repro.fsam.solver.IncrementalReuse` for the solver, the
    run's incremental statistics (JSON-able, lands in the artifact
    summary), and a post-solve harvest that writes the fresh
    per-function fixpoints back to the store."""

    def __init__(self, reuse: Optional[IncrementalReuse],
                 stats: Dict[str, object], harvest) -> None:
        self.reuse = reuse
        self.stats = stats
        self._harvest = harvest

    def harvest(self, solver) -> None:
        self._harvest(solver)


def incremental_hook(request, funcstore):
    """The :class:`~repro.fsam.analysis.FSAM` hook for *request*
    against *funcstore* (a
    :class:`~repro.service.cache.FuncArtifactStore`)."""

    def hook(module, dug, builder, andersen, config):
        return build_plan(module, dug, builder, andersen, config, funcstore)

    return hook


def build_plan(module, dug, builder, andersen, config,
               funcstore) -> Optional[IncrementalPlan]:
    """Consult the per-function store and build the run's plan; None
    when the configuration cannot participate at all (tracing records
    first-introduction provenance, which a preloaded state skips; the
    reference engine has no incremental entry point)."""
    if config.trace or config.solver_engine != "delta":
        return None
    ctx = _FunctionContext(module, dug, builder, andersen, config)
    stats: Dict[str, object] = {
        "functions": len(ctx.fns),
        "func_hits": 0,
        "func_validated": 0,
    }
    if ctx.ambiguous:
        # Two abstract objects share a (kind, name) key: cross-run
        # object identity is undecidable, so neither reuse nor harvest
        # is sound for this program.
        stats["mode"] = "disabled-ambiguous-objects"
        return IncrementalPlan(None, stats, lambda solver: None)

    validated: Dict[str, Dict[str, object]] = {}
    for fn in ctx.fns:
        doc = funcstore.get(ctx.digests[fn.name])
        if doc is None:
            continue
        stats["func_hits"] = int(stats["func_hits"]) + 1
        if doc.get("context_sig") == ctx.context_sigs[fn.name]:
            validated[fn.name] = doc
    stats["func_validated"] = len(validated)

    reuse = None
    if validated:
        reuse = ctx.build_reuse(validated, stats)
    stats["mode"] = "warm" if reuse is not None else "cold"

    def harvest(solver) -> None:
        ctx.harvest(solver, funcstore, skip=set(validated))
        stats["func_stores"] = funcstore.func_stores

    return IncrementalPlan(reuse, stats, harvest)


class _FunctionContext:
    """Per-run derived structures: cross-run object keys, per-function
    node/temp/instruction numbering, digests, and context signatures."""

    def __init__(self, module, dug, builder, andersen, config) -> None:
        self.module = module
        self.dug = dug
        self.builder = builder
        self.andersen = andersen
        self.config = config
        self.universe = andersen.universe
        self.fns: List[Function] = [
            fn for fn in module.functions.values()
            if not fn.is_declaration and fn.blocks]
        # Each function's first source line: the base that turns the
        # absolute lines in allocation-site names into function-local
        # offsets, which survive edits elsewhere in the file.
        self._fn_base_lines: Dict[str, int] = {}
        for fn in self.fns:
            lines = [instr.line for instr in fn.instructions()
                     if instr.line is not None]
            if lines:
                self._fn_base_lines[fn.name] = min(lines)
        self.key_of, self.obj_of_key, self.ambiguous = \
            _object_keys(self.universe, self.stable_key)
        if self.ambiguous:
            return
        self.nodes_by_fn: Dict[str, List[DUGNode]] = dug.nodes_by_function()
        # Cross-run node identity: uid -> (owning fn name, position in
        # that function's creation-order node list).
        self.node_pos: Dict[int, Tuple[str, int]] = {}
        for name, nodes in self.nodes_by_fn.items():
            for i, node in enumerate(nodes):
                self.node_pos[node.uid] = (name, i)
        self.fn_temps: Dict[str, List[Temp]] = {
            fn.name: function_temps(fn) for fn in self.fns}
        self.temp_pos: Dict[int, Tuple[str, int]] = {}
        for name, temps in self.fn_temps.items():
            for i, temp in enumerate(temps):
                self.temp_pos[temp.id] = (name, i)
        # Function-local instruction and block numbering (program
        # order) — block *labels* embed a module-wide counter and are
        # therefore position-sensitive.
        self.instr_pos: Dict[int, int] = {}
        self._block_index: Dict[int, int] = {}
        for fn in self.fns:
            for i, instr in enumerate(fn.instructions()):
                self.instr_pos[instr.id] = i
            for i, block in enumerate(fn.blocks):
                self._block_index[id(block)] = i
        self.digests: Dict[str, str] = {
            fn.name: self._digest(fn) for fn in self.fns}
        self.context_sigs: Dict[str, str] = {
            fn.name: self._context_sig(fn) for fn in self.fns}

    # -- cross-run identity ------------------------------------------------

    def stable_key(self, obj: MemObject) -> str:
        """:func:`~repro.ir.values.object_key` with absolute source
        lines in allocation-site names rewritten relative to the
        owning function's first line. An edit in one function shifts
        every later function's lines wholesale; the function-local
        offset is invariant under that shift, so unchanged functions
        keep their heap/thread-id object identities across runs."""
        name = obj.name
        if _LINE_IN_NAME.search(name):
            owner = obj.alloc_fn
            if owner is None:
                # Thread-id objects carry their fork site instead.
                site = getattr(obj.root(), "fork_site", None)
                if site is not None:
                    owner = site.block.function.name
            base = self._fn_base_lines.get(owner)
            if base is not None:
                # The owner joins the key: absolute lines were unique
                # module-wide, function-local offsets are not.
                name = _LINE_IN_NAME.sub(
                    lambda m: f".l+{int(m.group(1)) - base}@{owner}", name)
        return f"{obj.kind.value}:{name}"

    def _canonical_text(self, fn: Function) -> str:
        """:func:`~repro.ir.printer.print_function` output with every
        position-sensitive token rewritten positionally: block labels
        by block index, temp names by first-sight order, allocation
        lines relative to the function's first line. Two functions
        with identical bodies at different file offsets (or lowering
        orders) render identically — this is the text the level-2
        digest hashes."""
        text = print_function(fn)
        labels = sorted(
            ((block.label, f"\x00B{i}\x00")
             for i, block in enumerate(fn.blocks)),
            key=lambda pair: -len(pair[0]))  # longest first: a label
        for label, repl in labels:           # may prefix another
            text = text.replace(label, repl)
        temp_index = {temp.name: i
                      for i, temp in enumerate(self.fn_temps[fn.name])}

        def temp_repl(match: "re.Match[str]") -> str:
            # Greedy match may span a repr suffix (``%t2.f1`` from a
            # gep): retry at each dot boundary from the right.
            name = match.group(1)
            while name:
                idx = temp_index.get(name)
                if idx is not None:
                    return f"%\x00T{idx}\x00{match.group(1)[len(name):]}"
                dot = name.rfind(".")
                if dot < 0:
                    break
                name = name[:dot]
            return match.group(0)

        text = _TEMP_IN_TEXT.sub(temp_repl, text)
        base = self._fn_base_lines.get(fn.name, 0)
        return _LINE_IN_NAME.sub(
            lambda m: f".l\x00{int(m.group(1)) - base}\x00", text)

    # -- level-2 digests ---------------------------------------------------

    def _digest(self, fn: Function) -> str:
        callees: Dict[str, Function] = {}
        modref = self.builder.modref
        callgraph = self.andersen.callgraph
        for instr in fn.instructions():
            if isinstance(instr, (Call, Fork)):
                for callee in callgraph.callees(instr):
                    callees[callee.name] = callee
            elif isinstance(instr, Join):
                for routine in modref.joined_routines.get(instr.id, ()):
                    callees[routine.name] = routine
        pairs = sorted(
            [name, modref.signature(callee, key=self.stable_key)]
            for name, callee in callees.items())
        return function_digest(self._canonical_text(fn), pairs, self.config)

    # -- context signatures ------------------------------------------------

    def _okey(self, obj: MemObject) -> str:
        # The singleton flag participates because it decides strong
        # vs. weak store updates; the bare key only pins identity.
        return f"{self.stable_key(obj)}|s{1 if obj.is_singleton else 0}"

    def _context_sig(self, fn: Function) -> str:
        """Everything outside the function's own body that
        parametrizes its DUG region's transfer functions and wiring:
        the memSSA skeleton (which pseudo-nodes exist and for which
        objects), every in-edge with its cross-run source identity and
        thread-awareness, callsite/load/store mu-chi object sets,
        interference marks, fork thread-id objects, and the sources of
        interprocedural copies into its temps."""
        dug = self.dug
        builder = self.builder
        okey = self._okey
        instr_pos = self.instr_pos
        node_pos = self.node_pos
        thread_keys = dug._thread_edge_keys

        node_section: List[object] = []
        for node in self.nodes_by_fn.get(fn.name, []):
            if isinstance(node, StmtNode):
                instr = node.instr
                desc: List[object] = ["s", instr_pos[instr.id]]
                if isinstance(instr, AddrOf):
                    desc.append(okey(instr.obj))
            elif isinstance(node, MemPhiNode):
                desc = ["p", self._block_index[id(node.block)],
                        okey(node.obj)]
            elif isinstance(node, FormalInNode):
                desc = ["fi", okey(node.obj)]
            elif isinstance(node, FormalOutNode):
                desc = ["fo", okey(node.obj)]
            elif isinstance(node, CallMuNode):
                desc = ["mu", instr_pos[node.site.id], okey(node.obj)]
            else:
                assert isinstance(node, CallChiNode)
                desc = ["chi", instr_pos[node.site.id], okey(node.obj)]
                if isinstance(node.site, Fork):
                    tid = self.andersen.thread_objects.get(node.site.id)
                    desc.append(None if tid is None else okey(tid))
            edges: List[object] = []
            for obj, srcs in dug.mem_in(node).items():
                for src in srcs:
                    src_fn, src_idx = node_pos[src.uid]
                    thread = 1 if (src.uid, obj.id, node.uid) in thread_keys \
                        else 0
                    edges.append([src_fn, src_idx, okey(obj), thread])
            edges.sort()
            interfering = sorted(
                okey(obj) for obj in dug.interfering.get(node.uid, ()))
            node_section.append([desc, edges, interfering])

        anno_section: List[object] = []
        for instr in fn.instructions():
            mus = builder.mus.get(instr.id)
            chis = builder.chis.get(instr.id)
            if mus or chis:
                anno_section.append([
                    instr_pos[instr.id],
                    sorted(okey(obj) for obj in (mus or ())),
                    sorted(okey(obj) for obj in (chis or ())),
                ])

        copy_section: List[object] = []
        for i, temp in enumerate(self.fn_temps[fn.name]):
            into = dug.copies_into(temp)
            if not into:
                continue
            sources: List[object] = []
            for src, _dst in into:
                if isinstance(src, Temp):
                    src_fn, src_idx = self.temp_pos.get(src.id, ("?", -1))
                    sources.append(["t", src_fn, src_idx])
                elif isinstance(src, Function):
                    sources.append(["f", src.name])
                else:
                    sources.append(["c", repr(src)])
            sources.sort()
            copy_section.append([i, sources])

        return canonical_digest([node_section, anno_section, copy_section])

    # -- warm-path assembly ------------------------------------------------

    def build_reuse(self, validated: Dict[str, Dict[str, object]],
                    stats: Dict[str, object]
                    ) -> Optional[IncrementalReuse]:
        """The frozen share of the previous fixpoint, translated into
        this run's ids; None when nothing can be frozen or any
        translation step fails (cold solve)."""
        dug = self.dug
        changed_nodes: List[DUGNode] = []
        changed_temp_ids: List[int] = []
        for fn in self.fns:
            if fn.name in validated:
                continue
            changed_nodes.extend(self.nodes_by_fn.get(fn.name, ()))
            changed_temp_ids.extend(
                temp.id for temp in self.fn_temps[fn.name])
        down_nodes, down_temps = dug.downstream_closure(
            changed_nodes, changed_temp_ids)
        frozen_uids = {node.uid for node in dug.nodes} - down_nodes
        stats["downstream_nodes"] = len(down_nodes)
        stats["frozen_nodes"] = len(frozen_uids)
        if not frozen_uids:
            return None

        universe = self.universe
        obj_of_key = self.obj_of_key
        top_masks: Dict[int, int] = {}
        mem_masks: Dict[Tuple[int, int], int] = {}
        for name, doc in validated.items():
            local_keys = doc["objects"]
            bit_of_local: List[Optional[int]] = []
            obj_of_local: List[Optional[MemObject]] = []
            for key in local_keys:  # type: ignore[union-attr]
                obj = obj_of_key.get(key)
                obj_of_local.append(obj)
                bit_of_local.append(
                    None if obj is None else universe.index_of_id(obj.id))
            temps = self.fn_temps[name]
            for lidx_str, hexmask in doc["top"].items():  # type: ignore[union-attr]
                lidx = int(lidx_str)
                if lidx >= len(temps):
                    return None  # structure drift: bail to cold
                temp = temps[lidx]
                if temp.id in down_temps:
                    continue  # downstream: recomputed from scratch
                mask = _translate_mask(hexmask, bit_of_local)
                if mask is None:
                    return None  # frozen state names a vanished object
                top_masks[temp.id] = mask
            nodes = self.nodes_by_fn.get(name, [])
            for row_key, hexmask in doc["mem"].items():  # type: ignore[union-attr]
                nidx_str, oidx_str = row_key.split(":")
                nidx, oidx = int(nidx_str), int(oidx_str)
                if nidx >= len(nodes) or oidx >= len(obj_of_local):
                    return None
                node = nodes[nidx]
                if node.uid not in frozen_uids:
                    continue
                row_obj = obj_of_local[oidx]
                if row_obj is None:
                    return None
                mask = _translate_mask(hexmask, bit_of_local)
                if mask is None:
                    return None
                mem_masks[(node.uid, row_obj.id)] = mask
        stats["frozen_top_states"] = len(top_masks)
        stats["frozen_mem_rows"] = len(mem_masks)
        return IncrementalReuse(frozen_uids, top_masks, mem_masks)

    # -- harvest -----------------------------------------------------------

    def harvest(self, solver, funcstore, skip: Set[str]) -> None:
        """Write every function's share of the fresh fixpoint back to
        the store (functions in *skip* were validated this run, so
        their stored docs already equal what a rebuild would produce
        — the fixpoint is bit-identical)."""
        universe = solver.universe
        key_of, _obj_of_key, ambiguous = _object_keys(
            universe, self.stable_key)
        if ambiguous:
            return
        key_by_bit: List[str] = [
            key_of[universe.object_at(i).id] for i in range(len(universe))]
        # Read the *finalized* views, not the raw delta-path books:
        # under the vectorized kernel, interior merge states are
        # materialized straight into ``solver.mem`` and never appear
        # in ``_mem_masks``.
        top_masks = solver._top_masks
        rows_by_uid: Dict[int, Dict[int, int]] = {}
        for (uid, obj_id), state in solver.mem.items():
            if state.mask:
                rows_by_uid.setdefault(uid, {})[obj_id] = state.mask
        for fn in self.fns:
            if fn.name in skip:
                continue
            doc = self._build_doc(fn, top_masks, rows_by_uid,
                                  key_of, key_by_bit)
            funcstore.put(self.digests[fn.name], doc)

    def _build_doc(self, fn: Function, top_masks: Dict[int, int],
                   rows_by_uid: Dict[int, Dict[int, int]],
                   key_of: Dict[int, str],
                   key_by_bit: List[str]) -> Dict[str, object]:
        top_entries: List[Tuple[int, int]] = []
        for lidx, temp in enumerate(self.fn_temps[fn.name]):
            mask = top_masks.get(temp.id, 0)
            if mask:
                top_entries.append((lidx, mask))
        mem_entries: List[Tuple[int, str, int]] = []
        for nidx, node in enumerate(self.nodes_by_fn.get(fn.name, [])):
            rows = rows_by_uid.get(node.uid)
            if not rows:
                continue
            for obj_id, mask in rows.items():
                row_key = key_of.get(obj_id)
                if row_key is None:
                    continue  # row object never entered any points-to set
                mem_entries.append((nidx, row_key, mask))

        # Doc-local object table: sorted for determinism (two runs at
        # the same fixpoint emit byte-identical docs regardless of the
        # order states were reached in).
        needed: Set[str] = set()
        for _lidx, mask in top_entries:
            _collect_keys(mask, key_by_bit, needed)
        for _nidx, row_key, mask in mem_entries:
            needed.add(row_key)
            _collect_keys(mask, key_by_bit, needed)
        table = sorted(needed)
        index_of_key = {key: i for i, key in enumerate(table)}

        def localize(mask: int) -> str:
            out = 0
            bit = 0
            while mask:
                if mask & 1:
                    out |= 1 << index_of_key[key_by_bit[bit]]
                mask >>= 1
                bit += 1
            return mask_to_hex(out)

        return {
            "schema": FUNC_ARTIFACT_SCHEMA,
            "code_version": CODE_VERSION,
            "function": fn.name,
            "digest": self.digests[fn.name],
            "context_sig": self.context_sigs[fn.name],
            "objects": table,
            "top": {str(lidx): localize(mask)
                    for lidx, mask in top_entries},
            "mem": {f"{nidx}:{index_of_key[row_key]}": localize(mask)
                    for nidx, row_key, mask in sorted(
                        mem_entries, key=lambda e: (e[0], e[1]))},
        }


def _object_keys(universe, keyfunc=object_key
                 ) -> Tuple[Dict[int, str], Dict[str, MemObject], bool]:
    """``obj.id -> key`` and ``key -> obj`` over the universe, plus an
    ambiguity flag: True when two distinct objects share a key (the
    incremental layer must then stand down entirely)."""
    key_of: Dict[int, str] = {}
    obj_of_key: Dict[str, MemObject] = {}
    for i in range(len(universe)):
        obj = universe.object_at(i)
        key = keyfunc(obj)
        if key in obj_of_key:
            return {}, {}, True
        obj_of_key[key] = obj
        key_of[obj.id] = key
    return key_of, obj_of_key, False


def _translate_mask(hexmask: str, bit_of_local: List[Optional[int]]
                    ) -> Optional[int]:
    """A doc-local hex mask re-expressed over the current universe, or
    None when it names an object this run does not have."""
    mask = int(hexmask, 16)
    out = 0
    lidx = 0
    while mask:
        if mask & 1:
            if lidx >= len(bit_of_local):
                return None
            bit = bit_of_local[lidx]
            if bit is None:
                return None
            out |= 1 << bit
        mask >>= 1
        lidx += 1
    return out


def _collect_keys(mask: int, key_by_bit: List[str],
                  into: Set[str]) -> None:
    bit = 0
    while mask:
        if mask & 1:
            into.add(key_by_bit[bit])
        mask >>= 1
        bit += 1
