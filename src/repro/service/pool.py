"""Multiprocessing worker pool for batch analysis.

Each attempt of each request runs in its own worker process, which
gives the parent a hard lever no in-process budget can provide: a
wall-clock ``timeout`` after which the worker is killed outright —
a runaway solver, a pathological program, even a C-level hang all
land back in the parent's scheduling loop.

Outcome handling per attempt:

- ``ok``                — the worker's artifact is the result;
- ``budget-exhausted``  — the worker's cooperative budget fired
  (deterministic, so no retry): degrade to Andersen-only in the
  parent;
- wall-clock timeout or worker crash — retry once in a fresh
  process, then degrade. The batch as a whole never fails.

Requests are sharded across at most ``workers`` concurrent processes;
results come back in request order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import Dict, List, Optional

from repro.fsam.config import AnalysisTimeout
from repro.obs import Observer
from repro.service.requests import AnalysisRequest
from repro.service.runner import (
    RequestOutcome, run_degraded, run_full,
)

#: Seconds between scheduling-loop sweeps of the in-flight set.
_POLL_INTERVAL = 0.02


def _pool_worker(payload: Dict[str, object], conn,
                 funcstore_root: Optional[str] = None) -> None:
    """Worker-process entry: run one attempt, send one message.

    The attempt runs under its own span :class:`Observer` (named after
    the request id) whose ``repro.metrics/1`` snapshot rides back on
    the result message as ``"obs"`` — worker-side phase times and
    counters used to die with the process; now the parent merges them
    into the batch/serve rollup. With profiling off, a counters-only
    observer still ships so the per-worker
    :class:`~repro.service.cache.FuncArtifactStore` tallies survive.
    """
    try:
        request = AnalysisRequest.from_payload(payload)
        funcstore = None
        if funcstore_root is not None:
            from repro.service.cache import FuncArtifactStore
            funcstore = FuncArtifactStore(funcstore_root)
        obs = Observer(name=request.request_id or request.name) \
            if request.config.profile else None
        try:
            artifact = run_full(request, funcstore=funcstore, obs=obs)
            message: Dict[str, object] = {"status": "ok",
                                          "artifact": artifact.to_dict()}
        except AnalysisTimeout:
            message = {"status": "budget-exhausted"}
        if funcstore is not None and obs is None:
            obs = Observer(name=request.request_id or request.name,
                           track_memory=False)
        if funcstore is not None:
            funcstore.flush_obs(obs)
        if obs is not None:
            message["obs"] = obs.to_metrics_dict()
        conn.send(message)
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send({"status": "error",
                       "message": f"{type(exc).__name__}: {exc}"})
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


class _Attempt:
    """One in-flight worker process."""

    __slots__ = ("index", "request", "attempt", "proc", "conn", "deadline",
                 "started_at")

    def __init__(self, index: int, request: AnalysisRequest, attempt: int,
                 proc, conn, deadline: Optional[float],
                 started_at: float) -> None:
        self.index = index
        self.request = request
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started_at = started_at


class WorkerPool:
    """Shards analysis requests across N worker processes."""

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 start_method: Optional[str] = None,
                 retries: int = 1,
                 funcstore_root: Optional[str] = None) -> None:
        self.workers = max(1, workers if workers is not None
                           else (os.cpu_count() or 2))
        self.timeout = timeout      # default per-attempt wall clock
        self.retries = retries
        self.funcstore_root = funcstore_root
        self._ctx = multiprocessing.get_context(start_method)
        # Tallies for flush_obs.
        self.dispatched = 0
        self.retried = 0
        self.timeouts = 0
        self.worker_errors = 0
        self.budget_exhaustions = 0
        self.degraded = 0

    # -- scheduling --------------------------------------------------------

    def run(self, requests: List[AnalysisRequest]) -> List[RequestOutcome]:
        """Run every request to a terminal outcome, in request order."""
        results: List[Optional[RequestOutcome]] = [None] * len(requests)
        started: Dict[int, float] = {}
        durations: Dict[int, List[float]] = {}
        # Accumulated slot wait per request index: enqueue -> spawn for
        # the first attempt, requeue -> respawn for retries. Reported
        # as RequestOutcome.queue_seconds, separate from attempt work.
        queue_waits: Dict[int, float] = {}
        enqueue_ts = time.perf_counter()
        pending = deque((i, request, 1, enqueue_ts)
                        for i, request in enumerate(requests))
        inflight: List[_Attempt] = []

        try:
            while pending or inflight:
                while pending and len(inflight) < self.workers:
                    inflight.append(self._spawn(*pending.popleft(), started,
                                                queue_waits))
                progressed = False
                for attempt in list(inflight):
                    outcome = self._sweep(attempt, pending, started,
                                          durations, queue_waits)
                    if outcome is not _PENDING:
                        inflight.remove(attempt)
                        progressed = True
                        if outcome is not None:
                            results[attempt.index] = outcome
                if not progressed:
                    time.sleep(_POLL_INTERVAL)
        finally:
            for attempt in inflight:  # pragma: no cover - error cleanup
                attempt.proc.terminate()
                attempt.proc.join()
                attempt.conn.close()

        assert all(outcome is not None for outcome in results)
        return results  # type: ignore[return-value]

    def _spawn(self, index: int, request: AnalysisRequest, attempt: int,
               enqueued_at: float, started: Dict[int, float],
               queue_waits: Optional[Dict[int, float]] = None) -> _Attempt:
        if queue_waits is not None:
            queue_waits[index] = queue_waits.get(index, 0.0) \
                + (time.perf_counter() - enqueued_at)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(request.to_payload(), child_conn, self.funcstore_root),
            daemon=True)
        proc.start()
        child_conn.close()  # the parent reads; the worker holds the writer
        now = time.perf_counter()
        started.setdefault(index, now)
        timeout = request.timeout if request.timeout is not None else self.timeout
        deadline = (now + timeout) if timeout is not None else None
        self.dispatched += 1
        return _Attempt(index, request, attempt, proc, parent_conn, deadline,
                        started_at=now)

    @staticmethod
    def _record(attempt: _Attempt,
                durations: Dict[int, List[float]]) -> None:
        durations.setdefault(attempt.index, []).append(
            time.perf_counter() - attempt.started_at)

    def _sweep(self, attempt: _Attempt, pending: deque,
               started: Dict[int, float],
               durations: Dict[int, List[float]],
               queue_waits: Optional[Dict[int, float]] = None):
        """Advance one in-flight attempt. Returns ``_PENDING`` while
        still running, a :class:`RequestOutcome` when terminal, or
        None when the request was requeued for a retry."""
        message = None
        if attempt.conn.poll(0):
            try:
                message = attempt.conn.recv()
            except (EOFError, OSError):
                message = None  # died mid-send: treat as a crash below
            attempt.proc.join()
        elif attempt.deadline is not None \
                and time.perf_counter() > attempt.deadline:
            self.timeouts += 1
            attempt.proc.terminate()
            attempt.proc.join()
            attempt.conn.close()
            self._record(attempt, durations)
            return self._failed(attempt, pending, started, durations,
                                reason="wall-clock-timeout",
                                queue_waits=queue_waits)
        elif not attempt.proc.is_alive():
            attempt.proc.join()
            # The worker may have sent its result and exited between
            # the poll above and the liveness check; its message is
            # still sitting in the pipe. Drain once more before
            # concluding the process crashed.
            if attempt.conn.poll(0):
                try:
                    message = attempt.conn.recv()
                except (EOFError, OSError):
                    message = None
        else:
            return _PENDING

        attempt.conn.close()
        self._record(attempt, durations)
        if message is None:
            # Exited without a message: hard crash (OOM kill, signal).
            self.worker_errors += 1
            return self._failed(attempt, pending, started, durations,
                                reason="worker-crash",
                                queue_waits=queue_waits)
        status = message.get("status")
        if status == "ok":
            from repro.service.artifacts import AnalysisArtifact
            artifact = AnalysisArtifact.from_dict(message["artifact"])
            return RequestOutcome(
                name=attempt.request.name,
                digest=attempt.request.digest(),
                artifact=artifact,
                seconds=time.perf_counter() - started[attempt.index],
                attempts=attempt.attempt,
                attempt_seconds=list(durations.get(attempt.index, [])),
                queue_seconds=(queue_waits or {}).get(attempt.index, 0.0),
                request_id=attempt.request.request_id,
                obs_snapshot=message.get("obs"),
            )
        if status == "budget-exhausted":
            # Deterministic: the same budget exhausts again, so skip
            # the retry rung and degrade now.
            self.budget_exhaustions += 1
            return self._degrade(attempt, started, durations,
                                 reason="budget-exhausted",
                                 queue_waits=queue_waits,
                                 snapshot=message.get("obs"))
        self.worker_errors += 1
        return self._failed(attempt, pending, started, durations,
                            reason=message.get("message", "worker-error"),
                            queue_waits=queue_waits)

    def _failed(self, attempt: _Attempt, pending: deque,
                started: Dict[int, float],
                durations: Dict[int, List[float]], reason: str,
                queue_waits: Optional[Dict[int, float]] = None):
        if attempt.attempt <= self.retries:
            self.retried += 1
            pending.append((attempt.index, attempt.request,
                            attempt.attempt + 1, time.perf_counter()))
            return None
        return self._degrade(attempt, started, durations, reason=reason,
                             queue_waits=queue_waits)

    def _degrade(self, attempt: _Attempt, started: Dict[int, float],
                 durations: Dict[int, List[float]],
                 reason: str,
                 queue_waits: Optional[Dict[int, float]] = None,
                 snapshot: Optional[Dict[str, object]] = None
                 ) -> RequestOutcome:
        self.degraded += 1
        rung_start = time.perf_counter()
        artifact = run_degraded(attempt.request, reason=reason)
        durations.setdefault(attempt.index, []).append(
            time.perf_counter() - rung_start)
        return RequestOutcome(
            name=attempt.request.name,
            digest=attempt.request.digest(),
            artifact=artifact,
            seconds=time.perf_counter() - started[attempt.index],
            attempts=attempt.attempt,
            attempt_seconds=list(durations.get(attempt.index, [])),
            queue_seconds=(queue_waits or {}).get(attempt.index, 0.0),
            request_id=attempt.request.request_id,
            obs_snapshot=snapshot,
        )

    # -- statistics --------------------------------------------------------

    def flush_obs(self, obs: Observer) -> None:
        obs.count("pool.dispatched", self.dispatched)
        obs.count("pool.retries", self.retried)
        obs.count("pool.timeouts", self.timeouts)
        obs.count("pool.worker_errors", self.worker_errors)
        obs.count("pool.budget_exhaustions", self.budget_exhaustions)
        obs.count("pool.degraded", self.degraded)


#: Sentinel: the attempt is still running.
_PENDING = object()
