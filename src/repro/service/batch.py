"""The batch driver: dedup -> cache -> pool -> one ``repro.batch/1``
report.

Execution plan for a batch of requests:

1. **dedup** — requests are grouped by content digest; each distinct
   (source, config, code version) runs at most once, and followers
   share the representative's artifact (``cache: "dedup"``);
2. **cache** — distinct digests are looked up in the
   :class:`~repro.service.cache.ArtifactCache`; hits skip the solver
   entirely (a warm batch performs zero sparse-solver iterations,
   asserted by the differential suite);
3. **dispatch** — misses go to the
   :class:`~repro.service.pool.WorkerPool` (or the inline runner when
   ``workers <= 1``), each walking the degradation ladder;
4. **report** — per-request rows plus aggregated counters and phase
   times, as one ``repro.batch/1`` document. Per-request
   ``repro.obs/1`` profiles ride along inside the artifacts; their
   phase trees are summed into ``aggregate.phase_seconds``.

Telemetry: every dispatched request carries a span id (``rNNNN`` in
request order) and runs under its own Observer — in the worker process
for pooled dispatch, in-process for inline — whose ``repro.metrics/1``
snapshot comes back on the outcome. The driver merges miss snapshots
into the batch observer (cross-request ``phase.*`` latency
distributions, worker-side counters such as the per-worker
FuncArtifactStore tallies), records ``pool.run_seconds`` /
``pool.queue_seconds`` / ``request.seconds`` histograms, and embeds
the final rollup in the report as ``metrics``. Hits and dedup
followers contribute nothing to histograms or phase times, so a fully
warm batch's rollup is byte-identical across reruns (asserted by the
telemetry suite). Requests slower than ``slow_ms`` capture their
per-phase profile as ``exemplars``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fsam.config import FSAMConfig
from repro.obs import Observer
from repro.schemas import BATCH_SCHEMA
from repro.service.cache import (
    ArtifactCache, FuncArtifactStore, QueryArtifactStore,
)
from repro.service.pool import WorkerPool
from repro.service.requests import AnalysisRequest, QueryRequest
from repro.service.runner import (
    QueryRunner, RequestOutcome, run_request_inline,
)


@dataclass
class BatchReport:
    """The aggregated result of one batch run."""

    name: str
    workers: int
    outcomes: List[RequestOutcome]
    total_seconds: float
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: The batch's final ``repro.metrics/1`` rollup: counters, gauges,
    #: merged worker histograms, and cross-request phase seconds.
    metrics: Optional[Dict[str, object]] = None
    #: Per-phase profiles auto-captured for requests over ``slow_ms``.
    exemplars: List[Dict[str, object]] = field(default_factory=list)
    #: Demand-query response payloads (``op: query`` spec entries),
    #: answered after the analysis dispatch by the demand engine.
    queries: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        rows = []
        for outcome in self.outcomes:
            row: Dict[str, object] = {
                "name": outcome.name,
                "digest": outcome.digest,
                "status": outcome.status,
                "cache": outcome.cache,
                "seconds": round(outcome.seconds, 6),
                # Per-attempt wall clocks, one per degradation rung.
                # ``seconds`` measures from first spawn and includes
                # killed attempts plus requeue wait; these do not.
                "attempt_seconds": [round(s, 6)
                                    for s in outcome.attempt_seconds],
                # Slot wait (enqueue -> spawn + requeue -> respawn),
                # disjoint from the attempt entries.
                "queue_seconds": round(outcome.queue_seconds, 6),
                "attempts": outcome.attempts,
                "summary": dict(outcome.artifact.summary),
            }
            if outcome.request_id is not None:
                row["request_id"] = outcome.request_id
            if outcome.artifact.degraded:
                row["degraded_reason"] = outcome.artifact.degraded_reason
            rows.append(row)
        return {
            "schema": BATCH_SCHEMA,
            "name": self.name,
            "workers": self.workers,
            "total_seconds": round(self.total_seconds, 6),
            "requests": rows,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "aggregate": {
                "phase_seconds": self._aggregate_phase_seconds(),
                # Work performed by THIS batch only: cache hits and
                # dedup followers contribute nothing, so a fully warm
                # batch reports zero iterations (the differential
                # suite and the CI batch-smoke job assert exactly
                # that). The cold run's count survives inside each
                # artifact's summary.
                "solver_iterations": sum(
                    o.artifact.solver_iterations()
                    for o in self.outcomes if o.cache == "miss"),
                "degraded": sum(
                    1 for o in self.outcomes if o.artifact.degraded),
            },
            "metrics": self.metrics,
            "exemplars": list(self.exemplars),
            "queries": list(self.queries),
        }

    def _aggregate_phase_seconds(self) -> Dict[str, float]:
        """Sum each top-level pipeline phase across the per-request
        profiles that workers shipped back inside their artifacts.
        Cache hits are skipped — a served artifact carries the *cold*
        run's profile, not work done by this batch."""
        total: Dict[str, float] = {}
        for outcome in self.outcomes:
            if outcome.cache != "miss":
                continue
            profile = outcome.artifact.profile
            if not profile:
                continue
            for phase in profile.get("phases", []):
                name = str(phase.get("name"))
                total[name] = total.get(name, 0.0) \
                    + float(phase.get("seconds", 0.0))
        return {name: round(seconds, 6)
                for name, seconds in sorted(total.items())}


def run_batch(requests: List[AnalysisRequest],
              workers: int = 1,
              cache: Optional[ArtifactCache] = None,
              timeout: Optional[float] = None,
              obs: Optional[Observer] = None,
              name: str = "batch",
              pool: Optional[WorkerPool] = None,
              incremental: bool = True,
              slow_ms: Optional[float] = None,
              queries: Optional[List[QueryRequest]] = None) -> BatchReport:
    """Run *requests* to completion and aggregate the report.

    ``workers <= 1`` runs inline (no subprocesses) — the serial
    reference arm of the differential suite and the no-multiprocessing
    escape hatch. *pool* injects a preconfigured
    :class:`~repro.service.pool.WorkerPool` (tests use this to force a
    start method); otherwise one is built from ``workers``/``timeout``.

    With *incremental* (the default) and a cache configured, a
    per-function artifact store lives next to the whole-program
    entries under ``<cache>/func``: requests whose program digest
    misses can still reuse the previous fixpoint for unchanged
    functions (see :mod:`repro.service.incremental`).

    *slow_ms* enables exemplar capture: every cache-miss request whose
    wall clock exceeds the threshold lands in ``report.exemplars``
    with its per-phase breakdown and dominant phase.

    *queries* (``op: query`` spec entries, parsed by
    :func:`repro.service.requests.requests_from_spec`) run after the
    analysis dispatch through a shared
    :class:`~repro.service.runner.QueryRunner`: warm answers come from
    ``<cache>/query`` without building a pipeline; the batch never
    fails on a bad query — the error rides in the query's row.
    """
    observer = obs if obs is not None else Observer(name=name)
    funcstore = FuncArtifactStore(cache.root) \
        if incremental and cache is not None else None
    start = time.perf_counter()

    # 0. span ids, deterministic in request order (rerunning the same
    # batch assigns the same ids — part of the warm-rollup
    # byte-identity guarantee).
    for i, request in enumerate(requests):
        request.request_id = f"r{i:04d}"

    # 1. dedup by content digest.
    digest_of: List[str] = [request.digest() for request in requests]
    representative: Dict[str, int] = {}
    for i, digest in enumerate(digest_of):
        representative.setdefault(digest, i)
    unique_indices = sorted(representative.values())

    # 2. cache lookups for distinct digests.
    resolved: Dict[str, RequestOutcome] = {}
    to_run: List[AnalysisRequest] = []
    for i in unique_indices:
        digest = digest_of[i]
        if cache is not None:
            lookup_start = time.perf_counter()
            artifact = cache.get(digest)
            if artifact is not None:
                resolved[digest] = RequestOutcome(
                    name=requests[i].name, digest=digest,
                    artifact=artifact, cache="hit",
                    seconds=time.perf_counter() - lookup_start,
                    attempts=0, request_id=requests[i].request_id)
                continue
        to_run.append(requests[i])

    # 3. dispatch misses.
    if to_run:
        if workers > 1:
            worker_pool = pool if pool is not None else \
                WorkerPool(workers=workers, timeout=timeout,
                           funcstore_root=str(cache.root)
                           if funcstore is not None else None)
            fresh = worker_pool.run(to_run)
            worker_pool.flush_obs(observer)
        else:
            if timeout is not None:
                # Inline mode has no process to kill; the wall-clock
                # timeout becomes the cooperative budget instead.
                budgeted = []
                for request in to_run:
                    if request.config.time_budget is None:
                        config = FSAMConfig.from_dict(request.config.to_dict())
                        config.time_budget = request.timeout \
                            if request.timeout is not None else timeout
                        request = AnalysisRequest(
                            name=request.name, source=request.source,
                            config=config, timeout=request.timeout,
                            request_id=request.request_id)
                    budgeted.append(request)
                to_run = budgeted
            fresh = [run_request_inline(request, funcstore=funcstore)
                     for request in to_run]
            if funcstore is not None:
                # The inline funcstore is shared across every request
                # in the batch; flush its tallies once (pooled workers
                # flush their own store into the shipped snapshot).
                funcstore.flush_obs(observer)
        for outcome in fresh:
            resolved[outcome.digest] = outcome
            if cache is not None:
                cache.put(outcome.digest, outcome.artifact)

    # 4. fan results back out to every original request.
    outcomes: List[RequestOutcome] = []
    deduped = 0
    for i, request in enumerate(requests):
        digest = digest_of[i]
        base = resolved[digest]
        if i == representative[digest]:
            outcomes.append(base)
        else:
            deduped += 1
            outcomes.append(RequestOutcome(
                name=request.name, digest=digest, artifact=base.artifact,
                cache="dedup", seconds=0.0, attempts=0,
                request_id=request.request_id))

    # 5. demand queries, after the analysis dispatch (a query against
    # a program this batch just analysed still slices fresh — the two
    # cache layers are independent — but its artifact store may already
    # be warm from an earlier batch).
    query_rows: List[Dict[str, object]] = []
    if queries:
        querystore = QueryArtifactStore(cache.root) \
            if cache is not None else None
        queryrunner = QueryRunner(querystore=querystore, obs=observer)
        for i, query in enumerate(queries):
            query.request.request_id = f"q{i:04d}"
            try:
                row = queryrunner.run(query)
            except Exception as exc:  # noqa: BLE001 - reported in-row
                row = {
                    "op": "query", "name": query.request.name,
                    "var": query.var, "line": query.line,
                    "obj": query.obj, "status": "error",
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                }
            row["request_id"] = query.request.request_id
            query_rows.append(row)
        observer.count("batch.queries", len(query_rows))
        errors = sum(1 for row in query_rows if row["status"] == "error")
        if errors:
            observer.count("batch.query_errors", errors)
        queryrunner.flush_obs(observer)

    total_seconds = time.perf_counter() - start

    # Telemetry: merge each miss's span snapshot (worker-side counters
    # + per-phase times -> cross-request phase.* distributions) and
    # record the dispatch histograms. Hits and dedup followers are
    # deliberately excluded — they did no work, and keeping the warm
    # path free of wall-clock samples makes a fully cached batch's
    # rollup byte-identical across reruns.
    for outcome in outcomes:
        if outcome.cache != "miss":
            continue
        if outcome.obs_snapshot is not None:
            observer.merge_metrics(outcome.obs_snapshot)
        for attempt_s in outcome.attempt_seconds:
            observer.observe("pool.run_seconds", attempt_s)
        observer.observe("pool.queue_seconds", outcome.queue_seconds)
        observer.observe("request.seconds", outcome.seconds)

    observer.count("batch.requests", len(requests))
    observer.count("batch.unique_requests", len(unique_indices))
    observer.count("batch.deduped", deduped)
    observer.count("batch.cache_hits",
                   sum(1 for o in outcomes if o.cache == "hit"))
    observer.count("batch.cache_misses",
                   sum(1 for o in outcomes if o.cache == "miss"))
    observer.count("batch.degraded",
                   sum(1 for o in outcomes if o.artifact.degraded))
    # Solver work this batch actually performed — zero on a fully warm
    # batch (the repro.obs-counter form of the cache guarantee).
    observer.count("batch.solver_iterations",
                   sum(o.artifact.solver_iterations()
                       for o in outcomes if o.cache == "miss"))
    if cache is not None:
        cache.flush_obs(observer)
    observer.gauge("batch.workers", workers)
    hits = observer.counter("batch.cache_hits")
    misses = observer.counter("batch.cache_misses")
    if cache is not None and hits + misses:
        observer.gauge("cache.hit_rate", round(hits / (hits + misses), 6))
    func_hits = observer.counter("cache.func_hits")
    func_misses = observer.counter("cache.func_misses")
    if func_hits + func_misses:
        observer.gauge("cache.func_hit_rate",
                       round(func_hits / (func_hits + func_misses), 6))

    # Exemplars: slow misses keep their full per-phase breakdown in
    # the report, so "why was r0003 slow?" survives aggregation.
    exemplars: List[Dict[str, object]] = []
    if slow_ms is not None:
        threshold = slow_ms / 1000.0
        slow = sorted((o for o in outcomes
                       if o.cache == "miss" and o.seconds >= threshold),
                      key=lambda o: o.seconds, reverse=True)
        for outcome in slow[:8]:
            phases = {}
            if outcome.obs_snapshot is not None:
                phases = outcome.obs_snapshot.get("phase_seconds", {})
            top_level = {path: seconds for path, seconds in phases.items()
                         if "/" not in path}
            exemplars.append({
                "name": outcome.name,
                "request_id": outcome.request_id,
                "seconds": round(outcome.seconds, 6),
                "queue_seconds": round(outcome.queue_seconds, 6),
                "dominant_phase": max(top_level, key=top_level.get)
                if top_level else None,
                "phase_seconds": {path: round(float(seconds), 6)
                                  for path, seconds
                                  in sorted(phases.items())},
            })
        observer.count("batch.slow_requests", len(exemplars))

    return BatchReport(
        name=name,
        workers=workers,
        outcomes=outcomes,
        total_seconds=total_seconds,
        counters=dict(observer.counters),
        gauges=dict(observer.gauges),
        metrics=observer.to_metrics_dict(),
        exemplars=exemplars,
        queries=query_rows,
    )


# -- schema -----------------------------------------------------------------


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"invalid batch report: {message}")


def validate_batch_report(doc: object) -> Dict[str, object]:
    """Check *doc* against ``repro.batch/1``; returns it unchanged
    (same contract as the other validators — no jsonschema
    dependency)."""
    _check(isinstance(doc, dict), "top level is not an object")
    assert isinstance(doc, dict)
    _check(doc.get("schema") == BATCH_SCHEMA,
           f"schema is {doc.get('schema')!r}, expected {BATCH_SCHEMA!r}")
    _check(isinstance(doc.get("name"), str), "name is not a string")
    _check(isinstance(doc.get("workers"), int) and doc["workers"] >= 1,
           "workers is not a positive integer")
    _check(isinstance(doc.get("total_seconds"), (int, float))
           and doc["total_seconds"] >= 0,
           "total_seconds missing or negative")
    rows = doc.get("requests")
    _check(isinstance(rows, list), "requests is not a list")
    assert isinstance(rows, list)
    for i, row in enumerate(rows):
        _check(isinstance(row, dict), f"requests[{i}] is not an object")
        assert isinstance(row, dict)
        _check(isinstance(row.get("name"), str),
               f"requests[{i}] name is not a string")
        _check(isinstance(row.get("digest"), str)
               and len(row["digest"]) == 64,
               f"requests[{i}] digest is not a sha256 hex string")
        _check(row.get("status") in ("ok", "degraded"),
               f"requests[{i}] status {row.get('status')!r} invalid")
        _check(row.get("cache") in ("hit", "miss", "dedup"),
               f"requests[{i}] cache {row.get('cache')!r} invalid")
        _check(isinstance(row.get("seconds"), (int, float))
               and row["seconds"] >= 0,
               f"requests[{i}] seconds missing or negative")
        attempt_seconds = row.get("attempt_seconds", [])
        _check(isinstance(attempt_seconds, list)
               and all(isinstance(s, (int, float)) and s >= 0
                       for s in attempt_seconds),
               f"requests[{i}] attempt_seconds is not a list of "
               "non-negative numbers")
        _check(isinstance(row.get("attempts"), int) and row["attempts"] >= 0,
               f"requests[{i}] attempts is not a non-negative integer")
        queue_seconds = row.get("queue_seconds", 0)
        _check(isinstance(queue_seconds, (int, float)) and queue_seconds >= 0,
               f"requests[{i}] queue_seconds is not a non-negative number")
        request_id = row.get("request_id")
        _check(request_id is None or isinstance(request_id, str),
               f"requests[{i}] request_id is not a string")
        _check(isinstance(row.get("summary"), dict),
               f"requests[{i}] summary is not an object")
    counters = doc.get("counters")
    _check(isinstance(counters, dict), "counters is not an object")
    assert isinstance(counters, dict)
    for key, value in counters.items():
        _check(isinstance(key, str) and isinstance(value, int) and value >= 0,
               f"counter {key!r} is not a non-negative integer")
    aggregate = doc.get("aggregate")
    _check(isinstance(aggregate, dict), "aggregate is not an object")
    assert isinstance(aggregate, dict)
    _check(isinstance(aggregate.get("phase_seconds"), dict),
           "aggregate.phase_seconds is not an object")
    _check(isinstance(aggregate.get("solver_iterations"), int),
           "aggregate.solver_iterations is not an integer")
    metrics = doc.get("metrics")
    if metrics is not None:
        from repro.obs import validate_metrics
        try:
            validate_metrics(metrics)
        except ValueError as exc:
            _check(False, f"embedded metrics rollup invalid: {exc}")
    exemplars = doc.get("exemplars", [])
    _check(isinstance(exemplars, list), "exemplars is not a list")
    assert isinstance(exemplars, list)
    for i, exemplar in enumerate(exemplars):
        _check(isinstance(exemplar, dict)
               and isinstance(exemplar.get("name"), str)
               and isinstance(exemplar.get("seconds"), (int, float))
               and isinstance(exemplar.get("phase_seconds"), dict),
               f"exemplars[{i}] is not a slow-request record")
    # Absent on pre-query reports — missing means "no queries ran".
    query_rows = doc.get("queries", [])
    _check(isinstance(query_rows, list), "queries is not a list")
    assert isinstance(query_rows, list)
    for i, row in enumerate(query_rows):
        _check(isinstance(row, dict)
               and isinstance(row.get("name"), str)
               and isinstance(row.get("var"), str)
               and row.get("status") in ("ok", "error"),
               f"queries[{i}] is not a query record")
        assert isinstance(row, dict)
        if row["status"] == "ok":
            _check(row.get("cache") in ("hit", "warm", "miss"),
                   f"queries[{i}] cache {row.get('cache')!r} invalid")
            _check(isinstance(row.get("pts"), list),
                   f"queries[{i}] pts is not a list")
            _check(isinstance(row.get("iterations"), int)
                   and row["iterations"] >= 0,
                   f"queries[{i}] iterations is not a non-negative "
                   "integer")
        else:
            _check(isinstance(row.get("error"), dict),
                   f"queries[{i}] error record missing")
    return doc


def render_batch_report(doc: Dict[str, object]) -> str:
    """Human-readable batch report (delegates to the harness renderer
    so ``repro batch`` and harness consumers share one formatter)."""
    from repro.harness.export import render_batch_report as _render
    return _render(doc)
