"""``repro serve``: a long-lived stdin/JSONL request loop.

One JSON object per input line, one JSON response per output line —
the simplest possible analysis-as-a-service wire protocol, pipeable
from any client::

    {"workload": "word_count"}
    {"id": 7, "file": "examples/fig1a.mc", "timeout": 30}
    {"source": "int main() { return 0; }", "name": "tiny"}

Request entries use the same forms as the batch spec (see
:mod:`repro.service.requests`), plus an optional ``id`` echoed back
verbatim so clients can correlate out-of-order pipelines. An entry
tagged ``{"op": "query", "var": "p", ...}`` is a *demand query*: it
answers what one variable (or, with ``"obj": true``, one abstract
object) may point to by solving only the backward DUG slice that can
reach it — served from the ``<cache>/query/`` artifact store when
warm (see :class:`repro.service.runner.QueryRunner`). The loop
ends at EOF. Responses carry the request digest, cache disposition,
degradation status, and the artifact summary; malformed lines produce
a structured error record — ``{"status": "error", "error": {"type":
..., "message": ...}}`` with the ``id`` still echoed — instead of
killing the loop, and a response that itself fails to serialize is
downgraded to the same record rather than tearing down the server.

Requests are executed through the same cache + pool machinery as
``repro batch``: warm requests are served from the artifact cache
without running any analysis, cold ones run in a worker process under
the per-request wall-clock timeout (inline when ``workers <= 1``).

Telemetry: each request gets a serial span id (``sNNNN``) and runs
under its own Observer; cache-miss snapshots merge into the loop's
*obs*, building cross-request ``phase.*`` histograms plus
``pool.run_seconds`` / ``pool.queue_seconds`` distributions. With
*metrics_stream* set, the loop emits the cumulative ``repro.metrics/1``
snapshot as one JSONL line at least *metrics_interval* seconds apart
(0 = after every request) and once more at EOF — the live feed
``repro serve --metrics-interval`` exposes.
"""

from __future__ import annotations

import json
import signal
import time
from typing import Dict, Optional, TextIO, Tuple

from repro.gateway.protocol import (
    DEFAULT_MAX_JSON_DEPTH, DEFAULT_MAX_REQUEST_BYTES, RequestTooDeep,
    RequestTooLarge, json_depth,
)
from repro.obs import NULL_OBS, Observer
from repro.service.cache import (
    ArtifactCache, FuncArtifactStore, QueryArtifactStore,
)
from repro.service.pool import WorkerPool
from repro.service.requests import query_from_entry, request_from_entry
from repro.service.runner import (
    QueryRunner, RequestOutcome, run_request_inline,
)


def _response(outcome: RequestOutcome, request_id) -> Dict[str, object]:
    response: Dict[str, object] = {
        "name": outcome.name,
        "digest": outcome.digest,
        "status": outcome.status,
        "cache": outcome.cache,
        "seconds": round(outcome.seconds, 6),
        "queue_seconds": round(outcome.queue_seconds, 6),
        "attempts": outcome.attempts,
        "summary": dict(outcome.artifact.summary),
    }
    if outcome.request_id is not None:
        response["span"] = outcome.request_id
    if outcome.artifact.degraded:
        response["degraded_reason"] = outcome.artifact.degraded_reason
    if request_id is not None:
        response["id"] = request_id
    return response


def _error_response(exc: BaseException, request_id) -> Dict[str, object]:
    response: Dict[str, object] = {
        "status": "error",
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def _emit(response: Dict[str, object], out_stream: TextIO,
          request_id, obs: Observer) -> bool:
    """Write one response line; returns False if the response had to
    be downgraded to an error record because it would not serialize."""
    try:
        text = json.dumps(response, sort_keys=True)
        ok = True
    except (TypeError, ValueError) as exc:
        obs.count("serve.errors")
        text = json.dumps(_error_response(exc, request_id), sort_keys=True)
        ok = False
    out_stream.write(text + "\n")
    out_stream.flush()
    return ok


class _ShutdownInterrupt(Exception):
    """Raised by the signal handler only while the loop is blocked in
    a read — never mid-request, so in-flight work always drains."""


class ShutdownFlag:
    """Cooperative SIGINT/SIGTERM shutdown for :func:`serve_loop`.

    The handler sets :attr:`requested`; if the loop is blocked waiting
    for the next request line it is interrupted immediately, otherwise
    the current request finishes and the loop exits before reading
    another.  Either way the loop flushes its final metrics snapshot
    and returns normally (the CLI then exits 0).
    """

    def __init__(self) -> None:
        self.requested = False
        self.reading = False

    def trigger(self, signum=None, frame=None) -> None:
        self.requested = True
        if self.reading:
            raise _ShutdownInterrupt()

    def install(self) -> dict:
        """Route SIGINT and SIGTERM to :meth:`trigger` (main thread
        only; tests drive :meth:`trigger` directly instead).  Returns
        the previous dispositions for :meth:`restore` — a caller that
        leaves the handlers behind poisons every process forked later
        in the same interpreter (``Process.terminate`` then merely
        sets this flag in the child instead of killing it)."""
        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, self.trigger)
        return previous

    @staticmethod
    def restore(previous: dict) -> None:
        """Reinstate the dispositions :meth:`install` replaced."""
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _read_request_line(in_stream: TextIO, limit: Optional[int]
                       ) -> Tuple[Optional[str], bool]:
    """One request line, reading at most ``limit`` characters before
    deciding the line is oversized.  Returns ``(text, oversized)``;
    text None means EOF.  An oversized line is drained (in bounded
    chunks) up to its newline so the loop can keep serving, without
    the whole hostile payload ever being held in memory."""
    if limit is None:
        line = in_stream.readline()
        return (line if line else None), False
    line = in_stream.readline(limit + 1)
    if not line:
        return None, False
    if len(line) <= limit or line.endswith("\n"):
        return line, False
    while True:  # drain the rest of the oversized line
        chunk = in_stream.readline(1 << 16)
        if not chunk or chunk.endswith("\n"):
            return line[:80], True


def _emit_metrics(obs: Observer, metrics_stream: Optional[TextIO]) -> None:
    """Write one cumulative ``repro.metrics/1`` snapshot line."""
    if metrics_stream is None:
        return
    metrics_stream.write(json.dumps(obs.to_metrics_dict(),
                                    sort_keys=True) + "\n")
    metrics_stream.flush()


def serve_loop(in_stream: TextIO, out_stream: TextIO,
               workers: int = 1,
               cache: Optional[ArtifactCache] = None,
               timeout: Optional[float] = None,
               base_dir: str = ".",
               obs: Observer = NULL_OBS,
               incremental: bool = True,
               metrics_interval: Optional[float] = None,
               metrics_stream: Optional[TextIO] = None,
               max_request_bytes: Optional[int] = DEFAULT_MAX_REQUEST_BYTES,
               max_json_depth: Optional[int] = DEFAULT_MAX_JSON_DEPTH,
               shutdown: Optional[ShutdownFlag] = None) -> int:
    """Serve requests from *in_stream* until EOF; returns the number
    of successfully served (non-error) responses.

    Input hardening: request lines over *max_request_bytes* and JSON
    nested deeper than *max_json_depth* produce structured
    ``RequestTooLarge`` / ``RequestTooDeep`` error records — the line
    is refused by a linear pre-scan before ``json.loads`` ever runs.

    With a *shutdown* :class:`ShutdownFlag` (the CLI installs one on
    SIGINT/SIGTERM), the loop drains the in-flight request, flushes
    the final metrics snapshot, and returns normally.

    With *incremental* (the default) and a cache, program-digest
    misses still reuse per-function fixpoints from ``<cache>/func``
    (see :mod:`repro.service.incremental`).

    With *metrics_stream*, cumulative ``repro.metrics/1`` snapshots go
    out as JSONL: one line whenever at least *metrics_interval* seconds
    (default 0: every request) have passed since the last, plus a final
    line at EOF after the pool/cache/funcstore tallies are flushed.
    Counters in the stream are cumulative and therefore monotonic
    (checked by :func:`repro.obs.validate_metrics_stream`)."""
    if metrics_stream is not None and not obs.enabled:
        # A metrics stream without a live observer would emit empty
        # snapshots; upgrade to a real (memory-tracking-free) one.
        obs = Observer(name="serve", track_memory=False)
    funcstore = FuncArtifactStore(cache.root) \
        if incremental and cache is not None else None
    querystore = QueryArtifactStore(cache.root) if cache is not None else None
    queryrunner: Optional[QueryRunner] = None
    pool = WorkerPool(workers=workers, timeout=timeout,
                      funcstore_root=str(cache.root)
                      if funcstore is not None else None) \
        if workers > 1 else None
    served = 0
    serial = 0
    interval = metrics_interval if metrics_interval is not None else 0.0
    last_emit = time.monotonic()
    while True:
        if shutdown is not None and shutdown.requested:
            break
        try:
            if shutdown is not None:
                shutdown.reading = True
            try:
                line, oversized = _read_request_line(in_stream,
                                                     max_request_bytes)
            finally:
                if shutdown is not None:
                    shutdown.reading = False
        except _ShutdownInterrupt:
            break
        if line is None:
            break
        line = line.strip()
        if not line and not oversized:
            continue
        request_id = None
        error = False
        try:
            if oversized:
                raise RequestTooLarge(
                    f"request line exceeds {max_request_bytes} bytes "
                    f"(starts {line!r}); raise --max-request-bytes to "
                    "accept it")
            if max_json_depth is not None:
                depth = json_depth(line)
                if depth > max_json_depth:
                    raise RequestTooDeep(
                        f"request JSON nests {depth} levels deep "
                        f"(limit {max_json_depth})")
            entry = json.loads(line)
            if isinstance(entry, dict):
                request_id = entry.pop("id", None)
            if isinstance(entry, dict) and entry.get("op") == "query":
                # Demand query: answered from the query artifact store,
                # a warm demand pipeline, or a backward-slice solve —
                # always inline (the pipeline LRU lives in-process).
                query = query_from_entry(entry, base_dir=base_dir)
                query.request.request_id = f"s{serial:04d}"
                serial += 1
                if queryrunner is None:
                    queryrunner = QueryRunner(querystore=querystore,
                                              obs=obs)
                response = queryrunner.run(query)
                response["span"] = query.request.request_id
                if request_id is not None:
                    response["id"] = request_id
                obs.count("serve.requests")
                if response["cache"] == "hit":
                    obs.count("serve.cache_hits")
                if _emit(response, out_stream, request_id, obs):
                    served += 1
                if metrics_stream is not None \
                        and time.monotonic() - last_emit >= interval:
                    _emit_metrics(obs, metrics_stream)
                    last_emit = time.monotonic()
                continue
            request = request_from_entry(entry, base_dir=base_dir)
            request.request_id = f"s{serial:04d}"
            serial += 1
            if timeout is not None and request.timeout is None:
                request.timeout = timeout
            digest = request.digest()
            artifact = cache.get(digest) if cache is not None else None
            if artifact is not None:
                outcome = RequestOutcome(
                    name=request.name, digest=digest, artifact=artifact,
                    cache="hit", seconds=0.0, attempts=0,
                    request_id=request.request_id)
            elif pool is not None:
                outcome = pool.run([request])[0]
            else:
                outcome = run_request_inline(request, funcstore=funcstore)
            if cache is not None and outcome.cache == "miss":
                cache.put(outcome.digest, outcome.artifact)
            response = _response(outcome, request_id)
            obs.count("serve.requests")
            if outcome.cache == "hit":
                obs.count("serve.cache_hits")
            if outcome.cache == "miss":
                # The request's span: worker-side (or inline) counters
                # and phase times merge into the loop observer; hits
                # stay out of the latency histograms — they did no
                # analysis work.
                if outcome.obs_snapshot is not None:
                    obs.merge_metrics(outcome.obs_snapshot)
                for attempt_s in outcome.attempt_seconds:
                    obs.observe("pool.run_seconds", attempt_s)
                obs.observe("pool.queue_seconds", outcome.queue_seconds)
                obs.observe("request.seconds", outcome.seconds)
            if outcome.artifact.degraded:
                obs.count("serve.degraded")
        except Exception as exc:  # noqa: BLE001 - reported on the wire
            response = _error_response(exc, request_id)
            error = True
            obs.count("serve.errors")
        if _emit(response, out_stream, request_id, obs) and not error:
            served += 1
        if metrics_stream is not None \
                and time.monotonic() - last_emit >= interval:
            _emit_metrics(obs, metrics_stream)
            last_emit = time.monotonic()
    if pool is not None:
        pool.flush_obs(obs)
    if funcstore is not None and pool is None:
        # Inline dispatch shares one funcstore across the whole loop;
        # pooled workers flush their own store into the shipped span.
        funcstore.flush_obs(obs)
    if querystore is not None and queryrunner is not None:
        querystore.flush_obs(obs)
    if cache is not None:
        cache.flush_obs(obs)
    if cache is not None:
        hits = obs.counter("serve.cache_hits")
        total = obs.counter("serve.requests")
        if total:
            obs.gauge("cache.hit_rate", round(hits / total, 6))
    _emit_metrics(obs, metrics_stream)
    return served
