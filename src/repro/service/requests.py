"""Analysis requests, their content-addressed digests, and the batch
spec format.

A batch spec (``repro batch <spec.json>``) is one JSON object::

    {
      "workers": 4,                // optional, CLI flag overrides
      "cache": ".repro-cache",     // optional cache directory
      "timeout": 60,               // optional per-request wall clock
      "requests": [
        {"workload": "word_count", "scale": 1},
        {"file": "examples/fig1a.mc"},
        {"name": "inline", "source": "int main() { return 0; }",
         "config": {"interleaving": false}, "timeout": 5}
      ]
    }

Each request entry names its program exactly one way: a registered
``workload`` (with optional ``scale``), a MiniC ``file`` path
(relative to the spec's directory), or inline ``source`` text.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fsam.config import FSAMConfig
from repro.schemas import CODE_VERSION


def request_digest(source: str, config: FSAMConfig,
                   code_version: str = CODE_VERSION) -> str:
    """The cache key: SHA-256 over (program source, the fixpoint-
    determining config fields, code version). Name, timeouts, and
    observability toggles deliberately do not participate — they
    change how a run is executed or reported, never what it computes.
    """
    blob = json.dumps({
        "source": source,
        "config": config.cache_key_dict(),
        "code_version": code_version,
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def function_digest(fn_text: str, callee_summaries: List[List[str]],
                    config: FSAMConfig,
                    code_version: str = CODE_VERSION) -> str:
    """The second digest level: one function's per-function cache key.

    SHA-256 over the function's canonical printed IR, the sorted
    ``[callee name, mod-ref signature]`` pairs of every routine its
    calls/forks/joins can reach (per the Andersen call graph), and the
    same config/code-version fields as :func:`request_digest`. A hit
    means nothing that can change this function's local value flow —
    its own body or any callee's memory side effects — has moved.
    """
    blob = json.dumps({
        "function": fn_text,
        "callees": callee_summaries,
        "config": config.cache_key_dict(),
        "code_version": code_version,
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class AnalysisRequest:
    """One unit of batch work: a named MiniC source plus its config.

    ``timeout`` is the *parent-enforced* per-attempt wall-clock limit
    (the worker process is killed past it); ``config.time_budget`` is
    the cooperative in-process budget (the solver raises
    ``AnalysisTimeout`` past it). Either exhaustion walks the same
    degradation ladder.
    """

    name: str
    source: str
    config: FSAMConfig = field(default_factory=FSAMConfig)
    timeout: Optional[float] = None
    #: Span identifier assigned by the dispatcher (batch: ``rNNNN`` in
    #: request order, serve: ``sNNNN`` in arrival order). Names the
    #: worker-side Observer so its telemetry snapshot can be tied back
    #: to the request; like ``name``/``timeout``, it never enters the
    #: content digest.
    request_id: Optional[str] = None

    def digest(self) -> str:
        return request_digest(self.source, self.config)

    # -- wire form (crosses process boundaries under any start method) --

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "source": self.source,
            "config": self.config.to_dict(),
            "timeout": self.timeout,
            "request_id": self.request_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AnalysisRequest":
        return cls(
            name=payload["name"],                              # type: ignore[arg-type]
            source=payload["source"],                          # type: ignore[arg-type]
            config=FSAMConfig.from_dict(payload["config"]),    # type: ignore[arg-type]
            timeout=payload.get("timeout"),                    # type: ignore[arg-type]
            request_id=payload.get("request_id"),              # type: ignore[arg-type]
        )


def request_from_entry(entry: Dict[str, object],
                       base_dir: str = ".") -> AnalysisRequest:
    """One spec/serve request entry -> :class:`AnalysisRequest` (see
    the module docstring for the entry forms)."""
    if not isinstance(entry, dict):
        raise ValueError(f"request entry is not an object: {entry!r}")
    program_keys = [key for key in ("workload", "file", "source")
                    if key in entry]
    if len(program_keys) != 1:
        raise ValueError(
            "request entry must name its program exactly one way "
            f"(workload | file | source), got {program_keys or 'none'}")
    config = FSAMConfig.from_dict(entry.get("config", {}))  # type: ignore[arg-type]
    timeout = entry.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ValueError(f"timeout is not a number: {timeout!r}")
    if "workload" in entry:
        from repro.workloads import get_workload
        workload = get_workload(str(entry["workload"]))
        scale = int(entry.get("scale", 0))  # type: ignore[arg-type]
        name = str(entry.get("name", workload.name))
        source = workload.source(scale)
    elif "file" in entry:
        path = os.path.join(base_dir, str(entry["file"]))
        with open(path) as handle:
            source = handle.read()
        name = str(entry.get("name", entry["file"]))
    else:
        source = str(entry["source"])
        if "name" not in entry:
            raise ValueError("inline-source request entries need a name")
        name = str(entry["name"])
    return AnalysisRequest(name=name, source=source, config=config,
                           timeout=timeout)  # type: ignore[arg-type]


def requests_from_spec(spec: Dict[str, object], base_dir: str = "."
                       ) -> Tuple[List[AnalysisRequest], Dict[str, object]]:
    """Parse a batch spec document. Returns ``(requests, options)``
    where options holds the spec-level ``workers`` / ``cache`` /
    ``timeout`` settings (CLI flags override them)."""
    if not isinstance(spec, dict):
        raise ValueError("batch spec is not a JSON object")
    entries = spec.get("requests")
    if not isinstance(entries, list) or not entries:
        raise ValueError("batch spec needs a non-empty 'requests' list")
    requests = [request_from_entry(entry, base_dir=base_dir)
                for entry in entries]
    options = {key: spec[key] for key in ("workers", "cache", "timeout")
               if key in spec}
    return requests, options
