"""Analysis requests, their content-addressed digests, and the batch
spec format.

A batch spec (``repro batch <spec.json>``) is one JSON object::

    {
      "workers": 4,                // optional, CLI flag overrides
      "cache": ".repro-cache",     // optional cache directory
      "timeout": 60,               // optional per-request wall clock
      "requests": [
        {"workload": "word_count", "scale": 1},
        {"file": "examples/fig1a.mc"},
        {"name": "inline", "source": "int main() { return 0; }",
         "config": {"interleaving": false}, "timeout": 5}
      ]
    }

Each request entry names its program exactly one way: a registered
``workload`` (with optional ``scale``), a MiniC ``file`` path
(relative to the spec's directory), or inline ``source`` text.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fsam.config import FSAMConfig
from repro.schemas import CODE_VERSION
from repro.service.digest import canonical_digest


def request_digest(source: str, config: FSAMConfig,
                   code_version: str = CODE_VERSION) -> str:
    """The cache key: SHA-256 over (program source, the fixpoint-
    determining config fields, code version). Name, timeouts, and
    observability toggles deliberately do not participate — they
    change how a run is executed or reported, never what it computes.
    """
    return canonical_digest({
        "source": source,
        "config": config.cache_key_dict(),
        "code_version": code_version,
    })


def function_digest(fn_text: str, callee_summaries: List[List[str]],
                    config: FSAMConfig,
                    code_version: str = CODE_VERSION) -> str:
    """The second digest level: one function's per-function cache key.

    SHA-256 over the function's canonical printed IR, the sorted
    ``[callee name, mod-ref signature]`` pairs of every routine its
    calls/forks/joins can reach (per the Andersen call graph), and the
    same config/code-version fields as :func:`request_digest`. A hit
    means nothing that can change this function's local value flow —
    its own body or any callee's memory side effects — has moved.
    """
    return canonical_digest({
        "function": fn_text,
        "callees": callee_summaries,
        "config": config.cache_key_dict(),
        "code_version": code_version,
    })


@dataclass
class AnalysisRequest:
    """One unit of batch work: a named MiniC source plus its config.

    ``timeout`` is the *parent-enforced* per-attempt wall-clock limit
    (the worker process is killed past it); ``config.time_budget`` is
    the cooperative in-process budget (the solver raises
    ``AnalysisTimeout`` past it). Either exhaustion walks the same
    degradation ladder.
    """

    name: str
    source: str
    config: FSAMConfig = field(default_factory=FSAMConfig)
    timeout: Optional[float] = None
    #: Span identifier assigned by the dispatcher (batch: ``rNNNN`` in
    #: request order, serve: ``sNNNN`` in arrival order). Names the
    #: worker-side Observer so its telemetry snapshot can be tied back
    #: to the request; like ``name``/``timeout``, it never enters the
    #: content digest.
    request_id: Optional[str] = None

    def digest(self) -> str:
        return request_digest(self.source, self.config)

    # -- wire form (crosses process boundaries under any start method) --

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "source": self.source,
            "config": self.config.to_dict(),
            "timeout": self.timeout,
            "request_id": self.request_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AnalysisRequest":
        return cls(
            name=payload["name"],                              # type: ignore[arg-type]
            source=payload["source"],                          # type: ignore[arg-type]
            config=FSAMConfig.from_dict(payload["config"]),    # type: ignore[arg-type]
            timeout=payload.get("timeout"),                    # type: ignore[arg-type]
            request_id=payload.get("request_id"),              # type: ignore[arg-type]
        )


@dataclass
class QueryRequest:
    """One demand query: a program (an ordinary :class:`AnalysisRequest`
    carrying the source + config) plus the queried variable. ``obj``
    flips the answer from "what does *var* point to" to "what may the
    abstract object named *var* contain"."""

    request: AnalysisRequest
    var: str
    line: Optional[int] = None
    obj: bool = False


def query_from_entry(entry: Dict[str, object],
                     base_dir: str = ".") -> QueryRequest:
    """An ``{"op": "query", ...}`` spec/serve entry -> QueryRequest.

    The program half uses the same keys as an analysis entry
    (workload | file | source, config, timeout); the query half is
    ``var`` (required), ``line`` (optional int), and ``obj``
    (optional bool)."""
    if not isinstance(entry, dict):
        raise ValueError(f"query entry is not an object: {entry!r}")
    var = entry.get("var")
    if not isinstance(var, str) or not var:
        raise ValueError("query entries need a non-empty 'var' string")
    line = entry.get("line")
    if line is not None and not isinstance(line, int):
        raise ValueError(f"query line is not an integer: {line!r}")
    obj = entry.get("obj", False)
    if not isinstance(obj, bool):
        raise ValueError(f"query obj is not a boolean: {obj!r}")
    program_entry = {key: value for key, value in entry.items()
                     if key not in ("op", "var", "line", "obj")}
    request = request_from_entry(program_entry, base_dir=base_dir)
    return QueryRequest(request=request, var=var, line=line, obj=obj)


def request_from_entry(entry: Dict[str, object],
                       base_dir: str = ".") -> AnalysisRequest:
    """One spec/serve request entry -> :class:`AnalysisRequest` (see
    the module docstring for the entry forms)."""
    if not isinstance(entry, dict):
        raise ValueError(f"request entry is not an object: {entry!r}")
    program_keys = [key for key in ("workload", "file", "source")
                    if key in entry]
    if len(program_keys) != 1:
        raise ValueError(
            "request entry must name its program exactly one way "
            f"(workload | file | source), got {program_keys or 'none'}")
    config = FSAMConfig.from_dict(entry.get("config", {}))  # type: ignore[arg-type]
    timeout = entry.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ValueError(f"timeout is not a number: {timeout!r}")
    if "workload" in entry:
        from repro.workloads import get_workload
        workload = get_workload(str(entry["workload"]))
        scale = int(entry.get("scale", 0))  # type: ignore[arg-type]
        name = str(entry.get("name", workload.name))
        source = workload.source(scale)
    elif "file" in entry:
        path = os.path.join(base_dir, str(entry["file"]))
        with open(path) as handle:
            source = handle.read()
        name = str(entry.get("name", entry["file"]))
    else:
        source = str(entry["source"])
        if "name" not in entry:
            raise ValueError("inline-source request entries need a name")
        name = str(entry["name"])
    return AnalysisRequest(name=name, source=source, config=config,
                           timeout=timeout)  # type: ignore[arg-type]


def requests_from_spec(spec: Dict[str, object], base_dir: str = "."
                       ) -> Tuple[List[AnalysisRequest], Dict[str, object]]:
    """Parse a batch spec document. Returns ``(requests, options)``
    where options holds the spec-level ``workers`` / ``cache`` /
    ``timeout`` settings (CLI flags override them). Entries tagged
    ``"op": "query"`` are split out as :class:`QueryRequest` objects
    under ``options["queries"]`` — they run after the analysis
    dispatch, against the demand engine."""
    if not isinstance(spec, dict):
        raise ValueError("batch spec is not a JSON object")
    entries = spec.get("requests")
    if not isinstance(entries, list) or not entries:
        raise ValueError("batch spec needs a non-empty 'requests' list")
    requests: List[AnalysisRequest] = []
    queries: List[QueryRequest] = []
    for entry in entries:
        op = entry.get("op", "analyze") if isinstance(entry, dict) else None
        if op == "query":
            queries.append(query_from_entry(entry, base_dir=base_dir))
        elif op == "analyze":
            requests.append(request_from_entry(entry, base_dir=base_dir))
        else:
            raise ValueError(f"unknown request op: {op!r}")
    options = {key: spec[key] for key in ("workers", "cache", "timeout")
               if key in spec}
    if queries:
        options["queries"] = queries
    return requests, options
