"""Canonical content digests for the service layer.

Every cache key in the service stack is the same construction: build
a JSON-able payload describing exactly the inputs that determine the
output, serialise it canonically (sorted keys, no whitespace), and
take the sha256. The construction used to be re-implemented in three
places (:mod:`repro.service.requests` twice, once per digest level,
and the context-signature site in :mod:`repro.service.incremental`);
drifting serialisation settings between them would silently split the
cache namespace. This module is the single implementation.

Digest stability is part of the on-disk cache contract: a digest
change orphans every previously cached artifact. The exact hex values
for fixed payloads are pinned by ``tests/service/test_digest.py`` —
if that test fails, either revert the serialisation change or bump
``CODE_VERSION`` deliberately.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.schemas import CODE_VERSION


def canonical_digest(payload: object) -> str:
    """sha256 over the canonical JSON form of *payload* (sorted keys,
    compact separators). The one serialisation every service digest
    goes through."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def query_digest(program_digest: str, var: str,
                 line: Optional[int] = None, obj: bool = False,
                 code_version: str = CODE_VERSION) -> str:
    """Disk key for one demand-query sub-result.

    Keyed on the *request*, not the slice: the whole point of the
    query cache is answering without building a pipeline, so the key
    must be computable from the wire entry alone. The slice signature
    (which needs the DUG) is recorded inside the artifact instead —
    see the "Demand-driven queries" section of DESIGN.md.
    """
    return canonical_digest({
        "program": program_digest,
        "var": var,
        "line": line,
        "obj": bool(obj),
        "code_version": code_version,
    })
