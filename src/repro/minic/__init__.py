"""MiniC: a small C-with-Pthreads frontend.

The paper analyses LLVM bitcode compiled from multithreaded C. Since
we build everything from scratch, MiniC plays the role of C + clang:
a C subset with structs, pointers, arrays, function pointers, malloc,
and the Pthreads primitives ``fork``/``join``/``lock``/``unlock``
(aliases ``pthread_create`` etc. are accepted). The frontend lowers it
to the partial-SSA IR of :mod:`repro.ir`.
"""

from repro.minic.lexer import Lexer, Token, TokenKind, tokenize
from repro.minic.errors import MiniCError, ParseError, SemanticError
from repro.minic.parser import parse
from repro.minic import ast

__all__ = [
    "Lexer", "Token", "TokenKind", "tokenize",
    "MiniCError", "ParseError", "SemanticError",
    "parse", "ast",
]
