"""MiniC abstract syntax tree.

Plain dataclasses; the parser builds these and the lowering pass in
:mod:`repro.frontend` consumes them. Type syntax is represented
separately from semantic types (:mod:`repro.ir.types`), which the
semantic pass resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# -- type syntax -------------------------------------------------------


@dataclass
class TypeSpec:
    """A parsed type: a base name plus pointer depth.

    ``base`` is ``"int"``, ``"void"``, ``"thread_t"``, ``"mutex_t"``,
    or ``"struct <name>"``.
    """

    base: str
    pointers: int = 0
    line: int = 0

    def with_pointer(self) -> "TypeSpec":
        return TypeSpec(self.base, self.pointers + 1, self.line)

    def __repr__(self) -> str:
        return self.base + "*" * self.pointers


# -- expressions -------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberExpr(Expr):
    value: int = 0


@dataclass
class NullExpr(Expr):
    pass


@dataclass
class NameExpr(Expr):
    name: str = ""


@dataclass
class UnaryExpr(Expr):
    op: str = ""  # '&', '*', '-', '!'
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class MemberExpr(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr = None  # type: ignore[assignment]
    field_name: str = ""
    arrow: bool = False


@dataclass
class IndexExpr(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class CallExpr(Expr):
    callee: Expr = None  # type: ignore[assignment]
    args: List[Expr] = field(default_factory=list)


@dataclass
class MallocExpr(Expr):
    """``malloc(T)`` — a typed allocation for simplicity; each textual
    occurrence is a distinct allocation site."""

    alloc_type: TypeSpec = None  # type: ignore[assignment]


# -- statements --------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    """``T name;`` or ``T name[N];`` with optional initialiser."""

    type_spec: TypeSpec = None  # type: ignore[assignment]
    name: str = ""
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ForkStmt(Stmt):
    """``fork(&handle, routine, arg);`` — pthread_create."""

    handle: Optional[Expr] = None  # the &handle expression (may be null)
    routine: Expr = None  # type: ignore[assignment]
    arg: Optional[Expr] = None


@dataclass
class JoinStmt(Stmt):
    """``join(handle);`` — pthread_join."""

    handle: Expr = None  # type: ignore[assignment]


@dataclass
class LockStmt(Stmt):
    """``lock(&m);`` — pthread_mutex_lock."""

    lock_expr: Expr = None  # type: ignore[assignment]


@dataclass
class UnlockStmt(Stmt):
    lock_expr: Expr = None  # type: ignore[assignment]


@dataclass
class WaitStmt(Stmt):
    """``wait(&cv, &mu);`` — pthread_cond_wait."""

    cond_expr: Expr = None  # type: ignore[assignment]
    mutex_expr: Expr = None  # type: ignore[assignment]


@dataclass
class SignalStmt(Stmt):
    """``signal(&cv);`` / ``broadcast(&cv);``."""

    cond_expr: Expr = None  # type: ignore[assignment]
    broadcast: bool = False


@dataclass
class BarrierInitStmt(Stmt):
    """``barrier_init(&b, n);``."""

    barrier_expr: Expr = None  # type: ignore[assignment]
    count: Expr = None  # type: ignore[assignment]


@dataclass
class BarrierWaitStmt(Stmt):
    """``barrier_wait(&b);``."""

    barrier_expr: Expr = None  # type: ignore[assignment]


# -- top level ---------------------------------------------------------


@dataclass
class ParamDecl:
    """A parameter or struct-field declaration; fields may carry an
    array size (``struct macroblock mbs[16];``)."""

    type_spec: TypeSpec = None  # type: ignore[assignment]
    name: str = ""
    line: int = 0
    array_size: Optional[int] = None


@dataclass
class FunctionDef:
    ret_type: TypeSpec = None  # type: ignore[assignment]
    name: str = ""
    params: List[ParamDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class StructDef:
    name: str = ""
    fields: List[ParamDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class GlobalDecl:
    type_spec: TypeSpec = None  # type: ignore[assignment]
    name: str = ""
    array_size: Optional[int] = None
    line: int = 0
    # C-style constant initialiser: a number, null, &global, or a
    # function name (lowered as a store at the top of main).
    init: Optional[Expr] = None


@dataclass
class Program:
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
