"""MiniC lexer.

A hand-written scanner producing a flat token list. Supports ``//``
and ``/* */`` comments, decimal integer literals, identifiers,
keywords, and the C operator/punctuation subset MiniC uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.minic.errors import LexError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "int", "void", "struct", "if", "else", "while", "for", "return",
    "break", "continue", "null", "thread_t", "mutex_t", "sizeof",
    "cond_t", "barrier_t",
}

# Longest-first so that multi-character operators win over prefixes.
PUNCTUATORS = [
    "->", "&&", "||", "==", "!=", "<=", ">=",
    "+=", "-=", "*=", "/=", "++", "--",
    "{", "}", "(", ")", "[", "]", ";", ",", ".",
    "=", "<", ">", "+", "-", "*", "/", "%", "&", "!", "|", "^",
]


@dataclass
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.col}"


class Lexer:
    """Scans MiniC source text into tokens."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.source) and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated block comment", start_line)
                self._advance(2)
            else:
                return

    def next_token(self) -> Token:
        """Scan and return the next token (EOF at end of input)."""
        self._skip_trivia()
        line, col = self.line, self.col
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, "", line, col)
        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start:self.pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, line, col)
        if ch.isdigit():
            start = self.pos
            while self._peek().isdigit():
                self._advance()
            if self._peek().isalpha():
                raise LexError(f"malformed number near {self.source[start:self.pos+1]!r}", line, col)
            return Token(TokenKind.NUMBER, self.source[start:self.pos], line, col)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def tokens(self) -> List[Token]:
        """The full token stream, ending with one EOF token."""
        result: List[Token] = []
        while True:
            tok = self.next_token()
            result.append(tok)
            if tok.kind is TokenKind.EOF:
                return result


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize *source* fully."""
    return Lexer(source).tokens()
