"""Frontend diagnostics."""

from __future__ import annotations

from typing import Optional


class MiniCError(Exception):
    """Base class for all MiniC frontend errors, carrying a location."""

    def __init__(self, message: str, line: Optional[int] = None, col: Optional[int] = None) -> None:
        self.message = message
        self.line = line
        self.col = col
        location = ""
        if line is not None:
            location = f"line {line}"
            if col is not None:
                location += f", col {col}"
            location = f" ({location})"
        super().__init__(f"{message}{location}")


class LexError(MiniCError):
    """An unrecognised character or malformed token."""


class ParseError(MiniCError):
    """A syntax error."""


class SemanticError(MiniCError):
    """A name-resolution or type error."""
