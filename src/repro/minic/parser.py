"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.minic import ast
from repro.minic.errors import ParseError
from repro.minic.lexer import Token, TokenKind, tokenize

_TYPE_KEYWORDS = {"int", "void", "thread_t", "mutex_t", "cond_t",
                  "barrier_t", "struct"}

# Statement-level Pthreads intrinsics and their accepted spellings.
_FORK_NAMES = {"fork", "pthread_create"}
_JOIN_NAMES = {"join", "pthread_join"}
_LOCK_NAMES = {"lock", "pthread_mutex_lock"}
_UNLOCK_NAMES = {"unlock", "pthread_mutex_unlock"}
_WAIT_NAMES = {"wait", "pthread_cond_wait"}
_SIGNAL_NAMES = {"signal", "pthread_cond_signal"}
_BROADCAST_NAMES = {"broadcast", "pthread_cond_broadcast"}
_BARRIER_INIT_NAMES = {"barrier_init", "pthread_barrier_init"}
_BARRIER_WAIT_NAMES = {"barrier_wait", "pthread_barrier_wait"}


class Parser:
    """Parses a token stream into a :class:`repro.minic.ast.Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _check(self, text: str) -> bool:
        tok = self._peek()
        return tok.kind in (TokenKind.PUNCT, TokenKind.KEYWORD) and tok.text == text

    def _accept(self, text: str) -> Optional[Token]:
        if self._check(text):
            return self._advance()
        return None

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            tok = self._peek()
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line, tok.col)
        return self._advance()

    def _at_type(self) -> bool:
        tok = self._peek()
        return tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS

    # -- top level ------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self._peek().kind is not TokenKind.EOF:
            if self._check("struct") and self._peek(2).text == "{":
                program.structs.append(self._parse_struct_def())
                continue
            spec = self._parse_type_spec()
            name_tok = self._expect_ident()
            if self._check("("):
                program.functions.append(self._parse_function(spec, name_tok))
            else:
                array_size = None
                if self._accept("["):
                    size_tok = self._advance()
                    if size_tok.kind is not TokenKind.NUMBER:
                        raise ParseError("array size must be a number literal", size_tok.line)
                    array_size = int(size_tok.text)
                    self._expect("]")
                init = None
                if self._accept("="):
                    init = self._parse_expr()
                self._expect(";")
                program.globals.append(
                    ast.GlobalDecl(type_spec=spec, name=name_tok.text,
                                   array_size=array_size, line=name_tok.line,
                                   init=init))
        return program

    def _parse_struct_def(self) -> ast.StructDef:
        start = self._expect("struct")
        name = self._expect_ident().text
        self._expect("{")
        fields: List[ast.ParamDecl] = []
        while not self._check("}"):
            spec = self._parse_type_spec()
            fname = self._expect_ident()
            array_size = None
            if self._accept("["):
                size_tok = self._advance()
                if size_tok.kind is not TokenKind.NUMBER:
                    raise ParseError("array size must be a number literal", size_tok.line)
                array_size = int(size_tok.text)
                self._expect("]")
            self._expect(";")
            fields.append(ast.ParamDecl(type_spec=spec, name=fname.text,
                                        line=fname.line, array_size=array_size))
        self._expect("}")
        self._expect(";")
        return ast.StructDef(name=name, fields=fields, line=start.line)

    def _parse_type_spec(self) -> ast.TypeSpec:
        tok = self._peek()
        if not self._at_type():
            raise ParseError(f"expected type, found {tok.text!r}", tok.line, tok.col)
        self._advance()
        base = tok.text
        if base == "struct":
            base = f"struct {self._expect_ident().text}"
        pointers = 0
        while self._accept("*"):
            pointers += 1
        return ast.TypeSpec(base=base, pointers=pointers, line=tok.line)

    def _parse_function(self, ret_spec: ast.TypeSpec, name_tok: Token) -> ast.FunctionDef:
        self._expect("(")
        params: List[ast.ParamDecl] = []
        if not self._check(")"):
            # `void` alone means an empty parameter list.
            if self._check("void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    spec = self._parse_type_spec()
                    pname = self._expect_ident()
                    params.append(ast.ParamDecl(type_spec=spec, name=pname.text, line=pname.line))
                    if not self._accept(","):
                        break
        self._expect(")")
        body = self._parse_block()
        return ast.FunctionDef(ret_type=ret_spec, name=name_tok.text,
                               params=params, body=body, line=name_tok.line)

    # -- statements -----------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect("{")
        stmts: List[ast.Stmt] = []
        while not self._check("}"):
            stmts.append(self._parse_statement())
        self._expect("}")
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if self._check("{"):
            # A bare block: flatten via an if(1)-free representation —
            # MiniC has no block scoping for locals, so inline the body.
            body = self._parse_block()
            return ast.IfStmt(cond=ast.NumberExpr(line=tok.line, value=1),
                              then_body=body, else_body=[], line=tok.line)
        if self._at_type():
            return self._parse_declaration()
        if self._check("if"):
            return self._parse_if()
        if self._check("while"):
            return self._parse_while()
        if self._check("for"):
            return self._parse_for()
        if self._check("return"):
            self._advance()
            value = None if self._check(";") else self._parse_expr()
            self._expect(";")
            return ast.ReturnStmt(value=value, line=tok.line)
        if self._check("break"):
            self._advance()
            self._expect(";")
            return ast.BreakStmt(line=tok.line)
        if self._check("continue"):
            self._advance()
            self._expect(";")
            return ast.ContinueStmt(line=tok.line)
        return self._parse_simple_statement()

    def _parse_declaration(self) -> ast.DeclStmt:
        spec = self._parse_type_spec()
        name_tok = self._expect_ident()
        array_size = None
        if self._accept("["):
            size_tok = self._advance()
            if size_tok.kind is not TokenKind.NUMBER:
                raise ParseError("array size must be a number literal", size_tok.line)
            array_size = int(size_tok.text)
            self._expect("]")
        init = None
        if self._accept("="):
            init = self._parse_expr()
        self._expect(";")
        return ast.DeclStmt(type_spec=spec, name=name_tok.text,
                            array_size=array_size, init=init, line=name_tok.line)

    def _parse_if(self) -> ast.IfStmt:
        tok = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then_body = self._parse_body_or_single()
        else_body: List[ast.Stmt] = []
        if self._accept("else"):
            if self._check("if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body_or_single()
        return ast.IfStmt(cond=cond, then_body=then_body, else_body=else_body, line=tok.line)

    def _parse_while(self) -> ast.WhileStmt:
        tok = self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_body_or_single()
        return ast.WhileStmt(cond=cond, body=body, line=tok.line)

    def _parse_for(self) -> ast.ForStmt:
        tok = self._expect("for")
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            if self._at_type():
                init = self._parse_declaration()  # consumes the ';'
            else:
                init = self._parse_assign_clause()
                self._expect(";")
        else:
            self._expect(";")
        cond = None if self._check(";") else self._parse_expr()
        self._expect(";")
        step = None if self._check(")") else self._parse_assign_clause()
        self._expect(")")
        body = self._parse_body_or_single()
        return ast.ForStmt(init=init, cond=cond, step=step, body=body, line=tok.line)

    def _parse_body_or_single(self) -> List[ast.Stmt]:
        if self._check("{"):
            return self._parse_block()
        return [self._parse_statement()]

    def _parse_assign_clause(self) -> ast.Stmt:
        """An assignment or expression without the trailing semicolon
        (used by for-headers). Compound assignments and ++/-- are
        desugared here: ``x += e`` becomes ``x = x + (e)``."""
        expr = self._parse_expr()
        if self._accept("="):
            value = self._parse_expr()
            return ast.AssignStmt(target=expr, value=value, line=expr.line)
        for op in ("+=", "-=", "*=", "/="):
            if self._accept(op):
                rhs = self._parse_expr()
                value = ast.BinaryExpr(op=op[0], lhs=expr, rhs=rhs, line=expr.line)
                return ast.AssignStmt(target=expr, value=value, line=expr.line)
        if self._accept("++"):
            value = ast.BinaryExpr(op="+", lhs=expr,
                                   rhs=ast.NumberExpr(line=expr.line, value=1),
                                   line=expr.line)
            return ast.AssignStmt(target=expr, value=value, line=expr.line)
        if self._accept("--"):
            value = ast.BinaryExpr(op="-", lhs=expr,
                                   rhs=ast.NumberExpr(line=expr.line, value=1),
                                   line=expr.line)
            return ast.AssignStmt(target=expr, value=value, line=expr.line)
        return ast.ExprStmt(expr=expr, line=expr.line)

    def _parse_simple_statement(self) -> ast.Stmt:
        stmt = self._parse_assign_clause()
        self._expect(";")
        if isinstance(stmt, ast.ExprStmt):
            lowered = self._recognise_intrinsic(stmt.expr)
            if lowered is not None:
                return lowered
        return stmt

    def _recognise_intrinsic(self, expr: ast.Expr) -> Optional[ast.Stmt]:
        """Turn fork/join/lock/unlock calls into their statement forms."""
        if not isinstance(expr, ast.CallExpr) or not isinstance(expr.callee, ast.NameExpr):
            return None
        name = expr.callee.name
        args = expr.args
        line = expr.line
        if name in _FORK_NAMES:
            if name == "pthread_create":
                if len(args) != 4:
                    raise ParseError("pthread_create expects 4 arguments", line)
                handle, routine, arg = args[0], args[2], args[3]
            else:
                if len(args) != 3:
                    raise ParseError("fork expects 3 arguments (&handle, routine, arg)", line)
                handle, routine, arg = args[0], args[1], args[2]
            if isinstance(handle, ast.NullExpr) or (
                    isinstance(handle, ast.NumberExpr) and handle.value == 0):
                handle = None
            if isinstance(arg, ast.NullExpr) or (
                    isinstance(arg, ast.NumberExpr) and arg.value == 0):
                arg = None
            return ast.ForkStmt(handle=handle, routine=routine, arg=arg, line=line)
        if name in _JOIN_NAMES:
            expected = 2 if name == "pthread_join" else 1
            if len(args) != expected:
                raise ParseError(f"{name} expects {expected} argument(s)", line)
            return ast.JoinStmt(handle=args[0], line=line)
        if name in _LOCK_NAMES:
            if len(args) != 1:
                raise ParseError(f"{name} expects 1 argument", line)
            return ast.LockStmt(lock_expr=args[0], line=line)
        if name in _UNLOCK_NAMES:
            if len(args) != 1:
                raise ParseError(f"{name} expects 1 argument", line)
            return ast.UnlockStmt(lock_expr=args[0], line=line)
        if name in _WAIT_NAMES:
            if len(args) != 2:
                raise ParseError(f"{name} expects 2 arguments (&cv, &mutex)", line)
            return ast.WaitStmt(cond_expr=args[0], mutex_expr=args[1], line=line)
        if name in _SIGNAL_NAMES or name in _BROADCAST_NAMES:
            if len(args) != 1:
                raise ParseError(f"{name} expects 1 argument", line)
            return ast.SignalStmt(cond_expr=args[0],
                                  broadcast=name in _BROADCAST_NAMES, line=line)
        if name in _BARRIER_INIT_NAMES:
            # barrier_init(&b, n) or pthread_barrier_init(&b, attr, n).
            if name == "pthread_barrier_init":
                if len(args) != 3:
                    raise ParseError("pthread_barrier_init expects 3 arguments", line)
                barrier, count = args[0], args[2]
            else:
                if len(args) != 2:
                    raise ParseError("barrier_init expects 2 arguments", line)
                barrier, count = args[0], args[1]
            return ast.BarrierInitStmt(barrier_expr=barrier, count=count, line=line)
        if name in _BARRIER_WAIT_NAMES:
            if len(args) != 1:
                raise ParseError(f"{name} expects 1 argument", line)
            return ast.BarrierWaitStmt(barrier_expr=args[0], line=line)
        return None

    # -- expressions ----------------------------------------------------

    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        while any(self._check(op) for op in self._BINARY_LEVELS[level]):
            op_tok = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.BinaryExpr(op=op_tok.text, lhs=lhs, rhs=rhs, line=op_tok.line)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("&", "*", "-", "!"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryExpr(op=tok.text, operand=operand, line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._accept("."):
                fname = self._expect_ident()
                expr = ast.MemberExpr(base=expr, field_name=fname.text, arrow=False, line=fname.line)
            elif self._accept("->"):
                fname = self._expect_ident()
                expr = ast.MemberExpr(base=expr, field_name=fname.text, arrow=True, line=fname.line)
            elif self._check("["):
                open_tok = self._advance()
                index = self._parse_expr()
                self._expect("]")
                expr = ast.IndexExpr(base=expr, index=index, line=open_tok.line)
            elif self._check("("):
                open_tok = self._advance()
                args: List[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(","):
                            break
                self._expect(")")
                if isinstance(expr, ast.NameExpr) and expr.name == "malloc":
                    expr = self._make_malloc(args, open_tok)
                else:
                    expr = ast.CallExpr(callee=expr, args=args, line=open_tok.line)
            else:
                return expr

    def _make_malloc(self, args: List[ast.Expr], tok: Token) -> ast.MallocExpr:
        # malloc's argument parses as a _TypeArg for both `malloc(T)`
        # and `malloc(sizeof(T))`.
        if len(args) != 1 or not isinstance(args[0], _TypeArg):
            raise ParseError(
                "malloc expects a type argument: malloc(T) or malloc(sizeof(T))", tok.line)
        return ast.MallocExpr(alloc_type=args[0].type_spec, line=tok.line)

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return ast.NumberExpr(value=int(tok.text), line=tok.line)
        if self._check("null"):
            self._advance()
            return ast.NullExpr(line=tok.line)
        if self._check("sizeof"):
            self._advance()
            self._expect("(")
            spec = self._parse_type_spec()
            self._expect(")")
            return _TypeArg(type_spec=spec, line=tok.line)
        if self._at_type():
            # A bare type may only appear as malloc's argument.
            spec = self._parse_type_spec()
            return _TypeArg(type_spec=spec, line=tok.line)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.NameExpr(name=tok.text, line=tok.line)
        if self._accept("("):
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


class _TypeArg(ast.Expr):
    """Internal marker: a type used as an argument (malloc/sizeof)."""

    def __init__(self, type_spec: ast.TypeSpec, line: int) -> None:
        super().__init__(line=line)
        self.type_spec = type_spec


def parse(source: str) -> ast.Program:
    """Parse MiniC *source* text into an AST."""
    return Parser(tokenize(source)).parse_program()
