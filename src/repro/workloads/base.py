"""Workload plumbing: the descriptor type and a tiny source writer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List


@dataclass
class Workload:
    """One synthetic benchmark program."""

    name: str
    description: str
    paper_loc: int          # LOC reported in the paper's Table 1
    generate: Callable[[int], str]
    default_scale: int = 1
    suite: str = ""

    def source(self, scale: int = 0) -> str:
        """Generate the MiniC source at *scale* (0 = default)."""
        return self.generate(scale or self.default_scale)


def source_loc(source: str) -> int:
    """Non-blank, non-comment-only line count."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


class SourceWriter:
    """An indentation-aware line accumulator for generators."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def line(self, text: str = "") -> "SourceWriter":
        if text:
            self.lines.append("    " * self.indent + text)
        else:
            self.lines.append("")
        return self

    def open(self, text: str) -> "SourceWriter":
        """Emit ``text {`` and indent."""
        self.line(text + " {")
        self.indent += 1
        return self

    def close(self, suffix: str = "") -> "SourceWriter":
        self.indent -= 1
        self.line("}" + suffix)
        return self

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"
