"""Synthetic multithreaded workloads standing in for the paper's
benchmark suite (Table 1).

Each module in :mod:`repro.workloads.programs` generates MiniC source
reproducing one benchmark's concurrency idiom at a configurable
scale: Phoenix's master-slave map-reduce loops, Parsec's task queues,
pipelines and data-parallel kernels, and the open-source servers'
detached worker threads. Absolute LOC is scaled down (CPython is not
a C++ LLVM pass), but the structural knobs the evaluation turns —
pointer density, synchronisation idiom, sharing patterns — follow the
originals.
"""

from repro.workloads.base import Workload, source_loc
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

__all__ = ["Workload", "WORKLOADS", "get_workload", "workload_names", "source_loc"]
