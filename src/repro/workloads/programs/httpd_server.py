"""httpd_server (open-source): a multithreaded HTTP server.

The master-slave server idiom the paper calls out for interleaving
analysis: an accept loop forks detached connection handlers (never
joined -> multi-forked, alive forever), handlers dispatch through a
function-pointer table to many per-route handlers touching shared
config and statistics under locks.
"""

from __future__ import annotations

from repro.workloads.base import SourceWriter


def generate(scale: int = 1) -> str:
    routes = 24 * scale
    utils = 10 * scale
    w = SourceWriter()
    w.line("// httpd_server: accept loop forking detached handler threads")
    w.open("struct request")
    w.line("int method;")
    w.line("int route;")
    w.line("int *body;")
    w.line("struct request *next;")
    w.close(";")
    w.open("struct server_config")
    w.line("int port;")
    w.line("int max_conns;")
    w.line("int *doc_root;")
    w.close(";")
    w.open("struct stats")
    w.line("int served;")
    w.line("int errors;")
    w.close(";")
    w.line("")
    w.line("struct server_config config;")
    w.line("struct stats global_stats;")
    w.line("mutex_t stats_lock;")
    w.line("mutex_t config_lock;")
    w.line("thread_t worker_slot;")
    w.line("thread_t logger_tid;")
    w.line(f"int handler_table[{routes}];")
    w.line("struct request *request_pool;")
    w.line("mutex_t pool_lock;")
    for r in range(routes):
        w.line(f"struct request *last_req_{r};")
        w.line(f"int *route_stats_{r};")
    w.line("")

    for u in range(utils):
        w.open(f"int parse_header_{u}(struct request *req)")
        w.line("int *b;")
        w.line("b = req->body;")
        w.open("if (b != null)")
        w.line(f"return *b + {u};")
        w.close()
        w.line("return 0;")
        w.close()
        w.line("")

    for r in range(routes):
        w.open(f"int handle_route_{r}(struct request *req)")
        w.line("int code;")
        w.line(f"code = parse_header_{r % utils}(req);")
        w.line("lock(&stats_lock);")
        w.line("global_stats.served = global_stats.served + 1;")
        w.open("if (code < 0)")
        w.line("global_stats.errors = global_stats.errors + 1;")
        w.close()
        w.line("unlock(&stats_lock);")
        w.line(f"req->route = {r};")
        w.line(f"last_req_{r} = req;")
        w.open(f"if (route_stats_{r} != null)")
        w.line(f"*route_stats_{r} = code;")
        w.close()
        w.line("return code;")
        w.close()
        w.line("")

    w.open("struct request *alloc_request(int method)")
    w.line("struct request *req;")
    w.line("lock(&pool_lock);")
    w.line("req = request_pool;")
    w.open("if (req != null)")
    w.line("request_pool = req->next;")
    w.close()
    w.open("else")
    w.line("req = malloc(struct request);")
    w.close()
    w.line("unlock(&pool_lock);")
    w.line("req->method = method;")
    w.line("return req;")
    w.close()
    w.line("")

    w.open("void free_request(struct request *req)")
    w.line("lock(&pool_lock);")
    w.line("req->next = request_pool;")
    w.line("request_pool = req;")
    w.line("unlock(&pool_lock);")
    w.close()
    w.line("")

    w.open("void *connection_worker(void *arg)")
    w.line("struct request *req;")
    w.line("int code; int r;")
    w.line("req = alloc_request(1);")
    w.open(f"for (r = 0; r < {routes}; r = r + 1)")
    dispatch = "    "
    for r in range(routes):
        w.open(f"if (r == {r})")
        w.line(f"code = handle_route_{r}(req);")
        w.close()
    w.close()
    w.line("free_request(req);")
    w.line("return null;")
    w.close()
    w.line("")

    w.open("void *stat_logger(void *arg)")
    w.line("int snapshot;")
    w.open("while (1)")
    w.line("lock(&stats_lock);")
    w.line("snapshot = global_stats.served;")
    w.line("unlock(&stats_lock);")
    w.open("if (snapshot > 1000)")
    w.line("return null;")
    w.close()
    w.close()
    w.line("return null;")
    w.close()
    w.line("")

    w.open("int main()")
    w.line("int conn;")
    w.line("config.port = 8080;")
    w.line("config.doc_root = malloc(int);")
    for r in range(routes):
        w.line(f"route_stats_{r} = malloc(int);")
    w.line("fork(&logger_tid, stat_logger, null);")
    w.line("// detached workers: forked in the accept loop, never joined")
    w.open("for (conn = 0; conn < 64; conn = conn + 1)")
    w.line("fork(&worker_slot, connection_worker, null);")
    w.close()
    w.line("join(logger_tid);")
    w.line("return global_stats.served;")
    w.close()
    return w.text()
