"""word_count (Phoenix-2.0): map-reduce word counting.

The idiom the paper highlights in Figure 11: a fixed pool of slave
threads forked in one loop storing ids into ``tids[i]`` and joined in
a second, symmetric loop. Slaves insert into shared hash buckets
under per-group locks; the master reduces after the join loop.
"""

from __future__ import annotations

from repro.workloads.base import SourceWriter


def generate(scale: int = 1) -> str:
    groups = 6 * scale          # bucket groups, each with own lock + mapper
    chain_ops = 4               # list operations per mapper
    w = SourceWriter()
    w.line("// word_count: Phoenix-style map-reduce, symmetric fork/join loops")
    w.open("struct entry")
    w.line("int count;")
    w.line("int key;")
    w.line("struct entry *next;")
    w.close(";")
    w.line("")
    for g in range(groups):
        w.line(f"struct entry *bucket_{g};")
        w.line(f"mutex_t bucket_lock_{g};")
    w.line("int num_procs;")
    w.line("thread_t tids[8];")
    w.line("int total_count;")
    w.line("struct entry *result_list;")
    w.line("")

    for g in range(groups):
        w.open(f"void insert_entry_{g}(int key)")
        w.line("struct entry *e;")
        w.line("e = malloc(struct entry);")
        w.line("e->count = 1;")
        w.line("e->key = key;")
        w.line(f"lock(&bucket_lock_{g});")
        w.line(f"e->next = bucket_{g};")
        w.line(f"bucket_{g} = e;")
        w.line(f"unlock(&bucket_lock_{g});")
        w.close()
        w.line("")
        w.open(f"int lookup_{g}(int key)")
        w.line("struct entry *cur;")
        w.line(f"lock(&bucket_lock_{g});")
        w.line(f"cur = bucket_{g};")
        w.open("while (cur != null)")
        w.line("if (cur->key == key) { cur->count = cur->count + 1; }")
        w.line("cur = cur->next;")
        w.close()
        w.line(f"unlock(&bucket_lock_{g});")
        w.line("return 0;")
        w.close()
        w.line("")

    w.open("void *wordcount_map(void *arg)")
    w.line("int i;")
    w.open(f"for (i = 0; i < {chain_ops}; i = i + 1)")
    for g in range(groups):
        w.line(f"insert_entry_{g}(i + {g});")
        w.line(f"lookup_{g}(i);")
    w.close()
    w.line("return null;")
    w.close()
    w.line("")

    w.open("void *wordcount_reduce(void *arg)")
    w.line("struct entry *cur;")
    for g in range(groups):
        w.line(f"lock(&bucket_lock_{g});")
        w.line(f"cur = bucket_{g};")
        w.open("while (cur != null)")
        w.line("total_count = total_count + cur->count;")
        w.line("cur = cur->next;")
        w.close()
        w.line(f"unlock(&bucket_lock_{g});")
    w.line("return null;")
    w.close()
    w.line("")

    w.open("int main()")
    w.line("int i;")
    w.line("struct entry *final;")
    w.line("num_procs = 8;")
    w.open("for (i = 0; i < num_procs; i = i + 1)")
    w.line("fork(&tids[i], wordcount_map, null);")
    w.close()
    w.open("for (i = 0; i < num_procs; i = i + 1)")
    w.line("join(tids[i]);")
    w.close()
    w.line("// post-join: master-only reduction (no MHP with slaves)")
    w.line("final = malloc(struct entry);")
    w.line(f"final->next = bucket_0;")
    w.line("result_list = final;")
    w.open("for (i = 0; i < num_procs; i = i + 1)")
    w.line("fork(&tids[i], wordcount_reduce, null);")
    w.close()
    w.open("for (i = 0; i < num_procs; i = i + 1)")
    w.line("join(tids[i]);")
    w.close()
    w.line("return total_count;")
    w.close()
    return w.text()
