"""automount (open-source): autofs mount-point management.

A daemon-ish program with extensive lock usage around shared mount
tables (the paper notes lock analysis is most beneficial here) and a
handful of long-lived service threads joined individually — which
exercises definite (non-loop) joins and happens-before ordering.
"""

from __future__ import annotations

from repro.workloads.base import SourceWriter


def generate(scale: int = 1) -> str:
    tables = 7 * scale
    ops = 5 * scale
    w = SourceWriter()
    w.line("// automount: lock-protected mount tables, individually joined threads")
    w.open("struct mount")
    w.line("int dev;")
    w.line("int flags;")
    w.line("struct mount *next;")
    w.line("struct mount *parent;")
    w.close(";")
    w.open("struct table")
    w.line("struct mount *entries;")
    w.line("int count;")
    w.close(";")
    w.line("")
    for t in range(tables):
        w.line(f"struct table mount_table_{t};")
        w.line(f"mutex_t table_lock_{t};")
    w.line("thread_t expire_thread;")
    w.line("thread_t submount_thread;")
    w.line("thread_t signal_thread;")
    w.line("int shutdown_flag;")
    w.line("mutex_t state_lock;")
    w.line("")

    for t in range(tables):
        w.open(f"struct mount *table_lookup_{t}(int dev)")
        w.line("struct mount *m;")
        w.line(f"lock(&table_lock_{t});")
        w.line(f"m = mount_table_{t}.entries;")
        w.open("while (m != null)")
        w.open("if (m->dev == dev)")
        w.line(f"unlock(&table_lock_{t});")
        w.line("return m;")
        w.close()
        w.line("m = m->next;")
        w.close()
        w.line(f"unlock(&table_lock_{t});")
        w.line("return null;")
        w.close()
        w.line("")
        w.open(f"void table_insert_{t}(int dev)")
        w.line("struct mount *m; struct mount *old;")
        w.line("m = malloc(struct mount);")
        w.line("m->dev = dev;")
        w.line(f"lock(&table_lock_{t});")
        w.line("// transient states within the critical section")
        w.line(f"old = mount_table_{t}.entries;")
        w.line(f"mount_table_{t}.entries = null;")
        w.line("m->next = old;")
        w.line(f"mount_table_{t}.entries = m;")
        w.line(f"old = mount_table_{t}.entries;")
        w.line(f"mount_table_{t}.count = mount_table_{t}.count + 1;")
        w.line(f"unlock(&table_lock_{t});")
        w.close()
        w.line("")

    for o in range(ops):
        w.open(f"int do_umount_{o}(struct mount *m)")
        w.line("struct mount *p;")
        w.line("p = m->parent;")
        w.open("if (p != null)")
        w.line(f"p->flags = {o};")
        w.close()
        w.line("return 0;")
        w.close()
        w.line("")

    w.open("void *expire_proc(void *arg)")
    w.line("struct mount *m;")
    w.line("int round;")
    w.open("for (round = 0; round < 8; round = round + 1)")
    for t in range(tables):
        w.line(f"m = table_lookup_{t}(round);")
        w.open("if (m != null)")
        w.line(f"do_umount_{t % ops}(m);")
        w.close()
    w.close()
    w.line("return null;")
    w.close()
    w.line("")

    w.open("void *submount_proc(void *arg)")
    w.line("int i;")
    w.open(f"for (i = 0; i < {tables}; i = i + 1)")
    for t in range(tables):
        w.line(f"table_insert_{t}(i + {t});")
    w.close()
    w.line("return null;")
    w.close()
    w.line("")

    w.open("void *signal_proc(void *arg)")
    w.line("lock(&state_lock);")
    w.line("shutdown_flag = 1;")
    w.line("unlock(&state_lock);")
    w.line("return null;")
    w.close()
    w.line("")

    w.open("int main()")
    w.line("int done;")
    w.line("fork(&expire_thread, expire_proc, null);")
    w.line("fork(&submount_thread, submount_proc, null);")
    w.line("join(expire_thread);")
    w.line("// after this join, expire_proc cannot race with signal_proc")
    w.line("fork(&signal_thread, signal_proc, null);")
    w.line("join(submount_thread);")
    w.line("join(signal_thread);")
    w.line("lock(&state_lock);")
    w.line("done = shutdown_flag;")
    w.line("unlock(&state_lock);")
    w.line("return done;")
    w.close()
    return w.text()
