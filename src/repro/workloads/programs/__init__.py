"""One generator module per benchmark program (paper Table 1)."""
