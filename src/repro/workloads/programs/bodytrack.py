"""bodytrack (Parsec-3.0): particle-filter body tracking.

Data-parallel worker pool over shared particle arrays with phase
barriers built from fork/join rounds. Dense pointer traffic through
per-particle structs — the paper's biggest FSAM speedup (39x) comes
from exactly this kind of pointer-heavy data-parallel code.
"""

from __future__ import annotations

from repro.workloads.base import SourceWriter


def generate(scale: int = 1) -> str:
    kernels = 10 * scale
    w = SourceWriter()
    w.line("// bodytrack: data-parallel particle filter with fork/join phases")
    w.open("struct vec3")
    w.line("int x;")
    w.line("int y;")
    w.line("int z;")
    w.close(";")
    w.open("struct particle")
    w.line("struct vec3 pos;")
    w.line("struct vec3 vel;")
    w.line("int weight;")
    w.line("struct particle *resampled_from;")
    w.close(";")
    w.open("struct model")
    w.line("struct particle *pool;")
    w.line("int count;")
    w.line("int best;")
    w.close(";")
    w.line("")
    w.line("struct particle particles[256];")
    w.line("struct model tracker;")
    w.line("int weights_sum;")
    w.line("mutex_t weight_lock;")
    w.line("thread_t pool_tids[8];")
    for k in range(kernels):
        w.line(f"int *edge_map_{k};")
        w.line(f"struct vec3 *camera_{k};")
    w.line("")

    w.open("void init_cameras()")
    for k in range(kernels):
        w.line(f"edge_map_{k} = malloc(int);")
        w.line(f"camera_{k} = malloc(struct vec3);")
    w.close()
    w.line("")

    for k in range(kernels):
        w.open(f"int likelihood_{k}(struct particle *p)")
        w.line("struct vec3 *pos; struct vec3 *vel;")
        w.line("struct vec3 *cam;")
        w.line("int e;")
        w.line("pos = &p->pos;")
        w.line("vel = &p->vel;")
        w.line(f"cam = camera_{k};")
        w.line(f"e = pos->x * vel->x + pos->y * vel->y + {k};")
        w.open("if (cam != null)")
        w.line("e = e + cam->x;")
        w.line(f"*edge_map_{k} = e;")
        w.close()
        w.line("return e;")
        w.close()
        w.line("")

    w.open("void *particle_weights(void *arg)")
    w.line("int i; int wsum; int e;")
    w.line("struct particle *p;")
    w.line("wsum = 0;")
    w.open("for (i = 0; i < 256; i = i + 1)")
    w.line("p = &particles[i];")
    for k in range(kernels):
        w.line(f"e = likelihood_{k}(p);")
        w.line("p->weight = p->weight + e;")
    w.line("wsum = wsum + p->weight;")
    w.close()
    w.line("lock(&weight_lock);")
    w.line("weights_sum = weights_sum + wsum;")
    w.line("unlock(&weight_lock);")
    w.line("return null;")
    w.close()
    w.line("")

    w.open("void *particle_resample(void *arg)")
    w.line("int i;")
    w.line("struct particle *p; struct particle *src;")
    w.open("for (i = 0; i < 256; i = i + 1)")
    w.line("p = &particles[i];")
    w.line("src = &particles[i];")
    w.line("p->resampled_from = src;")
    w.line("p->pos.x = src->pos.x;")
    w.line("p->vel.y = src->vel.y;")
    w.close()
    w.line("return null;")
    w.close()
    w.line("")

    w.open("int main()")
    w.line("int i; int frame;")
    w.line("init_cameras();")
    w.line("tracker.pool = &particles[0];")
    w.line("tracker.count = 256;")
    w.open("for (frame = 0; frame < 4; frame = frame + 1)")
    w.open("for (i = 0; i < 8; i = i + 1)")
    w.line("fork(&pool_tids[i], particle_weights, null);")
    w.close()
    w.open("for (i = 0; i < 8; i = i + 1)")
    w.line("join(pool_tids[i]);")
    w.close()
    w.open("for (i = 0; i < 8; i = i + 1)")
    w.line("fork(&pool_tids[i], particle_resample, null);")
    w.close()
    w.open("for (i = 0; i < 8; i = i + 1)")
    w.line("join(pool_tids[i]);")
    w.close()
    w.line("tracker.best = weights_sum;")
    w.close()
    w.line("return tracker.best;")
    w.close()
    return w.text()
