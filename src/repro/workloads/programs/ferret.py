"""ferret (Parsec-3.0): content-based similarity search server.

The classic Parsec pipeline: distinct stage threads (segment ->
extract -> index -> rank -> output) connected by bounded queues, each
stage forked individually. Local pointer churn per stage is heavy —
the pattern the paper credits value-flow analysis for (avoiding
blind propagation of non-shared locals).
"""

from __future__ import annotations

from repro.workloads.base import SourceWriter


def generate(scale: int = 1) -> str:
    stages = 5
    features = 8 * scale
    w = SourceWriter()
    w.line("// ferret: pipeline of stage threads connected by locked queues")
    w.open("struct item")
    w.line("int id;")
    w.line("int score;")
    w.line("struct item *next;")
    w.line("int *payload;")
    w.close(";")
    w.open("struct pipe_queue")
    w.line("struct item *head;")
    w.line("int depth;")
    w.close(";")
    w.line("")
    for s in range(stages + 1):
        w.line(f"struct pipe_queue stage_q_{s};")
        w.line(f"mutex_t stage_lock_{s};")
    for s in range(stages):
        w.line(f"thread_t stage_tid_{s};")
    w.line("int results;")
    w.line("")

    for s in range(stages + 1):
        w.open(f"void q_push_{s}(struct item *it)")
        w.line(f"lock(&stage_lock_{s});")
        w.line(f"it->next = stage_q_{s}.head;")
        w.line(f"stage_q_{s}.head = it;")
        w.line(f"stage_q_{s}.depth = stage_q_{s}.depth + 1;")
        w.line(f"unlock(&stage_lock_{s});")
        w.close()
        w.line("")
        w.open(f"struct item *q_pop_{s}()")
        w.line("struct item *it;")
        w.line(f"lock(&stage_lock_{s});")
        w.line(f"it = stage_q_{s}.head;")
        w.open("if (it != null)")
        w.line(f"stage_q_{s}.head = it->next;")
        w.line(f"stage_q_{s}.depth = stage_q_{s}.depth - 1;")
        w.close()
        w.line(f"unlock(&stage_lock_{s});")
        w.line("return it;")
        w.close()
        w.line("")

    for f in range(features):
        w.open(f"int feature_{f}(struct item *it)")
        w.line("int *vec; int acc;")
        w.line("vec = it->payload;")
        w.line("acc = 0;")
        w.open("if (vec != null)")
        w.line(f"acc = *vec + {f};")
        w.close()
        w.line("return acc;")
        w.close()
        w.line("")

    for s in range(stages):
        w.open(f"void *stage_{s}(void *arg)")
        w.line("struct item *it;")
        w.line("int work; int acc;")
        w.open("for (work = 0; work < 32; work = work + 1)")
        w.line(f"it = q_pop_{s}();")
        w.open("if (it != null)")
        w.line("acc = 0;")
        for f in range(s, features, stages):
            w.line(f"acc = acc + feature_{f}(it);")
        w.line("it->score = acc;")
        w.line(f"q_push_{s + 1}(it);")
        w.close()
        w.close()
        w.line("return null;")
        w.close()
        w.line("")

    w.open("int main()")
    w.line("int i;")
    w.line("struct item *seed;")
    w.line("struct item *out;")
    w.open("for (i = 0; i < 16; i = i + 1)")
    w.line("seed = malloc(struct item);")
    w.line("seed->id = i;")
    w.line("seed->payload = malloc(int);")
    w.line("q_push_0(seed);")
    w.close()
    for s in range(stages):
        w.line(f"fork(&stage_tid_{s}, stage_{s}, null);")
    for s in range(stages):
        w.line(f"join(stage_tid_{s});")
    w.line(f"out = q_pop_{stages}();")
    w.open("if (out != null)")
    w.line("results = out->score;")
    w.close()
    w.line("return results;")
    w.close()
    return w.text()
