"""mt_daapd (open-source): a multithreaded DAAP media daemon.

Master-slave daemon: a scanner thread populating a shared song
database (locked linked lists), a pool of session threads querying
it, and post-join maintenance in the master — the structure the paper
says interleaving analysis helps most (slave work in start
procedures, master post-processing after joining the slaves).
"""

from __future__ import annotations

from repro.workloads.base import SourceWriter


def generate(scale: int = 1) -> str:
    indexes = 10 * scale
    codecs = 12 * scale
    w = SourceWriter()
    w.line("// mt_daapd: scanner + session pool over a locked song database")
    w.open("struct song")
    w.line("int id;")
    w.line("int codec;")
    w.line("int *meta;")
    w.line("struct song *next;")
    w.close(";")
    w.open("struct db_index")
    w.line("struct song *head;")
    w.line("int size;")
    w.close(";")
    w.line("")
    for i in range(indexes):
        w.line(f"struct db_index db_idx_{i};")
        w.line(f"mutex_t idx_lock_{i};")
    w.line("thread_t scanner_tid;")
    w.line("thread_t session_tids[8];")
    w.line("int playlist_total;")
    w.line("struct song *now_playing;")
    w.line("")

    for c in range(codecs):
        w.open(f"int probe_codec_{c}(struct song *s)")
        w.line("int *m;")
        w.line("m = s->meta;")
        w.open("if (m != null)")
        w.line(f"s->codec = {c};")
        w.line("return *m;")
        w.close()
        w.line("return 0;")
        w.close()
        w.line("")

    for i in range(indexes):
        w.open(f"void db_add_{i}(struct song *s)")
        w.line(f"lock(&idx_lock_{i});")
        w.line(f"s->next = db_idx_{i}.head;")
        w.line(f"db_idx_{i}.head = s;")
        w.line(f"db_idx_{i}.size = db_idx_{i}.size + 1;")
        w.line(f"unlock(&idx_lock_{i});")
        w.close()
        w.line("")
        w.open(f"struct song *db_find_{i}(int id)")
        w.line("struct song *s;")
        w.line(f"lock(&idx_lock_{i});")
        w.line(f"s = db_idx_{i}.head;")
        w.open("while (s != null)")
        w.open("if (s->id == id)")
        w.line(f"unlock(&idx_lock_{i});")
        w.line("return s;")
        w.close()
        w.line("s = s->next;")
        w.close()
        w.line(f"unlock(&idx_lock_{i});")
        w.line("return null;")
        w.close()
        w.line("")

    w.open("void *scanner_proc(void *arg)")
    w.line("struct song *s;")
    w.line("int f; int c;")
    w.open("for (f = 0; f < 64; f = f + 1)")
    w.line("s = malloc(struct song);")
    w.line("s->id = f;")
    w.line("s->meta = malloc(int);")
    for c in range(codecs):
        w.line(f"c = probe_codec_{c}(s);")
    for i in range(indexes):
        w.line(f"db_add_{i}(s);")
    w.close()
    w.line("return null;")
    w.close()
    w.line("")

    w.open("void *session_proc(void *arg)")
    w.line("struct song *s;")
    w.line("int q;")
    w.open("for (q = 0; q < 32; q = q + 1)")
    for i in range(indexes):
        w.line(f"s = db_find_{i}(q);")
        w.open("if (s != null)")
        w.line("now_playing = s;")
        w.close()
    w.close()
    w.line("return null;")
    w.close()
    w.line("")

    w.open("int main()")
    w.line("int i;")
    w.line("struct song *cur;")
    w.line("fork(&scanner_tid, scanner_proc, null);")
    w.open("for (i = 0; i < 8; i = i + 1)")
    w.line("fork(&session_tids[i], session_proc, null);")
    w.close()
    w.line("join(scanner_tid);")
    w.open("for (i = 0; i < 8; i = i + 1)")
    w.line("join(session_tids[i]);")
    w.close()
    w.line("// post-join maintenance: master-only, no MHP with slaves;")
    w.line("// coarse (PCG-style) MHP cannot see that and floods these")
    w.line("// loads with spurious scanner-store edges.")
    for i in range(indexes):
        w.line(f"cur = db_idx_{i}.head;")
        w.open("while (cur != null)")
        w.line("playlist_total = playlist_total + 1;")
        w.line("now_playing = cur;")
        w.line("cur = cur->next;")
        w.close()
    w.line("return playlist_total;")
    w.close()
    return w.text()
