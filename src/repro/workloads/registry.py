"""The benchmark registry: one entry per Table 1 program."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Workload


def _lazy(name: str):
    # The resolved generator module is cached after the first call:
    # importlib.import_module is not free even on the sys.modules hit
    # path, and the batch service re-generates workload sources once
    # per request.
    module = None

    def generate(scale: int) -> str:
        nonlocal module
        if module is None:
            import importlib
            module = importlib.import_module(
                f"repro.workloads.programs.{name}")
        return module.generate(scale)
    return generate


WORKLOADS: Dict[str, Workload] = {}


def _register(name: str, description: str, paper_loc: int, suite: str,
              default_scale: int = 1) -> None:
    WORKLOADS[name] = Workload(name=name, description=description,
                               paper_loc=paper_loc, generate=_lazy(name),
                               default_scale=default_scale, suite=suite)


# Paper Table 1, in order.
_register("word_count", "Word counter based on map-reduce", 6330, "Phoenix-2.0")
_register("kmeans", "Iterative clustering of 3-D points", 6008, "Phoenix-2.0")
_register("radiosity", "Graphics", 12781, "Parsec-3.0")
_register("automount", "Manage autofs mount points", 13170, "open-source")
_register("ferret", "Content similarity search server", 15735, "Parsec-3.0")
_register("bodytrack", "Body tracking of a person", 19063, "Parsec-3.0")
_register("httpd_server", "Http server", 52616, "open-source")
_register("mt_daapd", "Multi-threaded DAAP Daemon", 57102, "open-source")
_register("raytrace", "Real-time raytracing", 84373, "Parsec-3.0")
_register("x264", "Media processing", 113481, "Parsec-3.0")


def get_workload(name: str) -> Workload:
    return WORKLOADS[name]


def workload_names() -> List[str]:
    return list(WORKLOADS.keys())
