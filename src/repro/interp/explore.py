"""Exhaustive (bounded) schedule exploration.

Enumerates every thread interleaving of a small program by DFS over
the scheduler's decision sequence, re-executing from scratch per
schedule (cells are mutable, so states are not cloned). Exponential,
of course — meant for programs of a few dozen steps, where it turns
the soundness check into a *tightness* check: the union of
observations over all schedules is the exact dynamic semantics the
static analysis over-approximates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.interp.interpreter import ExecutionLimit, Interpreter
from repro.ir.instructions import (
    BarrierInit, BarrierWait, Fork, Join, Load, Lock, Signal, Store, Unlock,
    Wait,
)
from repro.ir.module import Module

# Operations whose interleaving other threads can observe. Everything
# else (temp arithmetic, branches, frame pushes) is thread-local, so a
# simple partial-order reduction runs it deterministically without
# branching the schedule.
_VISIBLE = (Load, Store, Fork, Join, Lock, Unlock, Wait, Signal,
            BarrierInit, BarrierWait)


class _Branch(Exception):
    """Raised when the schedule prefix runs out at a choice point."""

    def __init__(self, options: int) -> None:
        self.options = options


def _next_instr(thread):
    frame = thread.frame
    return frame.block.instructions[frame.index]


class _PrefixChooser:
    def __init__(self, prefix: Tuple[int, ...]) -> None:
        self.prefix = prefix
        self.position = 0

    def __call__(self, runnable):
        if len(runnable) == 1:
            return runnable[0]
        # Partial-order reduction: a thread about to execute an
        # invisible (thread-local) instruction can always go first.
        for thread in runnable:
            if not isinstance(_next_instr(thread), _VISIBLE):
                return thread
        if self.position >= len(self.prefix):
            raise _Branch(len(runnable))
        choice = self.prefix[self.position]
        self.position += 1
        return runnable[choice]


@dataclass
class ExplorationResult:
    """Everything the explorer saw across all enumerated schedules."""

    schedules_run: int = 0
    truncated: int = 0               # schedules hitting the step budget
    exhausted: bool = True           # False if the schedule cap hit
    # load index (order of appearance) -> set of observed object names.
    observations: Dict[int, Set[str]] = field(default_factory=dict)

    def observed_at(self, load_index: int) -> Set[str]:
        return self.observations.get(load_index, set())


def _load_index_map(module: Module) -> Dict[int, int]:
    mapping: Dict[int, int] = {}
    index = 0
    for instr in module.all_instructions():
        if isinstance(instr, Load):
            mapping[instr.id] = index
            index += 1
    return mapping


def explore_schedules(module_factory: Callable[[], Module],
                      max_schedules: int = 4096,
                      max_steps: int = 4000) -> ExplorationResult:
    """Run *every* interleaving (up to the caps) of the program built
    by ``module_factory`` (a fresh module per run — instruction
    identities differ, so observations are keyed by load *order*)."""
    result = ExplorationResult()
    stack: List[Tuple[int, ...]] = [()]
    while stack:
        if result.schedules_run >= max_schedules:
            result.exhausted = False
            break
        prefix = stack.pop()
        module = module_factory()
        load_index = _load_index_map(module)
        chooser = _PrefixChooser(prefix)
        interp = Interpreter(module, max_steps=max_steps, chooser=chooser)
        try:
            interp.run()
        except _Branch as branch:
            # Extend the prefix with every possible choice.
            for option in range(branch.options):
                stack.append(prefix + (option,))
            continue
        except ExecutionLimit:
            result.truncated += 1
        result.schedules_run += 1
        for obs in interp.observations:
            idx = load_index[obs.load.id]
            result.observations.setdefault(idx, set()).add(obs.target.name)
    return result


def observed_names_for_line(module: Module, result: ExplorationResult,
                            line: int, deref_only: bool = True) -> Set[str]:
    """Union of observations at the loads on *line* (matching the
    FSAMResult.deref_pts_at_line query)."""
    from repro.ir.instructions import AddrOf
    from repro.ir.values import Temp
    addr_defined: Set[int] = set()
    for instr in module.all_instructions():
        if isinstance(instr, AddrOf):
            addr_defined.add(instr.dst.id)
    load_index = _load_index_map(module)
    names: Set[str] = set()
    for instr in module.all_instructions():
        if isinstance(instr, Load) and instr.line == line:
            if deref_only and isinstance(instr.ptr, Temp) \
                    and instr.ptr.id in addr_defined:
                continue
            names |= result.observed_at(load_index[instr.id])
    return names
