"""A concrete interpreter for the partial-SSA IR.

Executes MiniC programs under a seeded, instruction-granular thread
scheduler, recording which abstract object every load actually
observed. Property-based tests replay many schedules and assert the
static analyses over-approximate every observation — the soundness
oracle for the whole pipeline.
"""

from repro.interp.interpreter import (
    ExecutionLimit, Interpreter, Observation, SegmentationFault, run_program,
)
from repro.interp.explore import (
    ExplorationResult, explore_schedules, observed_names_for_line,
)

__all__ = ["Interpreter", "Observation", "ExecutionLimit",
           "SegmentationFault", "run_program",
           "ExplorationResult", "explore_schedules", "observed_names_for_line"]
