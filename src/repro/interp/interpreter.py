"""Concrete execution of the IR with interleaved threads.

Runtime model:

- A *cell* is one runtime memory location, tagged with the abstract
  object it refines. Recursion and multi-forked threads create many
  cells per abstract stack object; arrays are one cell (matching the
  analyses' monolithic treatment, so observations stay comparable).
- Runtime values are ints, ``Pointer(cell, field)``, ``FuncRef``,
  ``ThreadRef``, or None (uninitialised).
- The scheduler picks a runnable thread per step from a seeded RNG —
  replaying seeds enumerates interleavings deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import (
    AddrOf, BarrierInit, BarrierWait, BinOp, Branch, Call, Copy, Fork, Gep,
    Instruction, Join, Jump, Load, Lock, Phi, Ret, Signal, Store, Unlock,
    Wait,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.types import ArrayType, StructType
from repro.ir.values import Constant, Function, MemObject, Temp, Value


class ExecutionLimit(Exception):
    """The step budget ran out (likely an infinite loop or deadlock)."""


class SegmentationFault(Exception):
    """A null/garbage pointer was dereferenced. In C this is undefined
    behaviour; we model the common outcome — the process dies — so the
    static analyses' kill-everything treatment of null stores (paper
    Figure 10, kill = A) stays a sound over-approximation of every
    observable execution prefix."""


class Cell:
    """One runtime memory location."""

    _ids = 0

    def __init__(self, obj: MemObject) -> None:
        Cell._ids += 1
        self.id = Cell._ids
        self.obj = obj
        self.scalar: object = None
        self.fields: Dict[int, object] = {}

    def read(self, field_index: Optional[int]):
        if field_index is None:
            return self.scalar
        return self.fields.get(field_index)

    def write(self, field_index: Optional[int], value) -> None:
        if field_index is None:
            self.scalar = value
        else:
            self.fields[field_index] = value

    def __repr__(self) -> str:
        return f"<cell {self.obj.name}#{self.id}>"


@dataclass(frozen=True)
class Pointer:
    cell: Cell
    field: Optional[int] = None

    def abstract_object(self) -> MemObject:
        """The abstract object this pointer's target refines."""
        if self.field is None:
            return self.cell.obj
        ty = self.cell.obj.type
        if isinstance(ty, ArrayType):
            ty = ty.element
        if isinstance(ty, StructType) and self.field < len(ty.fields):
            return self.cell.obj.field(self.field, ty.field_type(self.field))
        return self.cell.obj


@dataclass(frozen=True)
class FuncRef:
    function: Function


@dataclass(frozen=True)
class ThreadRef:
    thread_index: int
    fork_id: int


@dataclass
class Observation:
    """One load's dynamically observed pointed-to abstract object."""

    load: Load
    target: MemObject


class Frame:
    def __init__(self, function: Function) -> None:
        self.function = function
        self.block: BasicBlock = function.entry
        self.index = 0
        self.prev_block: Optional[BasicBlock] = None
        self.temps: Dict[int, object] = {}
        self.cells: Dict[int, Cell] = {}  # stack obj id -> cell
        self.ret_target: Optional[Temp] = None


class ThreadExec:
    def __init__(self, index: int, function: Function, arg) -> None:
        self.index = index
        self.frames: List[Frame] = [Frame(function)]
        if function.params and arg is not None:
            self.frames[0].temps[function.params[0].id] = arg
        self.done = False
        self.joining: Optional[int] = None       # thread index awaited
        self.waiting_lock: Optional[Cell] = None
        self.waiting_barrier: Optional[int] = None  # barrier cell id

    @property
    def frame(self) -> Frame:
        return self.frames[-1]


class Interpreter:
    """Executes a module from ``main`` under one schedule."""

    def __init__(self, module: Module, seed: int = 0, max_steps: int = 100000,
                 chooser=None) -> None:
        self.module = module
        self.rng = random.Random(seed)
        self.max_steps = max_steps
        # Optional scheduling hook: chooser(runnable) -> ThreadExec.
        # Used by the exhaustive explorer to enumerate interleavings.
        self.chooser = chooser
        self.globals: Dict[int, Cell] = {}
        for obj in module.globals.values():
            self.globals[obj.id] = Cell(obj)
        self.threads: List[ThreadExec] = [ThreadExec(0, module.main, None)]
        self.locks_held: Dict[int, int] = {}       # cell id -> thread index
        # barrier cell id -> {"count": n, "arrived": set of thread idx}
        self.barriers: Dict[int, Dict[str, object]] = {}
        self.observations: List[Observation] = []
        self.steps = 0

    # -- value evaluation --------------------------------------------------

    def _value(self, frame: Frame, value: Value):
        if isinstance(value, Constant):
            return None if value.is_null else value.value
        if isinstance(value, Function):
            return FuncRef(value)
        if isinstance(value, Temp):
            return frame.temps.get(value.id)
        raise TypeError(f"cannot evaluate {value!r}")

    def _cell_of(self, thread: ThreadExec, obj: MemObject) -> Cell:
        if obj.id in self.globals:
            return self.globals[obj.id]
        frame = thread.frame
        cell = frame.cells.get(obj.id)
        if cell is None:
            cell = Cell(obj)
            frame.cells[obj.id] = cell
        return cell

    # -- scheduling ---------------------------------------------------------

    def _runnable(self) -> List[ThreadExec]:
        result = []
        for t in self.threads:
            if t.done:
                continue
            if t.waiting_barrier is not None:
                continue  # released by the last thread to arrive
            if t.joining is not None:
                if self.threads[t.joining].done:
                    t.joining = None
                else:
                    continue
            if t.waiting_lock is not None:
                if t.waiting_lock.id not in self.locks_held:
                    self.locks_held[t.waiting_lock.id] = t.index
                    t.waiting_lock = None
                else:
                    continue
            result.append(t)
        return result

    def run(self) -> List[Observation]:
        """Run to completion (or the step budget); returns observations.

        A segmentation fault ends the run like a real process death:
        the observations gathered so far are the execution's output."""
        try:
            return self._run_loop()
        except SegmentationFault:
            return self.observations

    def _run_loop(self) -> List[Observation]:
        while True:
            runnable = self._runnable()
            if not runnable:
                if all(t.done for t in self.threads):
                    return self.observations
                # Blocked threads remain: deadlock. Surface it as a
                # limit; tests treat it as a truncated execution.
                raise ExecutionLimit("deadlock")
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionLimit("step budget exhausted")
            if self.chooser is not None:
                thread = self.chooser(runnable)
            else:
                thread = self.rng.choice(runnable)
            self._step(thread)

    # -- one instruction -------------------------------------------------------

    def _step(self, thread: ThreadExec) -> None:
        frame = thread.frame
        instr = frame.block.instructions[frame.index]
        frame.index += 1
        self._execute(thread, frame, instr)

    def _jump(self, frame: Frame, target: BasicBlock) -> None:
        frame.prev_block = frame.block
        frame.block = target
        frame.index = 0

    def _execute(self, thread: ThreadExec, frame: Frame, instr: Instruction) -> None:
        if isinstance(instr, AddrOf):
            frame.temps[instr.dst.id] = Pointer(self._cell_of(thread, instr.obj))
        elif isinstance(instr, Copy):
            frame.temps[instr.dst.id] = self._value(frame, instr.src)
        elif isinstance(instr, Phi):
            for value, block in instr.incomings:
                if block is frame.prev_block:
                    frame.temps[instr.dst.id] = self._value(frame, value)
                    break
        elif isinstance(instr, Load):
            ptr = self._value(frame, instr.ptr)
            if not isinstance(ptr, Pointer):
                raise SegmentationFault(f"load through {ptr!r} at {instr!r}")
            loaded = ptr.cell.read(ptr.field)
            frame.temps[instr.dst.id] = loaded
            target = self._abstract_target(loaded)
            if target is not None:
                self.observations.append(Observation(instr, target))
        elif isinstance(instr, Store):
            ptr = self._value(frame, instr.ptr)
            if not isinstance(ptr, Pointer):
                raise SegmentationFault(f"store through {ptr!r} at {instr!r}")
            ptr.cell.write(ptr.field, self._value(frame, instr.value))
        elif isinstance(instr, Gep):
            base = self._value(frame, instr.base)
            if isinstance(base, Pointer):
                if instr.field_index is None:
                    frame.temps[instr.dst.id] = Pointer(base.cell, base.field)
                else:
                    frame.temps[instr.dst.id] = Pointer(base.cell, instr.field_index)
            else:
                frame.temps[instr.dst.id] = None
        elif isinstance(instr, Call):
            self._call(thread, frame, instr)
        elif isinstance(instr, Ret):
            value = self._value(frame, instr.value) if instr.value is not None else None
            ret_target = frame.ret_target
            thread.frames.pop()
            if not thread.frames:
                thread.done = True
                return
            if ret_target is not None:
                thread.frame.temps[ret_target.id] = value
        elif isinstance(instr, Fork):
            self._fork(thread, frame, instr)
        elif isinstance(instr, Join):
            handle = self._value(frame, instr.handle)
            if isinstance(handle, ThreadRef):
                if not self.threads[handle.thread_index].done:
                    thread.joining = handle.thread_index
        elif isinstance(instr, Lock):
            ptr = self._value(frame, instr.ptr)
            if isinstance(ptr, Pointer):
                if ptr.cell.id in self.locks_held:
                    thread.waiting_lock = ptr.cell
                else:
                    self.locks_held[ptr.cell.id] = thread.index
        elif isinstance(instr, Unlock):
            ptr = self._value(frame, instr.ptr)
            if isinstance(ptr, Pointer):
                if self.locks_held.get(ptr.cell.id) == thread.index:
                    del self.locks_held[ptr.cell.id]
        elif isinstance(instr, Wait):
            # Spurious-wakeup model (valid per POSIX): release the
            # mutex, then immediately contend to re-acquire it. The
            # condition variable itself imposes no ordering here.
            mu = self._value(frame, instr.mutex_ptr)
            if isinstance(mu, Pointer):
                if self.locks_held.get(mu.cell.id) == thread.index:
                    del self.locks_held[mu.cell.id]
                thread.waiting_lock = mu.cell
        elif isinstance(instr, Signal):
            pass  # no-op under the spurious-wakeup model
        elif isinstance(instr, BarrierInit):
            ptr = self._value(frame, instr.ptr)
            count = self._value(frame, instr.count)
            if isinstance(ptr, Pointer) and isinstance(count, int):
                self.barriers[ptr.cell.id] = {"count": max(count, 1),
                                              "arrived": set()}
        elif isinstance(instr, BarrierWait):
            ptr = self._value(frame, instr.ptr)
            if isinstance(ptr, Pointer):
                state = self.barriers.setdefault(
                    ptr.cell.id, {"count": 1, "arrived": set()})
                arrived = state["arrived"]
                arrived.add(thread.index)
                if len(arrived) >= state["count"]:
                    for idx in arrived:
                        self.threads[idx].waiting_barrier = None
                    arrived.clear()
                else:
                    thread.waiting_barrier = ptr.cell.id
        elif isinstance(instr, Branch):
            cond = self._value(frame, instr.cond)
            taken = instr.then_block if self._truthy(cond) else instr.else_block
            self._jump(frame, taken)
        elif isinstance(instr, Jump):
            self._jump(frame, instr.target)
        elif isinstance(instr, BinOp):
            frame.temps[instr.dst.id] = self._binop(frame, instr)

    def _abstract_target(self, value) -> Optional[MemObject]:
        if isinstance(value, Pointer):
            return value.abstract_object()
        if isinstance(value, FuncRef):
            return value.function.mem_object
        return None

    def _truthy(self, value) -> bool:
        if value is None:
            return False
        if isinstance(value, int):
            return value != 0
        return True  # pointers/functions/threads are non-null

    def _binop(self, frame: Frame, instr: BinOp):
        lhs = self._value(frame, instr.lhs)
        rhs = self._value(frame, instr.rhs)
        op = instr.op
        if op == "==":
            return int(lhs == rhs)
        if op == "!=":
            return int(lhs != rhs)
        if op == "&&":
            return int(self._truthy(lhs) and self._truthy(rhs))
        if op == "||":
            return int(self._truthy(lhs) or self._truthy(rhs))
        if op == "!":
            return int(not self._truthy(rhs))
        lhs = lhs if isinstance(lhs, int) else 0
        rhs = rhs if isinstance(rhs, int) else 0
        try:
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs // rhs if rhs else 0
            if op == "%":
                return lhs % rhs if rhs else 0
            if op == "<":
                return int(lhs < rhs)
            if op == ">":
                return int(lhs > rhs)
            if op == "<=":
                return int(lhs <= rhs)
            if op == ">=":
                return int(lhs >= rhs)
        except OverflowError:  # pragma: no cover
            return 0
        return 0

    def _call(self, thread: ThreadExec, frame: Frame, instr: Call) -> None:
        callee = self._resolve_callee(frame, instr.callee)
        if callee is None or callee.is_declaration or not callee.blocks:
            if instr.dst is not None:
                frame.temps[instr.dst.id] = None
            return
        new_frame = Frame(callee)
        new_frame.ret_target = instr.dst
        for param, arg in zip(callee.params, instr.args):
            new_frame.temps[param.id] = self._value(frame, arg)
        # Heap allocations: a fresh cell per executed AddrOf of a heap
        # object is created lazily by _cell_of per frame; globals are
        # shared. (Stack objects are per-frame by construction.)
        thread.frames.append(new_frame)

    def _resolve_callee(self, frame: Frame, callee: Value) -> Optional[Function]:
        if isinstance(callee, Function):
            return callee
        value = self._value(frame, callee)
        if isinstance(value, FuncRef):
            return value.function
        return None

    def _fork(self, thread: ThreadExec, frame: Frame, instr: Fork) -> None:
        routine = self._resolve_callee(frame, instr.routine)
        if routine is None or not routine.blocks:
            return
        arg = self._value(frame, instr.arg) if instr.arg is not None else None
        child = ThreadExec(len(self.threads), routine, arg)
        self.threads.append(child)
        if instr.handle_ptr is not None:
            ptr = self._value(frame, instr.handle_ptr)
            if isinstance(ptr, Pointer):
                ptr.cell.write(ptr.field, ThreadRef(child.index, instr.id))


def run_program(module: Module, seed: int = 0, max_steps: int = 100000) -> List[Observation]:
    """Execute *module* under the schedule drawn from *seed*."""
    return Interpreter(module, seed=seed, max_steps=max_steps).run()
