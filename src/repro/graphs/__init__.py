"""Generic graph data structures and algorithms.

These are the compiler-infrastructure substrates FSAM is built on:
directed graphs, strongly connected components (Tarjan and Nuutila),
dominator trees (Cooper-Harvey-Kennedy), dominance frontiers, natural
loops, and a generic worklist data-flow framework.
"""

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condensation, tarjan_scc
from repro.graphs.dominance import DominatorTree, dominance_frontiers
from repro.graphs.loops import Loop, natural_loops
from repro.graphs.dataflow import DataflowProblem, solve_forward

__all__ = [
    "DiGraph",
    "tarjan_scc",
    "condensation",
    "DominatorTree",
    "dominance_frontiers",
    "Loop",
    "natural_loops",
    "DataflowProblem",
    "solve_forward",
]
