"""Strongly connected components.

Tarjan's single-pass algorithm, implemented iteratively so that the
deep constraint graphs produced by Andersen's analysis do not blow the
CPython recursion limit, plus a condensation helper used both for
call-graph SCCs (context-insensitive recursion handling, paper
Section 3.1) and for online cycle collapsing in the pre-analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Tuple

from repro.graphs.digraph import DiGraph


def tarjan_scc(graph: DiGraph) -> List[List[Hashable]]:
    """Strongly connected components of *graph*.

    Returns SCCs in reverse topological order (callees before callers),
    which is the order Tarjan's algorithm emits them in.
    """
    return tarjan_scc_adj(list(graph.nodes()), graph.successors)


def tarjan_scc_adj(nodes: Iterable[Hashable],
                   successors: Callable[[Hashable], Iterable[Hashable]]
                   ) -> List[List[Hashable]]:
    """:func:`tarjan_scc` over an adjacency *function* instead of a
    materialised :class:`DiGraph` — callers with a large edge set
    already indexed elsewhere (e.g. the DUG's scheduling graph) avoid
    building a second copy of it. Nodes reachable from *nodes* via
    *successors* are included even if absent from *nodes*."""
    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Dict[Hashable, bool] = {}
    stack: List[Hashable] = []
    sccs: List[List[Hashable]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        # Iterative Tarjan: work entries are (node, successor iterator).
        work = [(root, iter(successors(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def topo_ranks(nodes: Iterable[Hashable],
               successors: Callable[[Hashable], Iterable[Hashable]]
               ) -> Tuple[Dict[Hashable, int], int]:
    """SCC-condensed topological ranks.

    Returns ``(rank_of, scc_count)`` where ``rank_of[n]`` is the
    topological position of *n*'s SCC in the condensation DAG:
    sources get the smallest ranks, so processing nodes in ascending
    rank order propagates facts downstream before any revisit. Nodes
    in one SCC share a rank. Tarjan emits SCCs in reverse topological
    order, so rank = (count - 1 - emission index).
    """
    sccs = tarjan_scc_adj(nodes, successors)
    count = len(sccs)
    rank_of: Dict[Hashable, int] = {}
    for idx, component in enumerate(sccs):
        rank = count - 1 - idx
        for node in component:
            rank_of[node] = rank
    return rank_of, count


def topo_ranks_dense(successors: List[List[int]]) -> Tuple[List[int], int]:
    """:func:`topo_ranks` over a dense integer graph.

    Nodes are ``0..len(successors)-1`` and ``successors[i]`` lists
    node *i*'s successors. Flat arrays replace the generic variant's
    per-node dict lookups and tuple hashing — this is the form the
    sparse solver's scheduling prologue uses, where rank computation
    sits on the critical path of every analysis run. Returns
    ``(rank, scc_count)`` with ``rank[i]`` the topological position of
    node *i*'s SCC (sources first, one shared rank per SCC).
    """
    n = len(successors)
    index = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    emit = [0] * n                  # SCC emission number per node
    counter = 0
    scc_count = 0
    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while work:
            node, ci = work[-1]
            succs = successors[node]
            advanced = False
            while ci < len(succs):
                succ = succs[ci]
                ci += 1
                if index[succ] == -1:
                    work[-1] = (node, ci)
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = 1
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ] and index[succ] < low[node]:
                    low[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    emit[member] = scc_count
                    if member == node:
                        break
                scc_count += 1
    # Tarjan emits reverse-topologically; invert so sources rank first.
    top = scc_count - 1
    return [top - e for e in emit], scc_count


def topo_ranks_induced(successors: List[List[int]],
                       member: bytearray,
                       roots: Iterable[int]) -> Tuple[Dict[int, int], int]:
    """:func:`topo_ranks_dense` over the subgraph induced by *member*.

    ``member[i]`` is truthy when dense node *i* belongs to the slice;
    edges to or from non-members are ignored. *roots* enumerates the
    member slots (Tarjan starts from each unvisited root, so together
    they must cover the slice; their order fixes SCC numbering).
    Returns ``(rank_of_slot, scc_count)`` covering exactly the member
    slots. This is the demand-driven solver's rank pass: a query slice
    is a small predecessor-closed fragment of the value-flow graph,
    and every structure here — including the per-node bookkeeping,
    which is why these are dicts rather than ``n``-sized arrays — is
    proportional to the slice, not the program.
    """
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack = set()
    stack: List[int] = []
    emit: Dict[int, int] = {}
    counter = 0
    scc_count = 0
    for root in roots:
        if root in index or not member[root]:
            continue
        work = [(root, 0)]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, ci = work[-1]
            succs = successors[node]
            advanced = False
            while ci < len(succs):
                succ = succs[ci]
                ci += 1
                if not member[succ]:
                    continue
                if succ not in index:
                    work[-1] = (node, ci)
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack and index[succ] < low[node]:
                    low[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                while True:
                    member_node = stack.pop()
                    on_stack.discard(member_node)
                    emit[member_node] = scc_count
                    if member_node == node:
                        break
                scc_count += 1
    top = scc_count - 1
    return {slot: top - e for slot, e in emit.items()}, scc_count


def condensation(graph: DiGraph):
    """Condense *graph* into its SCC DAG.

    Returns ``(dag, scc_of)`` where ``dag`` is a :class:`DiGraph` whose
    nodes are SCC indices and ``scc_of`` maps each original node to its
    SCC index. SCC indices follow Tarjan order (reverse topological).
    """
    sccs = tarjan_scc(graph)
    scc_of: Dict[Hashable, int] = {}
    for idx, component in enumerate(sccs):
        for node in component:
            scc_of[node] = idx
    dag = DiGraph()
    for idx in range(len(sccs)):
        dag.add_node(idx)
    for src, dst in graph.edges():
        if scc_of[src] != scc_of[dst]:
            dag.add_edge(scc_of[src], scc_of[dst])
    return dag, scc_of
