"""Strongly connected components.

Tarjan's single-pass algorithm, implemented iteratively so that the
deep constraint graphs produced by Andersen's analysis do not blow the
CPython recursion limit, plus a condensation helper used both for
call-graph SCCs (context-insensitive recursion handling, paper
Section 3.1) and for online cycle collapsing in the pre-analysis.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.graphs.digraph import DiGraph


def tarjan_scc(graph: DiGraph) -> List[List[Hashable]]:
    """Strongly connected components of *graph*.

    Returns SCCs in reverse topological order (callees before callers),
    which is the order Tarjan's algorithm emits them in.
    """
    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Dict[Hashable, bool] = {}
    stack: List[Hashable] = []
    sccs: List[List[Hashable]] = []
    counter = [0]

    for root in list(graph.nodes()):
        if root in index_of:
            continue
        # Iterative Tarjan: work entries are (node, successor iterator).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def condensation(graph: DiGraph):
    """Condense *graph* into its SCC DAG.

    Returns ``(dag, scc_of)`` where ``dag`` is a :class:`DiGraph` whose
    nodes are SCC indices and ``scc_of`` maps each original node to its
    SCC index. SCC indices follow Tarjan order (reverse topological).
    """
    sccs = tarjan_scc(graph)
    scc_of: Dict[Hashable, int] = {}
    for idx, component in enumerate(sccs):
        for node in component:
            scc_of[node] = idx
    dag = DiGraph()
    for idx in range(len(sccs)):
        dag.add_node(idx)
    for src, dst in graph.edges():
        if scc_of[src] != scc_of[dst]:
            dag.add_edge(scc_of[src], scc_of[dst])
    return dag, scc_of
