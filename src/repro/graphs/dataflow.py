"""A generic forward worklist data-flow framework.

FSAM's interleaving analysis is formulated as a forward data-flow
problem (V, meet, F) over ICFGs (paper Section 3.3.1); the NONSPARSE
baseline is an iterative data-flow pointer analysis. Both reuse this
engine so their fixpoint machinery is shared and separately tested.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generic, Hashable, Iterable, Optional, TypeVar

from repro.graphs.digraph import DiGraph

Fact = TypeVar("Fact")


class DataflowProblem(Generic[Fact]):
    """A forward data-flow problem over a directed graph.

    Subclasses (or instances configured with callables) provide the
    lattice operations; the engine iterates to a fixpoint.
    """

    def __init__(
        self,
        graph: DiGraph,
        entry_fact: Callable[[Hashable], Fact],
        bottom: Callable[[], Fact],
        transfer: Callable[[Hashable, Fact], Fact],
        meet: Callable[[Fact, Fact], Fact],
        equal: Callable[[Fact, Fact], bool],
    ) -> None:
        self.graph = graph
        self.entry_fact = entry_fact
        self.bottom = bottom
        self.transfer = transfer
        self.meet = meet
        self.equal = equal


def solve_forward(
    problem: DataflowProblem[Fact], entries: Iterable[Hashable],
    stats: Optional[Dict[str, int]] = None
) -> Dict[Hashable, Fact]:
    """Solve *problem* to a fixpoint; returns the OUT fact per node.

    ``entries`` seeds the worklist. An entry node's IN fact starts
    from its ``entry_fact`` and — like every other node — still meets
    in its predecessors' OUT facts: a back-edge into an entry (e.g. a
    state-graph loop returning to a thread's entry state) must
    contribute, or facts generated inside the loop would be silently
    dropped on re-entry, under-approximating the solution. Non-entry
    nodes start from ``bottom`` (the meet identity) until predecessor
    OUTs exist.

    When *stats* is given, the number of node evaluations is added to
    its ``"iterations"`` entry (observability hook; this module stays
    free of any :mod:`repro.obs` dependency).
    """
    graph = problem.graph
    out: Dict[Hashable, Fact] = {}
    entry_set = set(entries)
    work = deque(entry_set)
    queued = set(entry_set)
    iterations = 0
    while work:
        iterations += 1
        node = work.popleft()
        queued.discard(node)
        # Entry nodes seed from entry_fact instead of bottom; the
        # predecessor meet below applies to entries too.
        if node in entry_set:
            in_fact = problem.entry_fact(node)
        else:
            in_fact = problem.bottom()
        for pred in graph.predecessors(node):
            if pred in out:
                in_fact = problem.meet(in_fact, out[pred])
        new_out = problem.transfer(node, in_fact)
        if node in out and problem.equal(out[node], new_out):
            continue
        out[node] = new_out
        for succ in graph.successors(node):
            if succ not in queued:
                queued.add(succ)
                work.append(succ)
    if stats is not None:
        stats["iterations"] = stats.get("iterations", 0) + iterations
    return out
