"""Natural loop discovery.

Loops matter to FSAM's static thread model: a fork site residing in a
loop makes the spawned abstract thread *multi-forked* (paper
Definition 1), which in turn disables strong thread-join reasoning
unless the symmetric fork/join pattern of Figure 11 is recognised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

from repro.graphs.digraph import DiGraph
from repro.graphs.dominance import DominatorTree


@dataclass
class Loop:
    """A natural loop: a header plus its body blocks."""

    header: Hashable
    body: Set[Hashable] = field(default_factory=set)

    def __contains__(self, node: Hashable) -> bool:
        return node in self.body


def natural_loops(graph: DiGraph, entry: Hashable) -> List[Loop]:
    """All natural loops of *graph*, one per header.

    A back edge t -> h exists when h dominates t; the loop body is every
    node that can reach t without passing through h. Loops sharing a
    header are merged, following the usual convention.
    """
    domtree = DominatorTree(graph, entry)
    loops: Dict[Hashable, Loop] = {}
    for tail, head in graph.edges():
        if not domtree.dominates(head, tail):
            continue
        loop = loops.setdefault(head, Loop(header=head, body={head}))
        # Walk backwards from the tail, stopping at the header.
        stack = [tail]
        while stack:
            node = stack.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            stack.extend(graph.predecessors(node))
    return list(loops.values())


def blocks_in_loops(graph: DiGraph, entry: Hashable) -> Set[Hashable]:
    """The union of all natural-loop bodies — i.e. blocks that may
    execute more than once per function invocation."""
    result: Set[Hashable] = set()
    for loop in natural_loops(graph, entry):
        result |= loop.body
    return result
