"""Dominator trees and dominance frontiers.

The Cooper-Harvey-Kennedy "simple, fast" dominance algorithm and
Cytron-style dominance frontiers. These power SSA construction (phi
placement for mem2reg and for memory SSA renaming of address-taken
objects, paper Section 2.2).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.graphs.digraph import DiGraph


class DominatorTree:
    """Immediate-dominator tree of a rooted directed graph.

    Only nodes reachable from *entry* participate; unreachable nodes
    have no dominator information.
    """

    def __init__(self, graph: DiGraph, entry: Hashable) -> None:
        self.graph = graph
        self.entry = entry
        self.idom: Dict[Hashable, Hashable] = {}
        self._rpo_index: Dict[Hashable, int] = {}
        self._compute()
        self._children: Dict[Hashable, List[Hashable]] = {}
        for node, parent in self.idom.items():
            if node != self.entry:
                self._children.setdefault(parent, []).append(node)

    def _compute(self) -> None:
        rpo = self.graph.reverse_postorder(self.entry)
        for i, node in enumerate(rpo):
            self._rpo_index[node] = i
        idom: Dict[Hashable, Optional[Hashable]] = {n: None for n in rpo}
        idom[self.entry] = self.entry
        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == self.entry:
                    continue
                new_idom: Optional[Hashable] = None
                for pred in self.graph.predecessors(node):
                    if pred not in self._rpo_index or idom[pred] is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom[node] != new_idom:
                    idom[node] = new_idom
                    changed = True
        self.idom = {n: d for n, d in idom.items() if d is not None}

    def _intersect(self, a: Hashable, b: Hashable, idom: Dict) -> Hashable:
        while a != b:
            while self._rpo_index[a] > self._rpo_index[b]:
                a = idom[a]
            while self._rpo_index[b] > self._rpo_index[a]:
                b = idom[b]
        return a

    # -- queries ------------------------------------------------------

    def immediate_dominator(self, node: Hashable) -> Optional[Hashable]:
        """The idom of *node*, or None for the entry / unreachable nodes."""
        if node == self.entry:
            return None
        return self.idom.get(node)

    def dominates(self, a: Hashable, b: Hashable) -> bool:
        """True if *a* dominates *b* (reflexively)."""
        if b not in self.idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            if node == self.entry:
                return False
            node = self.idom[node]

    def children(self, node: Hashable) -> List[Hashable]:
        """Nodes immediately dominated by *node*."""
        return self._children.get(node, [])

    def dfs_preorder(self) -> List[Hashable]:
        """Preorder walk of the dominator tree (used by SSA renaming)."""
        order: List[Hashable] = []
        stack = [self.entry]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children(node)))
        return order


def dominance_frontiers(graph: DiGraph, domtree: DominatorTree) -> Dict[Hashable, Set[Hashable]]:
    """Cytron et al. dominance frontiers from a dominator tree."""
    frontiers: Dict[Hashable, Set[Hashable]] = {n: set() for n in domtree.idom}
    for node in domtree.idom:
        preds = [p for p in graph.predecessors(node) if p in domtree.idom]
        if len(preds) < 2:
            continue
        idom = domtree.immediate_dominator(node)
        for pred in preds:
            runner = pred
            while runner != idom and runner in domtree.idom:
                frontiers[runner].add(node)
                if runner == domtree.entry:
                    break
                runner = domtree.idom[runner]
    return frontiers


def iterated_dominance_frontier(
    frontiers: Dict[Hashable, Set[Hashable]], defs: Set[Hashable]
) -> Set[Hashable]:
    """The iterated dominance frontier of a set of defining blocks.

    This is the classic phi-placement worklist: the result is the set
    of join points needing a phi for a variable defined in *defs*.
    """
    result: Set[Hashable] = set()
    work = list(defs)
    seen = set(defs)
    while work:
        block = work.pop()
        for frontier_block in frontiers.get(block, ()):
            if frontier_block not in result:
                result.add(frontier_block)
                if frontier_block not in seen:
                    seen.add(frontier_block)
                    work.append(frontier_block)
    return result
