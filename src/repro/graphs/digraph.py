"""A small directed-graph container.

The analyses in this package need only adjacency iteration, edge
insertion, and reachability; keeping the container minimal makes the
algorithm modules (SCC, dominance, data-flow) easy to audit against
their textbook statements.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Set


class DiGraph:
    """Directed graph over hashable node ids, with O(1) edge insertion.

    Successor/predecessor sets are deduplicated; parallel edges are not
    represented (none of the client analyses need them).
    """

    def __init__(self) -> None:
        self._succs: Dict[Hashable, Set[Hashable]] = {}
        self._preds: Dict[Hashable, Set[Hashable]] = {}

    # -- construction -------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Insert *node* (a no-op if already present)."""
        if node not in self._succs:
            self._succs[node] = set()
            self._preds[node] = set()

    def add_edge(self, src: Hashable, dst: Hashable) -> None:
        """Insert the edge src -> dst, inserting endpoints as needed."""
        self.add_node(src)
        self.add_node(dst)
        self._succs[src].add(dst)
        self._preds[dst].add(src)

    def remove_edge(self, src: Hashable, dst: Hashable) -> None:
        """Remove the edge src -> dst if present."""
        self._succs.get(src, set()).discard(dst)
        self._preds.get(dst, set()).discard(src)

    # -- queries ------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succs

    def __len__(self) -> int:
        return len(self._succs)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succs)

    def nodes(self) -> Iterable[Hashable]:
        """All nodes, in insertion order."""
        return self._succs.keys()

    def edges(self) -> Iterator[tuple]:
        """All (src, dst) pairs."""
        for src, succs in self._succs.items():
            for dst in succs:
                yield (src, dst)

    def num_edges(self) -> int:
        return sum(len(s) for s in self._succs.values())

    def successors(self, node: Hashable) -> Set[Hashable]:
        return self._succs.get(node, set())

    def predecessors(self, node: Hashable) -> Set[Hashable]:
        return self._preds.get(node, set())

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        return dst in self._succs.get(src, set())

    # -- traversals ---------------------------------------------------

    def reachable_from(self, start: Hashable) -> Set[Hashable]:
        """The set of nodes reachable from *start* (including it)."""
        if start not in self._succs:
            return set()
        seen = {start}
        work = deque([start])
        while work:
            node = work.popleft()
            for succ in self._succs[node]:
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def reverse_reachable_from(self, start: Hashable) -> Set[Hashable]:
        """The set of nodes that can reach *start* (including it)."""
        if start not in self._preds:
            return set()
        seen = {start}
        work = deque([start])
        while work:
            node = work.popleft()
            for pred in self._preds[node]:
                if pred not in seen:
                    seen.add(pred)
                    work.append(pred)
        return seen

    def postorder(self, entry: Hashable) -> List[Hashable]:
        """Iterative DFS postorder from *entry* (reachable nodes only)."""
        order: List[Hashable] = []
        seen: Set[Hashable] = set()
        if entry not in self._succs:
            return order
        # Stack holds (node, iterator over its successors).
        stack = [(entry, iter(sorted(self._succs[entry], key=repr)))]
        seen.add(entry)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(sorted(self._succs[succ], key=repr))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        return order

    def reverse_postorder(self, entry: Hashable) -> List[Hashable]:
        """Reverse postorder (a topological order on DAGs)."""
        order = self.postorder(entry)
        order.reverse()
        return order

    def copy(self) -> "DiGraph":
        dup = DiGraph()
        for node in self._succs:
            dup.add_node(node)
        for src, dst in self.edges():
            dup.add_edge(src, dst)
        return dup
