"""Memory SSA and the sparse def-use graph (DUG).

Implements the paper's Section 2.2 machinery: mu/chi annotation of
loads, stores, and callsites from pre-analysis points-to sets; SSA
renaming of address-taken objects; and the resulting def-use graph on
which the sparse flow-sensitive solver runs. The multithreaded
twists of Section 3.2 (thread-oblivious def-use) are built in: fork
sites act as callsites of their start routines with always-weak chi
functions (Steps 1-2), and join sites receive the joined routine's
side effects through exit-to-join def-use edges (Step 3).
"""

from repro.memssa.modref import ModRefAnalysis
from repro.memssa.dug import (
    DUG, DUGNode, StmtNode, MemPhiNode, FormalInNode, FormalOutNode,
    CallMuNode, CallChiNode,
)
from repro.memssa.builder import MemorySSABuilder, build_dug

__all__ = [
    "ModRefAnalysis",
    "DUG", "DUGNode", "StmtNode", "MemPhiNode", "FormalInNode",
    "FormalOutNode", "CallMuNode", "CallChiNode",
    "MemorySSABuilder", "build_dug",
]
