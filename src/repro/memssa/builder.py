"""Memory-SSA construction of the sparse def-use graph.

Follows the paper's Figure 4 pipeline: (a) annotate loads/stores/
callsites with mu/chi from pre-analysis points-to sets, (b) put each
address-taken object in SSA form per function (memory phis at
iterated dominance frontiers, renaming along the dominator tree),
(c) emit labelled def-use edges, (d) link callsites to callee
formal-in/formal-out nodes interprocedurally.

Thread-oblivious def-use chains (Section 3.2) fall out of three
choices: forks are treated as callsites of their start routines
(Step 1) whose chi functions are weak, so value flows can bypass the
routine (Step 2); and join sites carry chi functions fed by the
joined routines' formal-outs (Step 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.cfg.cfg import CFG
from repro.graphs.dominance import iterated_dominance_frontier
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Instruction, Join, Load, Phi, Ret, Store,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.values import Constant, Function, MemObject, Temp, Value
from repro.memssa.dug import (
    DUG, CallChiNode, CallMuNode, DUGNode, FormalInNode, FormalOutNode,
    MemPhiNode, StmtNode,
)
from repro.memssa.modref import ModRefAnalysis
from repro.obs import NULL_OBS, Observer
from repro.pts import PTSet


def pointer_carrying_objects(module: Module, andersen: AndersenResult) -> Set[MemObject]:
    """Objects whose contents may hold pointers (non-empty content
    points-to set under the pre-analysis). Only these need memory
    SSA: loads from the rest can never yield points-to facts."""
    relevant: Set[MemObject] = set()
    for obj in module.objects:
        if andersen.pts(obj):
            relevant.add(obj)
        for field_obj in obj.fields().values():
            if andersen.pts(field_obj):
                relevant.add(field_obj)
    return relevant


class MemorySSABuilder:
    """Builds the DUG for a module."""

    def __init__(self, module: Module, andersen: AndersenResult,
                 relevant: Optional[Set[MemObject]] = None) -> None:
        self.module = module
        self.andersen = andersen
        self.universe = andersen.universe
        self.relevant = relevant if relevant is not None else pointer_carrying_objects(module, andersen)
        self._relevant_pts: PTSet = self.universe.make(self.relevant)
        self.modref = ModRefAnalysis(module, andersen, relevant=self.relevant)
        self.dug = DUG()
        self.formal_in: Dict[Tuple[str, int], FormalInNode] = {}
        self.formal_out: Dict[Tuple[str, int], FormalOutNode] = {}
        self.site_mus: Dict[Tuple[int, int], CallMuNode] = {}
        self.site_chis: Dict[Tuple[int, int], CallChiNode] = {}
        # Per-instruction mu/chi sets (exposed for tests/debugging);
        # interned PTSets, so identical annotations share one instance.
        self.mus: Dict[int, PTSet] = {}
        self.chis: Dict[int, PTSet] = {}
        # The def of obj reaching each call/fork site, recorded during
        # renaming: feeds weak-chi fallbacks and fork bypass edges.
        self.site_old_def: Dict[Tuple[int, int], DUGNode] = {}
        # Site-level fork/join correlation for bypass-region limits.
        from repro.mt.symmetry import find_symmetric_pairs
        self._symmetric = find_symmetric_pairs(module, andersen)
        # Observability tallies (flushed into an Observer by build()).
        self.functions_renamed = 0
        self.memphi_nodes = 0
        self.bypass_edges = 0

    # -- entry point --------------------------------------------------------

    def build(self, obs: Observer = NULL_OBS) -> DUG:
        for fn in self.module.functions.values():
            if fn.is_declaration or not fn.blocks:
                continue
            self._build_function(fn)
        self._link_interprocedural()
        self._add_fork_bypass_edges()
        self._link_top_level()
        self.flush_obs(obs)
        return self.dug

    def flush_obs(self, obs: Observer) -> None:
        """Flush construction tallies into *obs* (``memssa.*``)."""
        obs.count("memssa.mu_annotations",
                  sum(len(s) for s in self.mus.values()))
        obs.count("memssa.chi_annotations",
                  sum(len(s) for s in self.chis.values()))
        obs.count("memssa.memphi_nodes", self.memphi_nodes)
        obs.count("memssa.functions_renamed", self.functions_renamed)
        obs.count("memssa.fork_bypass_edges", self.bypass_edges)
        obs.gauge("memssa.dug_nodes", len(self.dug.nodes))
        obs.gauge("memssa.dug_mem_edges", self.dug.num_mem_edges())
        obs.gauge("memssa.relevant_objects", len(self.relevant))

    # -- per-function memory SSA ---------------------------------------------

    def _annotate(self, fn: Function) -> None:
        """Compute mu/chi sets for every instruction of *fn*."""
        for instr in fn.instructions():
            if isinstance(instr, Load):
                self.mus[instr.id] = self._pts(instr.ptr) & self._relevant_pts
            elif isinstance(instr, Store):
                self.chis[instr.id] = self._pts(instr.ptr) & self._relevant_pts
            elif isinstance(instr, (Call, Fork)):
                self.mus[instr.id] = self.modref.callsite_ref(instr)
                chi = self.modref.callsite_mod(instr)
                if isinstance(instr, Fork) and instr.handle_ptr is not None:
                    # The fork writes the abstract thread id into the
                    # handle slot.
                    chi = chi | (self._pts(instr.handle_ptr) & self._relevant_pts)
                self.chis[instr.id] = chi
            elif isinstance(instr, Join):
                self.chis[instr.id] = self.modref.callsite_mod(instr)

    def _pts(self, value: Value) -> PTSet:
        if value is None or isinstance(value, Constant):
            return self.universe.empty
        return self.andersen.pts(value)

    def _build_function(self, fn: Function) -> None:
        self._annotate(fn)
        cfg = CFG(fn)
        mod = self.modref.mod.get(fn, set())
        ref = self.modref.ref.get(fn, set())
        # Objects whose chi functions appear locally (joins/forks can
        # define objects beyond MOD(fn)'s store-derived part — they are
        # included in MOD by modref, but the handle-slot chi at forks
        # may not be; collect from annotations to be safe).
        local_defs: Dict[MemObject, Set[BasicBlock]] = {}
        tracked: Set[MemObject] = set(mod) | set(ref)
        for block in fn.blocks:
            for instr in block.instructions:
                for obj in self.chis.get(instr.id, ()):
                    tracked.add(obj)
                    local_defs.setdefault(obj, set()).add(block)
                for obj in self.mus.get(instr.id, ()):
                    tracked.add(obj)
        if not tracked:
            self._create_stmt_nodes(fn)
            return

        # Formal-in/out nodes. ``tracked`` is a set of MemObjects
        # (address-hashed), so iterate it in id order: ids are
        # allocated in deterministic creation order, which keeps DUG
        # node numbering — and therefore serialized artifacts —
        # identical across runs and processes.
        ordered = sorted(tracked, key=lambda o: o.id)
        for obj in ordered:
            node = FormalInNode(fn, obj)
            self.formal_in[(fn.name, obj.id)] = node
            self.dug.add_node(node)
        for obj in ordered:
            node = FormalOutNode(fn, obj)
            self.formal_out[(fn.name, obj.id)] = node
            self.dug.add_node(node)

        # Memory phis at iterated dominance frontiers. The IDF comes
        # back as a set of (address-hashed) blocks — order it by block
        # id for the same cross-process determinism as above.
        memphis: Dict[BasicBlock, List[MemPhiNode]] = {}
        for obj, blocks in local_defs.items():
            for block in sorted(
                    iterated_dominance_frontier(cfg.frontiers, blocks),
                    key=lambda b: b.id):
                phi = MemPhiNode(block, obj)
                self.dug.add_node(phi)
                memphis.setdefault(block, []).append(phi)
                self.memphi_nodes += 1

        self._create_stmt_nodes(fn)
        self._rename(fn, cfg, tracked, memphis)
        self.functions_renamed += 1

    def _create_stmt_nodes(self, fn: Function) -> None:
        for instr in fn.instructions():
            if isinstance(instr, (AddrOf, Copy, Phi, Load, Store, Gep, Call, Fork, Join)):
                self.dug.add_node(StmtNode(instr))

    def _rename(self, fn: Function, cfg: CFG, tracked: Set[MemObject],
                memphis: Dict[BasicBlock, List[MemPhiNode]]) -> None:
        stacks: Dict[int, List[DUGNode]] = {}
        for obj in tracked:
            stacks[obj.id] = [self.formal_in[(fn.name, obj.id)]]

        def current(obj: MemObject) -> DUGNode:
            return stacks[obj.id][-1]

        def process(block: BasicBlock) -> List[int]:
            pushed: List[int] = []
            for phi in memphis.get(block, ()):
                stacks[phi.obj.id].append(phi)
                pushed.append(phi.obj.id)
            for instr in block.instructions:
                if isinstance(instr, Load):
                    node = self.dug.stmt_node(instr)
                    for obj in self.mus.get(instr.id, ()):
                        self.dug.add_mem_edge(current(obj), obj, node)
                elif isinstance(instr, Store):
                    node = self.dug.stmt_node(instr)
                    for obj in self.chis.get(instr.id, ()):
                        self.dug.add_mem_edge(current(obj), obj, node)
                        stacks[obj.id].append(node)
                        pushed.append(obj.id)
                elif isinstance(instr, (Call, Fork, Join)):
                    for obj in self.mus.get(instr.id, ()):
                        mu = CallMuNode(instr, obj)
                        self.dug.add_node(mu)
                        self.site_mus[(instr.id, obj.id)] = mu
                        self.dug.add_mem_edge(current(obj), obj, mu)
                    fork_slots: Set[MemObject] = set()
                    if isinstance(instr, Fork) and instr.handle_ptr is not None:
                        fork_slots = self._pts(instr.handle_ptr)
                    for obj in self.chis.get(instr.id, ()):
                        chi = CallChiNode(instr, obj)
                        self.dug.add_node(chi)
                        self.site_chis[(instr.id, obj.id)] = chi
                        self.site_old_def[(instr.id, obj.id)] = current(obj)
                        # Call and fork chis take the callee's exit
                        # state only: the pre-call state flows through
                        # the callee's formal-in/out chain, so a strong
                        # update inside the callee correctly kills it
                        # (paper Figure 1(c)). The old state flows in
                        # directly (weak) only where the callee chain
                        # cannot carry it: join chis (the spawner's own
                        # in-flight defs survive the join) and fork
                        # thread-handle slots (one array cell among
                        # many is written).
                        if isinstance(instr, Join) or obj in fork_slots:
                            self.dug.add_mem_edge(current(obj), obj, chi)
                        if obj in fork_slots and isinstance(instr.handle_ptr, Temp):
                            # The chi's thread-id write is guarded by
                            # pt(handle_ptr) at solve time: register it
                            # as a top-level user so the solver revisits
                            # it when the handle pointer gains targets
                            # (the statement node itself is a no-op).
                            self.dug.add_top_user(instr.handle_ptr, chi)
                        stacks[obj.id].append(chi)
                        pushed.append(obj.id)
                elif isinstance(instr, Ret):
                    for obj in tracked:
                        out = self.formal_out.get((fn.name, obj.id))
                        if out is not None:
                            self.dug.add_mem_edge(current(obj), obj, out)
            for succ in cfg.successors(block):
                for phi in memphis.get(succ, ()):
                    self.dug.add_mem_edge(current(phi.obj), phi.obj, phi)
            return pushed

        # Iterative dominator-tree preorder walk with scoped stacks.
        work: List[Tuple[BasicBlock, Optional[List[int]], int]] = [(cfg.entry, None, 0)]
        while work:
            block, pushed, child_idx = work.pop()
            if pushed is None:
                pushed = process(block)
            children = cfg.domtree.children(block)
            if child_idx < len(children):
                work.append((block, pushed, child_idx + 1))
                work.append((children[child_idx], None, 0))
            else:
                for obj_id in reversed(pushed):
                    stacks[obj_id].pop()

    # -- interprocedural linking ----------------------------------------------

    def _link_interprocedural(self) -> None:
        callgraph = self.andersen.callgraph
        for fn in self.module.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, (Call, Fork)):
                    callees = [c for c in callgraph.callees(instr)
                               if not c.is_declaration and c.blocks]
                    for callee in callees:
                        callee_mod = self.modref.mod.get(callee, set())
                        callee_all = callee_mod | self.modref.ref.get(callee, set())
                        for obj in callee_all:
                            mu = self.site_mus.get((instr.id, obj.id))
                            fin = self.formal_in.get((callee.name, obj.id))
                            if mu is not None and fin is not None:
                                self.dug.add_mem_edge(mu, obj, fin)
                        for obj in callee_mod:
                            fout = self.formal_out.get((callee.name, obj.id))
                            chi = self.site_chis.get((instr.id, obj.id))
                            if fout is not None and chi is not None:
                                self.dug.add_mem_edge(fout, obj, chi)
                    # A chi object not covered by *every* callee's MOD
                    # cannot rely on the callee chain to carry the old
                    # state: give it the weak in-edge directly.
                    for obj in self.chis.get(instr.id, ()):
                        covered = callees and all(
                            obj in self.modref.mod.get(c, set()) for c in callees)
                        if not covered:
                            chi = self.site_chis.get((instr.id, obj.id))
                            old = self.site_old_def.get((instr.id, obj.id))
                            if chi is not None and old is not None:
                                self.dug.add_mem_edge(old, obj, chi)
                elif isinstance(instr, Join):
                    # Join-related def-use (Step 3): the joined
                    # routine's exit state becomes visible here.
                    for routine in self.modref.joined_routines.get(instr.id, ()):
                        for obj in self.modref.mod.get(routine, set()):
                            fout = self.formal_out.get((routine.name, obj.id))
                            chi = self.site_chis.get((instr.id, obj.id))
                            if fout is not None and chi is not None:
                                self.dug.add_mem_edge(fout, obj, chi)

    # -- fork bypass edges (Section 3.2 Step 2) ---------------------------------

    def _add_fork_bypass_edges(self) -> None:
        """The start routine may execute nondeterministically later, so
        any value reaching a fork can also bypass the routine: it flows
        directly to the uses in the spawner's fork-join parallel
        region. Past a join that definitely joins the thread, the
        routine has run, and only the Pseq chain (through the routine,
        with its strong updates) applies — which is what makes
        Figure 1(c)'s pt(c) = {y} possible."""
        from repro.cfg.cfg import CFG as _CFG
        callgraph = self.andersen.callgraph
        for fn in self.module.functions.values():
            if fn.is_declaration or not fn.blocks:
                continue
            forks = [i for i in fn.instructions() if isinstance(i, Fork)]
            if not forks:
                continue
            cfg = _CFG(fn)
            succs = _instruction_successors(fn)
            for fork in forks:
                mod_objs = self.modref.callsite_mod(fork) & \
                    self.chis.get(fork.id, ())
                if not mod_objs:
                    continue
                tid = self.andersen.thread_objects.get(fork.id)
                multi_site = (fork.block in cfg.loop_blocks
                              or callgraph.in_cycle(fn))

                def stops(join: Join) -> bool:
                    if tid is None:
                        return False
                    if (fork.id, join.id) in self._symmetric:
                        return True
                    return (not multi_site) and \
                        self.andersen.pts(join.handle) == {tid}

                for obj in mod_objs:
                    old = self.site_old_def.get((fork.id, obj.id))
                    if old is None:
                        continue
                    self._deliver_bypass(fn, fork, obj, old, succs, stops)

    def _deliver_bypass(self, fn: Function, fork: Fork, obj: MemObject,
                        old: DUGNode, succs, stops) -> None:
        seen: Set[int] = {fork.id}
        work = list(succs.get(fork.id, ()))
        while work:
            instr = work.pop()
            if instr.id in seen:
                continue
            seen.add(instr.id)
            if isinstance(instr, Join) and stops(instr):
                continue  # the thread has been joined: region ends
            if isinstance(instr, Load) and obj in self.mus.get(instr.id, ()):
                if self.dug.add_mem_edge(old, obj, self.dug.stmt_node(instr)):
                    self.bypass_edges += 1
            elif isinstance(instr, Store) and obj in self.chis.get(instr.id, ()):
                if self.dug.add_mem_edge(old, obj, self.dug.stmt_node(instr)):
                    self.bypass_edges += 1
            elif isinstance(instr, (Call, Fork)):
                mu = self.site_mus.get((instr.id, obj.id))
                if mu is not None and self.dug.add_mem_edge(old, obj, mu):
                    self.bypass_edges += 1
            elif isinstance(instr, Join):
                chi = self.site_chis.get((instr.id, obj.id))
                if chi is not None and self.dug.add_mem_edge(old, obj, chi):
                    self.bypass_edges += 1
            elif isinstance(instr, Ret):
                out = self.formal_out.get((fn.name, obj.id))
                if out is not None and self.dug.add_mem_edge(old, obj, out):
                    self.bypass_edges += 1
            work.extend(succs.get(instr.id, ()))

    # -- top-level def-use -----------------------------------------------------

    def _link_top_level(self) -> None:
        callgraph = self.andersen.callgraph
        for fn in self.module.functions.values():
            for instr in fn.instructions():
                if self.dug.has_stmt(instr):
                    node = self.dug.stmt_node(instr)
                    for op in instr.operands():
                        if isinstance(op, Temp):
                            self.dug.add_top_user(op, node)
                if isinstance(instr, (Call, Fork)):
                    for callee in callgraph.callees(instr):
                        if callee.is_declaration or not callee.blocks:
                            continue
                        if isinstance(instr, Fork):
                            args: List[Value] = [instr.arg] if instr.arg is not None else []
                        else:
                            args = list(instr.args)
                        for param, arg in zip(callee.params, args):
                            self.dug.add_top_copy(arg, param)
                        if isinstance(instr, Call) and instr.dst is not None:
                            for rv_instr in callee.instructions():
                                if isinstance(rv_instr, Ret) and rv_instr.value is not None:
                                    self.dug.add_top_copy(rv_instr.value, instr.dst)


def _instruction_successors(fn: Function) -> Dict[int, List]:
    """Instruction-level CFG successors within one function."""
    from repro.ir.instructions import Branch, Jump
    succs: Dict[int, List] = {}
    for block in fn.blocks:
        for i, instr in enumerate(block.instructions):
            if i + 1 < len(block.instructions):
                succs[instr.id] = [block.instructions[i + 1]]
            else:
                targets = []
                if isinstance(instr, Branch):
                    targets = [instr.then_block.instructions[0],
                               instr.else_block.instructions[0]]
                elif isinstance(instr, Jump):
                    targets = [instr.target.instructions[0]]
                succs[instr.id] = targets
    return succs


def build_dug(module: Module, andersen: AndersenResult,
              relevant: Optional[Set[MemObject]] = None,
              obs: Observer = NULL_OBS) -> Tuple[DUG, MemorySSABuilder]:
    """Build the thread-oblivious DUG; returns (dug, builder).
    Construction statistics land in *obs* under ``memssa.*``."""
    builder = MemorySSABuilder(module, andersen, relevant=relevant)
    dug = builder.build(obs)
    return dug, builder
