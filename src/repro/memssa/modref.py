"""Interprocedural mod-ref summaries.

For every function, the sets of abstract objects it (or anything it
transitively calls, forks, or joins) may store to (MOD) and load from
(REF). These sets decide which mu/chi functions annotate each
callsite (paper Section 2.2: "Every callsite is also annotated with
mu and chi functions to expose its indirect uses and defs").

Fork sites count as calls of their start routines (the paper's Pseq
transformation, Section 3.2 Step 1). Join sites import the MOD of
the routines they may join (Step 3), so a joined thread's effects are
visible at and after the join.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Set

from repro.andersen import AndersenResult
from repro.cfg.callgraph import CallGraph
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import tarjan_scc
from repro.ir.instructions import Call, Fork, Instruction, Join, Load, Store
from repro.ir.module import Module
from repro.ir.values import Function, MemObject, Temp, object_key
from repro.pts import PTSet


class ModRefAnalysis:
    """Computes MOD/REF per function and per callsite.

    Summaries are interned :class:`~repro.pts.PTSet`s over the
    pre-analysis universe, so the bottom-up union over the call graph
    shares set instances instead of copying them per function.
    """

    def __init__(self, module: Module, andersen: AndersenResult,
                 relevant: Optional[Set[MemObject]] = None) -> None:
        self.module = module
        self.andersen = andersen
        self.callgraph: CallGraph = andersen.callgraph
        self.universe = andersen.universe
        # Restrict to pointer-carrying objects when a filter is given.
        self.relevant = relevant
        self._relevant_pts: Optional[PTSet] = (
            None if relevant is None else self.universe.make(relevant))
        self.mod: Dict[Function, PTSet] = {}
        self.ref: Dict[Function, PTSet] = {}
        # Join sites -> routines whose termination the join observes.
        self.joined_routines: Dict[int, Set[Function]] = {}
        self._compute()

    def _filter(self, objs: PTSet) -> PTSet:
        if self._relevant_pts is None:
            return objs
        return objs & self._relevant_pts

    def _routines_of_join(self, join: Join) -> Set[Function]:
        """Start routines of the threads *join* may join, correlated
        through the abstract thread-id objects in pts(handle)."""
        routines: Set[Function] = set()
        for tid in self.andersen.pts(join.handle):
            fork = getattr(tid, "fork_site", None)
            if fork is not None:
                routines |= set(self.callgraph.callees(fork))
        return routines

    def _compute(self) -> None:
        empty = self.universe.empty
        fns = [fn for fn in self.module.functions.values()
               if not fn.is_declaration and fn.blocks]
        local_mod: Dict[Function, PTSet] = {fn: empty for fn in fns}
        local_ref: Dict[Function, PTSet] = {fn: empty for fn in fns}
        # Effect edges: caller depends on callee summaries.
        dep = DiGraph()
        for fn in fns:
            dep.add_node(fn)
        for fn in fns:
            for instr in fn.instructions():
                if isinstance(instr, Load):
                    local_ref[fn] = local_ref[fn] | self._filter(self.andersen.pts(instr.ptr))
                elif isinstance(instr, Store):
                    local_mod[fn] = local_mod[fn] | self._filter(self.andersen.pts(instr.ptr))
                elif isinstance(instr, (Call, Fork)):
                    for callee in self.callgraph.callees(instr):
                        if callee in local_mod:
                            dep.add_edge(fn, callee)
                elif isinstance(instr, Join):
                    routines = self._routines_of_join(instr)
                    self.joined_routines[instr.id] = routines
                    for routine in routines:
                        if routine in local_mod:
                            dep.add_edge(fn, routine)

        # Propagate bottom-up over the dependency graph's SCC DAG;
        # Tarjan emits callees before callers. Interned sets make the
        # per-SCC copies free: every function of an SCC shares one
        # instance.
        self.mod = dict(local_mod)
        self.ref = dict(local_ref)
        for scc in tarjan_scc(dep):
            # Merge within the SCC to a common fixpoint.
            scc_mod = empty
            scc_ref = empty
            for fn in scc:
                scc_mod = scc_mod | self.mod[fn]
                scc_ref = scc_ref | self.ref[fn]
                for callee in dep.successors(fn):
                    scc_mod = scc_mod | self.mod[callee]
                    scc_ref = scc_ref | self.ref[callee]
            for fn in scc:
                self.mod[fn] = scc_mod
                self.ref[fn] = scc_ref

    # -- summary signatures -----------------------------------------------

    def signature(self, fn: Function, key=object_key) -> str:
        """A content hash of *fn*'s MOD/REF summary over cross-process
        object keys. Two runs agree on a function's signature exactly
        when its transitive memory side effects are the same sets of
        (kind, allocation-site-name) objects — the ingredient the
        per-function cache digest mixes in for every callee, so an
        edit that moves a summary invalidates all its callers. *key*
        lets callers substitute an edit-stable key function (the
        incremental layer strips absolute source lines from
        allocation-site names)."""
        empty = self.universe.empty
        payload = "|".join([
            ",".join(sorted(key(obj)
                            for obj in self.mod.get(fn, empty))),
            ",".join(sorted(key(obj)
                            for obj in self.ref.get(fn, empty))),
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- per-site queries -------------------------------------------------

    def callsite_mod(self, site: Instruction) -> PTSet:
        """Objects a call or fork site may modify (via its callees),
        or a join site may import from its joined routines."""
        empty = self.universe.empty
        result = empty
        if isinstance(site, Join):
            for routine in self.joined_routines.get(site.id, ()):
                result = result | self.mod.get(routine, empty)
            return result
        for callee in self.callgraph.callees(site):
            result = result | self.mod.get(callee, empty)
        return result

    def callsite_ref(self, site: Instruction) -> PTSet:
        """Objects a call or fork site may read (via its callees).
        Includes MOD because weak chi functions also read the old
        contents."""
        empty = self.universe.empty
        result = empty
        if isinstance(site, Join):
            return result
        for callee in self.callgraph.callees(site):
            result = result | self.ref.get(callee, empty)
            result = result | self.mod.get(callee, empty)
        return result
