"""The sparse def-use graph (DUG).

Nodes are program statements plus the memory-SSA pseudo-statements
(memory phis, formal-in/out, callsite mu/chi). Edges are labelled by
the value that flows: a Temp for top-level def-use, or a MemObject
for address-taken def-use. The sparse flow-sensitive solver
propagates points-to facts only along these edges, exactly as in the
paper's Figure 4(c).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.ir.instructions import Instruction
from repro.ir.module import BasicBlock
from repro.ir.values import Function, MemObject, Temp

Label = Union[Temp, MemObject]


class DUGNode:
    """Base class for DUG nodes."""

    _ids = itertools.count()

    def __init__(self) -> None:
        self.uid = next(DUGNode._ids)

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class StmtNode(DUGNode):
    """A real program statement."""

    def __init__(self, instr: Instruction) -> None:
        super().__init__()
        self.instr = instr

    def __repr__(self) -> str:
        return f"[{self.instr!r}]"


class MemPhiNode(DUGNode):
    """phi(o) at a CFG confluence for an address-taken object."""

    def __init__(self, block: BasicBlock, obj: MemObject) -> None:
        super().__init__()
        self.block = block
        self.obj = obj

    def __repr__(self) -> str:
        return f"[memphi {self.obj.name} @ {self.block.label}]"


class FormalInNode(DUGNode):
    """The incoming memory state of *obj* at a function entry."""

    def __init__(self, fn: Function, obj: MemObject) -> None:
        super().__init__()
        self.fn = fn
        self.obj = obj

    def __repr__(self) -> str:
        return f"[formal-in {self.obj.name} @ {self.fn.name}]"


class FormalOutNode(DUGNode):
    """The outgoing memory state of *obj* at a function exit."""

    def __init__(self, fn: Function, obj: MemObject) -> None:
        super().__init__()
        self.fn = fn
        self.obj = obj

    def __repr__(self) -> str:
        return f"[formal-out {self.obj.name} @ {self.fn.name}]"


class CallMuNode(DUGNode):
    """mu(o) at a call/fork site: memory state flowing into callees."""

    def __init__(self, site: Instruction, obj: MemObject) -> None:
        super().__init__()
        self.site = site
        self.obj = obj

    def __repr__(self) -> str:
        return f"[mu {self.obj.name} @ {self.site!r}]"


class CallChiNode(DUGNode):
    """chi(o) at a call/fork/join site: the merge of the old memory
    state with callee (or joined-thread) side effects."""

    def __init__(self, site: Instruction, obj: MemObject) -> None:
        super().__init__()
        self.site = site
        self.obj = obj

    def __repr__(self) -> str:
        return f"[chi {self.obj.name} @ {self.site!r}]"


def node_function(node: DUGNode) -> Function:
    """The function a DUG node belongs to. Every node kind anchors to
    one: statements via their block, memory phis via theirs, formal
    in/out nodes directly, callsite mu/chi nodes via the call site's
    block. Incremental analysis partitions the graph by this."""
    instr = getattr(node, "instr", None)
    if instr is not None:
        return instr.block.function
    block = getattr(node, "block", None)
    if block is not None:
        return block.function
    fn = getattr(node, "fn", None)
    if fn is not None:
        return fn
    site = getattr(node, "site", None)
    if site is not None:
        return site.block.function
    raise TypeError(f"DUG node {node!r} has no owning function")


class DUG:
    """The def-use graph: nodes plus labelled edges, with the indexes
    the sparse solver needs (per-node incoming memory defs grouped by
    object, per-node outgoing users, per-temp top-level users)."""

    def __init__(self) -> None:
        self.nodes: List[DUGNode] = []
        self._stmt_nodes: Dict[int, StmtNode] = {}
        # Memory (address-taken) edges.
        self._mem_out: Dict[int, List[Tuple[MemObject, DUGNode]]] = {}
        self._mem_in: Dict[int, Dict[MemObject, List[DUGNode]]] = {}
        self._mem_edge_set: Set[Tuple[int, int, int]] = set()
        # Thread-aware edges added by the value-flow phase are tracked
        # separately so ablations and statistics can distinguish them.
        self.thread_edges: List[Tuple[DUGNode, MemObject, DUGNode]] = []
        self._thread_edge_keys: Set[Tuple[int, int, int]] = set()
        # Admission verdicts for thread-aware edges, recorded by the
        # value-flow phase when tracing is on: edge key -> a JSON-able
        # dict naming the MHP witness threads and the lock status that
        # let the edge through. `repro explain` surfaces these on
        # derivation chains that travel a [THREAD-VF] edge.
        self.thread_edge_info: Dict[Tuple[int, int, int], Dict[str, object]] = {}
        # Thread-aware in-edges per node, for the solver's blind
        # propagation along [THREAD-VF] edges.
        self._thread_in: Dict[int, List[Tuple[MemObject, DUGNode]]] = {}
        # Top-level def-use: users of each temp.
        self._top_users: Dict[int, List[DUGNode]] = {}
        # Copy constraints from interprocedural top-level linking:
        # (source value, destination temp).
        self.top_copies: List[Tuple[object, Temp]] = []
        self._copies_by_src: Dict[int, List[Tuple[object, Temp]]] = {}
        self._copies_by_dst: Dict[int, List[Tuple[object, Temp]]] = {}
        # Interference: objects at which a store statement participates
        # in an MHP store-store/store-load pair (set by value-flow).
        self.interfering: Dict[int, Set[MemObject]] = {}
        # Scheduling-metadata memo. The graph is frozen once the
        # value-flow phase finishes, but solvers are constructed on it
        # repeatedly (differential runs, ablation sweeps, benchmark
        # samples), and the derived structures they need — topological
        # ranks, the vectorized kernel's merge-subgraph plan, per-node
        # out-edge caches — are pure functions of the edge set. They
        # live here under string keys and are dropped wholesale on any
        # graph mutation.
        self.schedule_cache: Dict[str, object] = {}

    # -- nodes --------------------------------------------------------------

    def add_node(self, node: DUGNode) -> DUGNode:
        if self.schedule_cache:
            self.schedule_cache.clear()
        self.nodes.append(node)
        if isinstance(node, StmtNode):
            self._stmt_nodes[node.instr.id] = node
        return node

    def stmt_node(self, instr: Instruction) -> StmtNode:
        return self._stmt_nodes[instr.id]

    def has_stmt(self, instr: Instruction) -> bool:
        return instr.id in self._stmt_nodes

    # -- memory edges --------------------------------------------------------

    def add_mem_edge(self, src: DUGNode, obj: MemObject, dst: DUGNode,
                     thread_aware: bool = False) -> bool:
        """Add src --obj--> dst; returns False if already present.

        The dedup key uses ``obj.id`` (stable allocation-site id), not
        ``id(obj)``: CPython reuses object addresses after GC, which
        made id()-based keys nondeterministic (same bug class as the
        Andersen node index fixed in PR 1)."""
        key = (src.uid, obj.id, dst.uid)
        if key in self._mem_edge_set:
            return False
        if self.schedule_cache:
            self.schedule_cache.clear()
        self._mem_edge_set.add(key)
        self._mem_out.setdefault(src.uid, []).append((obj, dst))
        self._mem_in.setdefault(dst.uid, {}).setdefault(obj, []).append(src)
        if thread_aware:
            self.thread_edges.append((src, obj, dst))
            self._thread_edge_keys.add(key)
            self._thread_in.setdefault(dst.uid, []).append((obj, src))
        return True

    def mem_out(self, node: DUGNode) -> List[Tuple[MemObject, DUGNode]]:
        return self._mem_out.get(node.uid, [])

    def mem_in(self, node: DUGNode) -> Dict[MemObject, List[DUGNode]]:
        return self._mem_in.get(node.uid, {})

    def mem_defs_of(self, node: DUGNode, obj: MemObject) -> List[DUGNode]:
        """Definitions of *obj* reaching *node*."""
        return self._mem_in.get(node.uid, {}).get(obj, [])

    def num_mem_edges(self) -> int:
        return len(self._mem_edge_set)

    def thread_in_edges(self, node: DUGNode) -> List[Tuple[MemObject, DUGNode]]:
        """Thread-aware (obj, src) in-edges of *node*."""
        return self._thread_in.get(node.uid, [])

    def is_thread_edge(self, src: DUGNode, obj: MemObject, dst: DUGNode) -> bool:
        return (src.uid, obj.id, dst.uid) in self._thread_edge_keys

    def set_thread_edge_info(self, src: DUGNode, obj: MemObject, dst: DUGNode,
                             info: Dict[str, object]) -> None:
        self.thread_edge_info[(src.uid, obj.id, dst.uid)] = info

    def thread_edge_verdict(self, src_uid: int, obj_id: int,
                            dst_uid: int) -> Optional[Dict[str, object]]:
        """The recorded admission verdict for a thread-aware edge, or
        None when value flow ran untraced."""
        return self.thread_edge_info.get((src_uid, obj_id, dst_uid))

    # -- top-level def-use ----------------------------------------------------

    def add_top_user(self, temp: Temp, node: DUGNode) -> None:
        if self.schedule_cache:
            self.schedule_cache.clear()
        self._top_users.setdefault(temp.id, []).append(node)

    def top_users(self, temp: Temp) -> List[DUGNode]:
        return self._top_users.get(temp.id, [])

    def add_top_copy(self, src, dst: Temp) -> None:
        """Record an interprocedural copy (call argument -> parameter,
        return value -> call result)."""
        if self.schedule_cache:
            self.schedule_cache.clear()
        pair = (src, dst)
        self.top_copies.append(pair)
        if isinstance(src, Temp):
            self._copies_by_src.setdefault(src.id, []).append(pair)
        self._copies_by_dst.setdefault(dst.id, []).append(pair)

    def copies_from(self, temp: Temp) -> List[Tuple[object, Temp]]:
        return self._copies_by_src.get(temp.id, [])

    def copies_into(self, temp: Temp) -> List[Tuple[object, Temp]]:
        """All interprocedural copies whose destination is *temp* —
        the solver's copy-chain worklist recomputes a destination's
        merge from these, so one pass per visit covers every source."""
        return self._copies_by_dst.get(temp.id, [])

    # -- scheduling metadata ---------------------------------------------------

    def compute_topo_ranks(self) -> Tuple[Dict[int, int], int]:
        """SCC-condensed topological priorities for the sparse solver.

        Builds the combined value-flow graph the solver propagates
        over — memory (o-labelled) edges including [THREAD-VF] ones,
        top-level def->use edges, and the interprocedural copy
        graph — condenses its SCCs, and returns ``(rank_of_uid,
        scc_count)``: each node's uid mapped to the topological rank
        of its SCC (sources first). Temps appear as intermediate
        ``('t', id)`` markers so multi-def temps and copy chains order
        correctly; they carry no rank of their own.

        Ranks are pure scheduling metadata: any order reaches the same
        fixpoint (transfer functions are union-monotone), ascending
        ranks just minimise revisits by draining upstream SCCs first.

        Memoized in :attr:`schedule_cache` (the dominant cost is the
        full-graph Tarjan pass): repeat solves on the same frozen
        graph pay it once.
        """
        cached = self.schedule_cache.get("topo_ranks")
        if cached is not None:
            return cached

        from repro.graphs.scc import topo_ranks_dense

        succ, _slot_of_uid, _temp_slot = self._dense_value_flow_graph()
        rank, scc_count = topo_ranks_dense(succ)
        result = ({node.uid: rank[i] for i, node in enumerate(self.nodes)},
                  scc_count)
        self.schedule_cache["topo_ranks"] = result
        return result

    def _dense_value_flow_graph(self) -> Tuple[
            List[List[int]], Dict[int, int], Dict[int, int]]:
        """The combined value-flow graph in dense integer form:
        ``(succ, slot_of_uid, temp_slot)``.

        Statement nodes take slots 0..n-1 (list position), temps get
        slots appended on first sight. Rank computation runs on every
        analysis, so this stays allocation-lean — flat int adjacency
        instead of a dict keyed by nodes and ('t', id) marker tuples.
        Memoized in :attr:`schedule_cache`: both the whole-program rank
        pass and every demand-driven slice ranking reuse one copy.
        """
        cached = self.schedule_cache.get("dense_vfg")
        if cached is not None:
            return cached

        nodes = self.nodes
        slot_of_uid = {node.uid: i for i, node in enumerate(nodes)}
        succ: List[List[int]] = [[] for _ in range(len(nodes))]
        temp_slot: Dict[int, int] = {}

        def tslot(temp_id: int) -> int:
            s = temp_slot.get(temp_id)
            if s is None:
                s = temp_slot[temp_id] = len(succ)
                succ.append([])
            return s

        mem_out = self._mem_out
        empty_out: List[Tuple[MemObject, DUGNode]] = []
        for i, node in enumerate(nodes):
            out = succ[i]
            for _obj, dst in mem_out.get(node.uid, empty_out):
                out.append(slot_of_uid[dst.uid])
            instr = getattr(node, "instr", None)
            if instr is not None:
                defined = instr.defined_temp()
                if isinstance(defined, Temp):
                    out.append(tslot(defined.id))
        for temp_id, users in self._top_users.items():
            slot = tslot(temp_id)
            out = succ[slot]
            for user in users:
                out.append(slot_of_uid[user.uid])
        for src, dst in self.top_copies:
            if isinstance(src, Temp):
                succ[tslot(src.id)].append(tslot(dst.id))
            else:
                tslot(dst.id)
        result = (succ, slot_of_uid, temp_slot)
        self.schedule_cache["dense_vfg"] = result
        return result

    def compute_topo_ranks_slice(self, node_uids: Set[int],
                                 temp_ids: Set[int]
                                 ) -> Tuple[Dict[int, int], int]:
        """:meth:`compute_topo_ranks` restricted to a slice.

        Ranks only the subgraph induced by *node_uids* / *temp_ids*
        (a predecessor-closed :meth:`upstream_closure` slice); edges
        leaving the slice are ignored. Returns ``(rank_of_uid,
        scc_count)`` covering exactly the slice's nodes. The dense
        value-flow graph is shared with the whole-program pass, so a
        query pays only a slice-proportional Tarjan walk on top of one
        memoized densification.
        """
        from repro.graphs.scc import topo_ranks_induced

        succ, slot_of_uid, temp_slot = self._dense_value_flow_graph()
        member = bytearray(len(succ))
        roots = [slot_of_uid[uid] for uid in node_uids]
        for temp_id in temp_ids:
            slot = temp_slot.get(temp_id)
            if slot is not None:
                roots.append(slot)
        # Root order fixes SCC numbering; ascending slot order is the
        # order a whole-range scan would visit, keeping ranks
        # deterministic regardless of set iteration order.
        roots.sort()
        for slot in roots:
            member[slot] = 1
        rank, scc_count = topo_ranks_induced(succ, member, roots)
        rank_of_uid = {uid: rank[slot_of_uid[uid]] for uid in node_uids}
        return rank_of_uid, scc_count

    def merge_topology(self, members: List[DUGNode]) -> Tuple[
            List[List[int]], List[List[Tuple[MemObject, DUGNode]]]]:
        """Split *members*' out-edges into the merge-internal subgraph
        and its boundary, in flat row-indexed arrays.

        *members* are per-object merge pseudo-statements (one
        ``node.obj`` each). Returns ``(internal, boundary)`` where
        ``internal[i]`` lists the row indices (positions in *members*)
        of member-to-member successors and ``boundary[i]`` lists the
        remaining ``(obj, dst)`` out-edges verbatim. This is the edge
        grouping the sparse solver's vectorized kernel plans over:
        rows ordered by creation, internal edges as dense ints ready
        for SCC condensation, boundary edges keeping their node/object
        identity for scalar delivery.

        A member-to-member edge whose label differs from the shared
        object of its endpoints would let one object's delta leak into
        another object's merge chain; the builder never produces one,
        and this guards the invariant the kernel relies on.
        """
        row_of_uid = {node.uid: i for i, node in enumerate(members)}
        internal: List[List[int]] = [[] for _ in members]
        boundary: List[List[Tuple[MemObject, DUGNode]]] = [[] for _ in members]
        mem_out = self._mem_out
        empty_out: List[Tuple[MemObject, DUGNode]] = []
        for i, node in enumerate(members):
            obj_id = node.obj.id
            internal_i = internal[i]
            boundary_i = boundary[i]
            for obj, dst in mem_out.get(node.uid, empty_out):
                j = row_of_uid.get(dst.uid)
                if j is not None:
                    if obj.id != obj_id or dst.obj.id != obj_id:
                        raise ValueError(
                            f"mixed-object merge edge {node!r} --"
                            f"{obj.name}--> {dst!r}")
                    internal_i.append(j)
                else:
                    boundary_i.append((obj, dst))
        return internal, boundary

    # -- incremental partitioning ----------------------------------------------

    def nodes_by_function(self) -> Dict[str, List[DUGNode]]:
        """Nodes grouped by owning function name, each group in
        creation (``nodes`` list) order. Memoized in
        :attr:`schedule_cache` like the other derived structures."""
        cached = self.schedule_cache.get("nodes_by_function")
        if cached is None:
            cached = {}
            for node in self.nodes:
                cached.setdefault(node_function(node).name, []).append(node)
            self.schedule_cache["nodes_by_function"] = cached
        return cached

    def downstream_closure(self, root_nodes: Iterable[DUGNode],
                           root_temp_ids: Iterable[int]
                           ) -> Tuple[Set[int], Set[int]]:
        """Everything the roots can influence in the combined
        value-flow graph: node uids and temp ids reachable from
        *root_nodes* / *root_temp_ids* over memory out-edges
        (including [THREAD-VF] ones), statement-to-defined-temp,
        temp-to-top-user, and the interprocedural copy graph.

        One closure rule beyond plain reachability: a reached temp
        pulls in **all** statement nodes defining it. Partial SSA
        leaves multi-def temps (phi operands, loop-carried loads), and
        an incremental re-solve that recomputes a temp from scratch
        must also re-run its other defs — a def left frozen would
        never fire and its contribution to the temp would be lost.

        Returns ``(downstream node uids, downstream temp ids)``; the
        complements are the frozen sets an incremental solve may
        preload from a previous fixpoint.
        """
        defs_of_temp = self._defs_of_temp()
        down_nodes: Set[int] = set()
        down_temps: Set[int] = set()
        node_work: List[DUGNode] = []
        temp_work: List[int] = []

        def touch_node(node: DUGNode) -> None:
            if node.uid not in down_nodes:
                down_nodes.add(node.uid)
                node_work.append(node)

        def touch_temp(temp_id: int) -> None:
            if temp_id not in down_temps:
                down_temps.add(temp_id)
                temp_work.append(temp_id)

        for node in root_nodes:
            touch_node(node)
        for temp_id in root_temp_ids:
            touch_temp(temp_id)

        empty_out: List[Tuple[MemObject, DUGNode]] = []
        while node_work or temp_work:
            while node_work:
                node = node_work.pop()
                for _obj, dst in self._mem_out.get(node.uid, empty_out):
                    touch_node(dst)
                instr = getattr(node, "instr", None)
                if instr is not None:
                    defined = instr.defined_temp()
                    if isinstance(defined, Temp):
                        touch_temp(defined.id)
            while temp_work:
                temp_id = temp_work.pop()
                for user in self._top_users.get(temp_id, ()):
                    touch_node(user)
                for _src, dst in self._copies_by_src.get(temp_id, ()):
                    touch_temp(dst.id)
                for def_node in defs_of_temp.get(temp_id, ()):
                    touch_node(def_node)
        return down_nodes, down_temps

    def _defs_of_temp(self) -> Dict[int, List[DUGNode]]:
        """Statement nodes grouped by the temp they define (partial
        SSA leaves multi-def temps). Memoized in
        :attr:`schedule_cache` alongside the other derived indexes."""
        cached = self.schedule_cache.get("defs_of_temp")
        if cached is None:
            cached = {}
            for node in self.nodes:
                instr = getattr(node, "instr", None)
                if instr is not None:
                    defined = instr.defined_temp()
                    if defined is not None:
                        cached.setdefault(defined.id, []).append(node)
            self.schedule_cache["defs_of_temp"] = cached
        return cached

    def _used_temps_of(self) -> Dict[int, List[int]]:
        """The inverse of :attr:`_top_users`: node uid -> the temp ids
        whose top-level value the node reads. Memoized; this is the
        backward edge set :meth:`upstream_closure` walks."""
        cached = self.schedule_cache.get("used_temps_of")
        if cached is None:
            cached = {}
            for temp_id, users in self._top_users.items():
                for user in users:
                    cached.setdefault(user.uid, []).append(temp_id)
            self.schedule_cache["used_temps_of"] = cached
        return cached

    def upstream_closure(self, root_nodes: Iterable[DUGNode],
                         root_temp_ids: Iterable[int]
                         ) -> Tuple[Set[int], Set[int]]:
        """Everything that can influence the roots: the transpose of
        :meth:`downstream_closure`, walked backwards over the same
        combined value-flow graph — memory in-edges (including
        [THREAD-VF] ones), top-user-to-temp, defined-temp-to-defining-
        statement, and the interprocedural copy graph against the
        flow direction.

        The result is predecessor-closed by construction: every value
        a slice member's transfer function reads (reaching memory
        defs of any object, used temps, all defs of a reached temp,
        Temp sources of copies into a reached temp) is itself in the
        slice. Running the fixpoint engine over the slice alone
        therefore reproduces the whole-program fixpoint bit-for-bit
        on slice members — the demand-driven solver's contract.

        Returns ``(upstream node uids, upstream temp ids)``.
        """
        defs_of_temp = self._defs_of_temp()
        used_temps_of = self._used_temps_of()

        up_nodes: Set[int] = set()
        up_temps: Set[int] = set()
        node_work: List[DUGNode] = []
        temp_work: List[int] = []

        def touch_node(node: DUGNode) -> None:
            if node.uid not in up_nodes:
                up_nodes.add(node.uid)
                node_work.append(node)

        def touch_temp(temp_id: int) -> None:
            if temp_id not in up_temps:
                up_temps.add(temp_id)
                temp_work.append(temp_id)

        for node in root_nodes:
            touch_node(node)
        for temp_id in root_temp_ids:
            touch_temp(temp_id)

        while node_work or temp_work:
            while node_work:
                node = node_work.pop()
                for srcs in self._mem_in.get(node.uid, {}).values():
                    for src in srcs:
                        touch_node(src)
                for temp_id in used_temps_of.get(node.uid, ()):
                    touch_temp(temp_id)
            while temp_work:
                temp_id = temp_work.pop()
                for def_node in defs_of_temp.get(temp_id, ()):
                    touch_node(def_node)
                for src, _dst in self._copies_by_dst.get(temp_id, ()):
                    if isinstance(src, Temp):
                        touch_temp(src.id)
        return up_nodes, up_temps

    # -- interference bookkeeping ---------------------------------------------

    def mark_interfering(self, store_node: DUGNode, obj: MemObject) -> None:
        self.interfering.setdefault(store_node.uid, set()).add(obj)

    def is_interfering(self, node: DUGNode, obj: MemObject) -> bool:
        return obj in self.interfering.get(node.uid, ())
