"""Field derivation shared by the pre-analysis and the sparse solver.

Field-sensitivity (paper Section 4.2): each struct field is a
distinct abstract object; arrays are monolithic; field chains deeper
than ``MAX_FIELD_DEPTH`` collapse onto their base to defuse positive
weight cycles.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.types import ArrayType, StructType
from repro.ir.values import MemObject

MAX_FIELD_DEPTH = 8


def derive_field(obj: MemObject, field_index: Optional[int]) -> MemObject:
    """The object denoted by ``gep obj, field_index``."""
    if field_index is None:
        return obj  # array indexing: monolithic
    ty = obj.type
    if isinstance(ty, ArrayType):
        ty = ty.element
    if not isinstance(ty, StructType):
        return obj  # ill-typed gep: stay conservative
    if field_index >= len(ty.fields):
        return obj
    depth = 0
    walk = obj
    while walk.base is not None:
        depth += 1
        walk = walk.base
    if depth >= MAX_FIELD_DEPTH:
        return obj  # PWC defence
    return obj.field(field_index, ty.field_type(field_index))
